PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint check bench bench-perf sweep

# Tier-1: the fast correctness suite (what CI gates on).
test:
	$(PYTHON) -m pytest -x -q

# Static checks (ruff); skipped with a note when ruff is not installed.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "lint: ruff not installed, skipping (pip install ruff)"; \
	fi

# Everything CI would run: lint + tier-1 tests.
check: lint test

# Regenerate every paper table/figure under benchmarks/results/
# (perf-marked timing benches stay skipped).
bench:
	$(PYTHON) -m pytest benchmarks/ -q -s

# Time the performance layer (cold vs cached vs parallel vs fast path)
# and refresh benchmarks/results/perf_layer.txt + BENCH_perf.json.
bench-perf:
	$(PYTHON) -m pytest benchmarks/test_bench_perf.py --perf -q -s

# The Table 2/3 sweep from the CLI (cached + fast path by default).
sweep:
	$(PYTHON) -m repro sweep
