PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint check bench bench-batch bench-check bench-perf bench-service fuzz-smoke serve-smoke chaos-smoke prof-smoke sweep dash

BENCH_BASELINE ?= benchmarks/baselines/bench_history.jsonl

# Tier-1: the fast correctness suite (what CI gates on).
test:
	$(PYTHON) -m pytest -x -q

# Static checks (ruff); skipped with a note when ruff is not installed.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "lint: ruff not installed, skipping (pip install ruff)"; \
	fi

# Re-run the bench suites and fail on any cycle-count drift against the
# committed baseline (see docs/observability.md, "Benchmark regression
# tracking").  Wall-clock only gates on the machine that recorded the
# baseline, so this is safe to run anywhere.
bench-check:
	$(PYTHON) -m repro bench check --suite all \
		--baseline $(BENCH_BASELINE) --history $(BENCH_BASELINE)

# Seeded differential fuzz (docs/robustness.md): ≥200 random
# (loop, FaultPlan) cases, fast path vs exact event walk vs semantic
# executor, deterministic in FUZZ_SEED so a CI failure replays locally.
FUZZ_CASES ?= 200
FUZZ_SEED ?= 0
fuzz-smoke:
	$(PYTHON) -m repro fuzz --cases $(FUZZ_CASES) --seed $(FUZZ_SEED)

# Service smoke (docs/service.md): boot an ephemeral-port server with a
# scratch ledger, POST the Fig. 1 loop to /v1/evaluate, and assert the
# served evaluation record is byte-identical to the one-shot pipeline,
# that the request landed in the run ledger, that /v1/metrics counted it
# and /v1/trace/<id> replays its span tree, and that every served record
# byte-round-trips through the schema writer.  Part of `make check`.
# `make serve-smoke SERVE_SMOKE_ARGS=--live-out=dashboard-live.html`
# additionally builds a live dashboard snapshot (CI uploads it).
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py $(SERVE_SMOKE_ARGS)

# Seeded chaos loadtest (docs/robustness.md, "Operating under
# failure"): an in-process resilient server under injected grid kills,
# slow groups, cache corruption, malformed/oversized bodies and
# mid-stream disconnects.  Gates on honesty under failure: zero
# malformed/unstamped responses, every submission answered or honestly
# shed, breaker transitions on the ledger, complete inflight journal.
# kill:every=1,times=3 is deliberate — the breaker counts *consecutive*
# failures, so only back-to-back kills trip it.  Deterministic in
# CHAOS_SEED, so a CI failure replays locally.  Part of `make check`.
CHAOS_REQUESTS ?= 500
CHAOS_CONCURRENCY ?= 16
CHAOS_SEED ?= 0
chaos-smoke:
	$(PYTHON) -m repro loadtest --requests $(CHAOS_REQUESTS) \
		--concurrency $(CHAOS_CONCURRENCY) --n 60 \
		--chaos kill:every=1,times=3 --chaos kill:every=50 \
		--chaos slow:delay=0.05,every=60 --chaos corrupt:every=150 \
		--chaos malformed:prob=0.05 --chaos oversize:prob=0.02 \
		--chaos disconnect:prob=0.03 --chaos-seed $(CHAOS_SEED)

# Profiler smoke (docs/observability.md, "Continuous profiling"):
# record two sampled CPU profiles of the fig suite into a scratch
# store, assert samples landed and pipeline stages were attributed,
# diff them (must name a top regressed frame) and render the flame
# graph SVG.  Structural assertions only — sample counts are
# wall-clock driven and non-deterministic.  Part of `make check`.
prof-smoke:
	$(PYTHON) scripts/prof_smoke.py

# Build the self-contained HTML dashboard (run ledger + bench history).
# Works with an empty/missing ledger: the walkthrough timelines and the
# committed bench baseline still give it something to show.
DASH_OUT ?= dashboard.html
dash:
	$(PYTHON) -m repro dash --out $(DASH_OUT) --history $(BENCH_BASELINE)

# Everything CI would run: lint + tier-1 tests + fuzz + batch-engine
# identity smoke + bench gate + service smoke + chaos smoke + profiler
# smoke + a dashboard-build smoke.
check: lint test fuzz-smoke bench-batch bench-check serve-smoke chaos-smoke prof-smoke dash

# Regenerate every paper table/figure under benchmarks/results/
# (perf-marked timing benches stay skipped).
bench:
	$(PYTHON) -m pytest benchmarks/ -q -s

# Batch-engine identity smoke: the vectorized whole-grid sweep must be
# byte-identical to the per-loop path (deterministic, no timing — part
# of `make check`).
bench-batch:
	$(PYTHON) -m pytest benchmarks/test_bench_batch.py -q -s

# Time the performance layer (cold vs cached vs parallel vs batch)
# and refresh benchmarks/results/perf_layer.txt + BENCH_perf.json.
bench-perf:
	$(PYTHON) -m pytest benchmarks/test_bench_perf.py --perf -q -s

# Load-test the long-lived service (docs/service.md): ≥1000 concurrent
# loop submissions against one in-process server; records throughput,
# tail latency and shared-cache hit rate into the `service` block of
# BENCH_perf.json.  Timed — non-gating in CI, like bench-perf.
LOADTEST_REQUESTS ?= 1000
LOADTEST_CONCURRENCY ?= 16
bench-service:
	$(PYTHON) -m repro loadtest --requests $(LOADTEST_REQUESTS) \
		--concurrency $(LOADTEST_CONCURRENCY)

# The Table 2/3 sweep from the CLI (cached + fast path by default).
sweep:
	$(PYTHON) -m repro sweep
