"""Per-cycle resource reservation: issue slots and function units.

Occupancy is tracked as a per-cycle count against capacity.  For
non-pipelined multi-cycle units this count-based test is exact: all
reservations of a unit kind are intervals of the same length, and a set of
intervals fits on ``count`` instances iff no cycle's overlap exceeds
``count`` (interval-graph coloring).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.codegen.isa import FuClass
from repro.sched.machine import MachineConfig, UnitSpec


@dataclass
class ResourceTable:
    """Mutable reservation state for one schedule under construction."""

    machine: MachineConfig
    issue_used: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    unit_used: dict[str, dict[int, int]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(int))
    )

    def _busy_cycles(self, unit: UnitSpec, cycle: int) -> range:
        if unit.pipelined:
            return range(cycle, cycle + 1)
        return range(cycle, cycle + unit.latency)

    def can_place(self, fu: FuClass, cycle: int) -> bool:
        """Is there a free issue slot at ``cycle`` and a free instance of the
        unit serving ``fu`` for its full occupancy interval?"""
        if cycle < 1:
            return False
        if self.issue_used[cycle] >= self.machine.issue_width:
            return False
        unit = self.machine.unit_for(fu)
        used = self.unit_used[unit.name]
        return all(used[c] < unit.count for c in self._busy_cycles(unit, cycle))

    def place(self, fu: FuClass, cycle: int) -> None:
        if not self.can_place(fu, cycle):
            raise ValueError(f"cannot place {fu} at cycle {cycle}")
        self.issue_used[cycle] += 1
        unit = self.machine.unit_for(fu)
        for c in self._busy_cycles(unit, cycle):
            self.unit_used[unit.name][c] += 1

    def remove(self, fu: FuClass, cycle: int) -> None:
        """Undo a placement (used by the sync scheduler's retry search)."""
        self.issue_used[cycle] -= 1
        unit = self.machine.unit_for(fu)
        for c in self._busy_cycles(unit, cycle):
            self.unit_used[unit.name][c] -= 1

    def earliest(self, fu: FuClass, min_cycle: int) -> int:
        """First cycle ``>= min_cycle`` where ``fu`` can be placed.

        Always terminates: beyond the current horizon everything is free.
        """
        cycle = max(1, min_cycle)
        while not self.can_place(fu, cycle):
            cycle += 1
        return cycle

    def latest_at_most(self, fu: FuClass, deadline: int, min_cycle: int) -> int | None:
        """Last cycle in ``[min_cycle, deadline]`` where ``fu`` fits, or None."""
        for cycle in range(deadline, max(1, min_cycle) - 1, -1):
            if self.can_place(fu, cycle):
                return cycle
        return None
