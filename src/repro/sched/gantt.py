"""ASCII Gantt chart of a schedule, one row per function-unit instance.

Complements :meth:`repro.sched.Schedule.format` (which shows issue
bundles): the Gantt view shows *occupancy* — multi-cycle operations stretch
across their latency, and an idle unit is visibly idle.

Example (Fig. 1 loop on the 4-issue paper machine)::

    cycle        1    5    10   15
    load/store   .335668...
    integer      122..........
    multiplier   ....77777....
    ...
"""

from __future__ import annotations

from repro.sched.schedule import Schedule


def gantt(schedule: Schedule, width: int | None = None) -> str:
    """Render the occupancy chart.

    Cells show the last digit of the occupying instruction id (``#`` for a
    collision, which a valid schedule never has); ``.`` is idle.  ``width``
    truncates long schedules for display.
    """
    machine = schedule.machine
    lowered = schedule.lowered
    length = schedule.length if width is None else min(schedule.length, width)

    # rows per unit instance
    rows: dict[str, list[list[str]]] = {
        unit.name: [["."] * length for _ in range(unit.count)] for unit in machine.units
    }
    # greedy instance packing per unit, in issue order (matches the
    # interval-count admission rule of ResourceTable)
    instance_free: dict[str, list[int]] = {
        unit.name: [1] * unit.count for unit in machine.units
    }
    for iid, cycle in sorted(schedule.cycle_of.items(), key=lambda kv: (kv[1], kv[0])):
        unit = machine.unit_for(lowered.instruction(iid).fu)
        busy = 1 if unit.pipelined else unit.latency
        frees = instance_free[unit.name]
        instance = 0
        for i in range(unit.count):
            if frees[i] <= cycle:
                instance = i
                break
        frees[instance] = cycle + busy
        for c in range(cycle, min(cycle + busy, length + 1)):
            if c <= length:
                cell = rows[unit.name][instance][c - 1]
                rows[unit.name][instance][c - 1] = "#" if cell != "." else str(iid % 10)

    label_width = max(len(u.name) for u in machine.units) + 3
    ruler = " " * label_width + "".join(
        "|" if (c % 5 == 0 or c == 1) else " " for c in range(1, length + 1)
    )
    lines = [ruler]
    for unit in machine.units:
        for instance, cells in enumerate(rows[unit.name]):
            label = unit.name if unit.count == 1 else f"{unit.name}[{instance}]"
            lines.append(f"{label:<{label_width}}" + "".join(cells))
    return "\n".join(lines)
