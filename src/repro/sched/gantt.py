"""Schedule visualizations: Gantt occupancy, sync timelines, HTML export.

Three complementary views of a :class:`repro.sched.Schedule`:

* :func:`gantt` — one row per function-unit instance; multi-cycle
  operations stretch across their latency, and an idle unit is visibly
  idle.
* :func:`sync_timeline` — the Fig. 4a/4b view: one row per issue cycle
  with the bundle and one column per synchronization pair marking the
  Wait (``W``), the Send (``S``) and the span between them (``|``) —
  the stretch the paper's scheduler exists to shrink.
* :func:`execution_timeline` — the cross-iteration DOACROSS view: one
  row per iteration on its own processor, with stall cycles (``~``)
  where a Wait blocks until the producer iteration's Send becomes
  visible.  Uses a local event walk (same model as
  :mod:`repro.sim.multiproc`, kept here so ``sched`` stays independent
  of ``sim``).
* :func:`timeline_html` — both views in one self-contained HTML
  document (inline CSS + SVG, no external resources) for sharing.

Example (Fig. 1 loop on the 4-issue paper machine)::

    cycle        1    5    10   15
    load/store   .335668...
    integer      122..........
    multiplier   ....77777....
    ...
"""

from __future__ import annotations

import html as _html

from repro.sched.schedule import Schedule


def gantt(schedule: Schedule, width: int | None = None) -> str:
    """Render the occupancy chart.

    Cells show the last digit of the occupying instruction id (``#`` for a
    collision, which a valid schedule never has); ``.`` is idle.  ``width``
    truncates long schedules for display.
    """
    machine = schedule.machine
    lowered = schedule.lowered
    length = schedule.length if width is None else min(schedule.length, width)

    # rows per unit instance
    rows: dict[str, list[list[str]]] = {
        unit.name: [["."] * length for _ in range(unit.count)] for unit in machine.units
    }
    # greedy instance packing per unit, in issue order (matches the
    # interval-count admission rule of ResourceTable)
    instance_free: dict[str, list[int]] = {
        unit.name: [1] * unit.count for unit in machine.units
    }
    for iid, cycle in sorted(schedule.cycle_of.items(), key=lambda kv: (kv[1], kv[0])):
        unit = machine.unit_for(lowered.instruction(iid).fu)
        busy = 1 if unit.pipelined else unit.latency
        frees = instance_free[unit.name]
        instance = 0
        for i in range(unit.count):
            if frees[i] <= cycle:
                instance = i
                break
        frees[instance] = cycle + busy
        for c in range(cycle, min(cycle + busy, length + 1)):
            if c <= length:
                cell = rows[unit.name][instance][c - 1]
                rows[unit.name][instance][c - 1] = "#" if cell != "." else str(iid % 10)

    label_width = max(len(u.name) for u in machine.units) + 3
    ruler = " " * label_width + "".join(
        "|" if (c % 5 == 0 or c == 1) else " " for c in range(1, length + 1)
    )
    lines = [ruler]
    for unit in machine.units:
        for instance, cells in enumerate(rows[unit.name]):
            label = unit.name if unit.count == 1 else f"{unit.name}[{instance}]"
            lines.append(f"{label:<{label_width}}" + "".join(cells))
    return "\n".join(lines)


# -- synchronization-pair timeline (the Fig. 4a/4b view) ------------------------


def sync_timeline(schedule: Schedule) -> str:
    """Bundle table with one marker column per synchronization pair.

    Each row is an issue cycle with its bundle (as in
    :meth:`Schedule.format`); each pair column marks the Wait (``W``),
    the Send (``S``) and fills the cycles in between with ``|`` when the
    span is positive — the region whose height is the paper's ``i-j+1``
    per-hop penalty.  A column where ``S`` sits *above* ``W`` is the
    run-time LFD placement: that pair never stalls.
    """
    lowered = schedule.lowered
    pairs = lowered.synced.pairs
    width = schedule.machine.issue_width
    bundles = schedule.bundles()
    bundle_text = [
        f"({', '.join([str(i) for i in bundle] + ['-'] * (width - len(bundle)))})"
        for bundle in bundles
    ]
    bundle_width = max((len(t) for t in bundle_text), default=0)

    header = f"{'cycle':<5} {'bundle':<{bundle_width}}"
    for pair in pairs:
        header += f"  P{pair.pair_id}"
    lines = [header]
    for cycle, text in enumerate(bundle_text, start=1):
        row = f"c{cycle:<4} {text:<{bundle_width}}"
        for pair in pairs:
            wait, send = schedule.wait_cycle(pair.pair_id), schedule.send_cycle(pair.pair_id)
            if cycle == wait and cycle == send:
                mark = "X"  # degenerate: same bundle
            elif cycle == wait:
                mark = "W"
            elif cycle == send:
                mark = "S"
            elif wait < cycle < send:
                mark = "|"
            else:
                mark = "."
            row += f"  {mark} "
        lines.append(row.rstrip())
    for pair in pairs:
        span = schedule.span(pair.pair_id)
        wait, send = schedule.wait_cycle(pair.pair_id), schedule.send_cycle(pair.pair_id)
        kind = f"span {span}" if span > 0 else f"span {span} (run-time LFD, never stalls)"
        lines.append(f"P{pair.pair_id}: W@c{wait} -> S@c{send}, d={pair.distance}, {kind}")
    return "\n".join(lines)


# -- cross-iteration execution timeline ----------------------------------------


def _iteration_walk(
    schedule: Schedule, n: int, signal_latency: int
) -> list[tuple[list[int], list[int], int]]:
    """Per-iteration ``(wait_cycles, cumulative_stall, finish)`` under the
    one-iteration-per-processor DOACROSS model — the same event walk as
    :func:`repro.sim.multiproc.simulate_doacross`, duplicated locally so
    the renderer does not pull ``sim`` into the ``sched`` layer."""
    import bisect

    lowered = schedule.lowered
    length = schedule.length
    waits = sorted(
        (
            schedule.wait_cycle(pair.pair_id),
            pair.distance,
            schedule.send_cycle(pair.pair_id),
            pair.pair_id,
        )
        for pair in lowered.synced.pairs
    )
    out: list[tuple[list[int], list[int], int]] = []

    def abs_cycle(iteration: int, cycle: int) -> int:
        wait_cycles, cumulative, _ = out[iteration - 1]
        pos = bisect.bisect_right(wait_cycles, cycle)
        return cycle + (cumulative[pos - 1] if pos else 0)

    for k in range(1, n + 1):
        stall = 0
        wait_cycles: list[int] = []
        cumulative: list[int] = []
        for wait_cycle, distance, send_cycle, _pair_id in waits:
            producer = k - distance
            if producer >= 1:
                needed = abs_cycle(producer, send_cycle) + signal_latency
                if needed > wait_cycle + stall:
                    stall = needed - wait_cycle
            wait_cycles.append(wait_cycle)
            cumulative.append(stall)
        out.append((wait_cycles, cumulative, length + stall))
    return out


def execution_timeline(
    schedule: Schedule, n: int = 6, signal_latency: int = 1
) -> str:
    """Cross-iteration view: one row per iteration (own processor).

    ``=`` is an executing cycle, ``~`` a stall cycle spent blocked at a
    Wait, ``W``/``S`` the issue cycles of the synchronization operations
    (lower-case when several coincide).  The staircase of ``~`` runs is
    the compounding LBD penalty — each iteration inherits its producer's
    delay and adds the wait→send span on top.
    """
    import bisect

    lowered = schedule.lowered
    length = schedule.length
    walk = _iteration_walk(schedule, n, signal_latency)
    wait_c = {p.pair_id: schedule.wait_cycle(p.pair_id) for p in lowered.synced.pairs}
    send_c = {p.pair_id: schedule.send_cycle(p.pair_id) for p in lowered.synced.pairs}
    total_width = max((finish for _, _, finish in walk), default=0)

    lines = [f"iteration rows, absolute cycles 1..{total_width} "
             f"(= execute, ~ stall, W wait, S send)"]
    for k, (wait_cycles, cumulative, finish) in enumerate(walk, start=1):
        row = [" "] * total_width

        def stall_at(cycle: int) -> int:
            pos = bisect.bisect_right(wait_cycles, cycle)
            return cumulative[pos - 1] if pos else 0

        for c in range(1, length + 1):
            row[c + stall_at(c) - 1] = "="
        # stall gaps sit immediately before their wait's issue position
        prev = 0
        for w, cum in zip(wait_cycles, cumulative):
            delta = cum - prev
            if delta > 0:
                for pos in range(w + prev, w + cum):
                    row[pos - 1] = "~"
            prev = cum
        for pid, c in wait_c.items():
            pos = c + stall_at(c) - 1
            row[pos] = "W" if row[pos] in "=~" else "w"
        for pid, c in send_c.items():
            pos = c + stall_at(c) - 1
            row[pos] = "S" if row[pos] in "=~" else "s"
        lines.append(f"iter {k:<3} |{''.join(row)}|  finish c{finish}")
    lines.append(
        f"parallel time T = {max((f for *_, f in walk), default=0)} "
        f"for n={n} (l = {length}, signal latency {signal_latency})"
    )
    return "\n".join(lines)


# -- self-contained HTML export ------------------------------------------------

_HTML_CSS = """
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 1.5rem;
       background: #fcfcfc; color: #1a1a1a; }
h1 { font-size: 1.1rem; } h2 { font-size: 0.95rem; margin-top: 1.5rem; }
table { border-collapse: collapse; font-size: 0.8rem; }
td, th { border: 1px solid #ccc; padding: 0.15rem 0.45rem; text-align: left; }
th { background: #eee; }
td.sync { background: #fde9c8; font-weight: bold; }
td.wait { background: #f8d0d0; font-weight: bold; }
td.send { background: #cfe8cf; font-weight: bold; }
td.span { background: #f3e6f8; text-align: center; }
td.idle { color: #bbb; }
.legend { font-size: 0.78rem; color: #555; margin: 0.4rem 0 1rem; }
svg { background: #fff; border: 1px solid #ddd; margin-top: 0.5rem; }
""".strip()


def timeline_svg(
    schedule: Schedule,
    n: int = 8,
    signal_latency: int = 1,
) -> str:
    """The cross-iteration execution view as a bare ``<svg>`` fragment.

    One row per iteration on its own processor: blue execution segments,
    amber stall gaps, red/green Wait/Send ticks, and a dashed arrow from
    each Wait back to the producer iteration's Send.  Embeddable as-is —
    :func:`timeline_html` wraps it with the bundle table, and
    :mod:`repro.obs.dash` inlines it per run in the dashboard.
    """
    pairs = schedule.lowered.synced.pairs
    walk = _iteration_walk(schedule, n, signal_latency)
    length = schedule.length
    total = max((finish for *_, finish in walk), default=1)
    scale, row_h, left = (max(4, min(18, 900 // max(total, 1))), 26, 70)
    svg_w, svg_h = left + total * scale + 20, n * row_h + 40
    parts = [
        f'<svg width="{svg_w}" height="{svg_h}" viewBox="0 0 {svg_w} {svg_h}" '
        'xmlns="http://www.w3.org/2000/svg">'
    ]
    import bisect as _bisect

    def abs_pos(iteration: int, cycle: int) -> int:
        wait_cycles, cumulative, _ = walk[iteration - 1]
        pos = _bisect.bisect_right(wait_cycles, cycle)
        return cycle + (cumulative[pos - 1] if pos else 0)

    for k, (wait_cycles, cumulative, finish) in enumerate(walk, start=1):
        y = 20 + (k - 1) * row_h
        parts.append(
            f'<text x="4" y="{y + 14}" font-size="11" '
            f'font-family="monospace">iter {k}</text>'
        )
        # execution segments between stall gaps
        prev_cum = 0
        seg_start = 1
        for w, cum in zip(wait_cycles + [length + 1], list(cumulative) + [None]):
            cum_here = prev_cum if cum is None else cum
            if cum is not None and cum > prev_cum:
                # segment before the gap, then the amber stall block
                x0 = left + (seg_start + prev_cum - 1) * scale
                x1 = left + (w + prev_cum - 1) * scale
                if x1 > x0:
                    parts.append(
                        f'<rect x="{x0}" y="{y}" width="{x1 - x0}" '
                        f'height="18" fill="#9ecae1"/>'
                    )
                gx1 = left + (w + cum - 1) * scale
                parts.append(
                    f'<rect x="{x1}" y="{y}" width="{gx1 - x1}" height="18" '
                    f'fill="#fdd49e"><title>iter {k} stalls {cum - prev_cum} '
                    f"cycle(s) at wait c{w}</title></rect>"
                )
                seg_start = w
                prev_cum = cum
        x0 = left + (seg_start + prev_cum - 1) * scale
        x1 = left + (length + prev_cum) * scale
        if x1 > x0:
            parts.append(
                f'<rect x="{x0}" y="{y}" width="{x1 - x0}" height="18" '
                f'fill="#9ecae1"/>'
            )
        # wait/send ticks + producer arrows
        for pair in pairs:
            wc, sc = schedule.wait_cycle(pair.pair_id), schedule.send_cycle(pair.pair_id)
            wx = left + (abs_pos(k, wc) - 1) * scale
            sx = left + (abs_pos(k, sc) - 1) * scale
            parts.append(
                f'<rect x="{wx}" y="{y}" width="{max(scale, 2)}" height="18" '
                f'fill="#de2d26"><title>W P{pair.pair_id} iter {k}</title></rect>'
            )
            parts.append(
                f'<rect x="{sx}" y="{y}" width="{max(scale, 2)}" height="18" '
                f'fill="#31a354"><title>S P{pair.pair_id} iter {k}</title></rect>'
            )
            producer = k - pair.distance
            if producer >= 1:
                px = left + (abs_pos(producer, sc) - 1) * scale
                py = 20 + (producer - 1) * row_h + 18
                parts.append(
                    f'<line x1="{px}" y1="{py}" x2="{wx}" y2="{y}" '
                    f'stroke="#888" stroke-dasharray="3,2"/>'
                )
    parts.append("</svg>")
    return "".join(parts)


def timeline_html(
    schedule: Schedule,
    n: int = 8,
    signal_latency: int = 1,
    title: str | None = None,
) -> str:
    """Both timeline views as one self-contained HTML document.

    The per-cycle table shows every bundle with rendered instruction
    text (synchronization operations highlighted, one span column per
    pair); the SVG below (:func:`timeline_svg`) shows ``n`` iterations
    executing on their own processors, stall gaps in amber, and an arrow
    per stalled Wait from the producer's Send.  No external resources —
    the file can be attached to a bug report as-is.
    """
    from repro.codegen.isa import render_instruction

    lowered = schedule.lowered
    pairs = lowered.synced.pairs
    length = schedule.length
    name = title or f"{schedule.scheduler_name} on {schedule.machine.name}"
    esc = _html.escape

    # -- bundle table
    head = "<tr><th>cycle</th><th>bundle</th>"
    for pair in pairs:
        head += f"<th>P{pair.pair_id} (d={pair.distance})</th>"
    head += "</tr>"
    rows = [head]
    for cycle, bundle in enumerate(schedule.bundles(), start=1):
        texts = []
        for iid in bundle:
            instr = lowered.instruction(iid)
            cls = "sync" if instr.sync is not None else ""
            texts.append(
                f'<span class="{cls}">{iid}: {esc(render_instruction(instr))}</span>'
            )
        cells = f"<tr><td>c{cycle}</td><td>{'<br>'.join(texts) or '&mdash;'}</td>"
        for pair in pairs:
            wait = schedule.wait_cycle(pair.pair_id)
            send = schedule.send_cycle(pair.pair_id)
            if cycle == wait:
                cells += '<td class="wait">W</td>'
            elif cycle == send:
                cells += '<td class="send">S</td>'
            elif wait < cycle < send:
                cells += '<td class="span">&#9474;</td>'
            else:
                cells += '<td class="idle">&middot;</td>'
        rows.append(cells + "</tr>")
    spans = "; ".join(
        f"P{p.pair_id}: span {schedule.span(p.pair_id)}"
        + (" (run-time LFD)" if schedule.span(p.pair_id) <= 0 else "")
        for p in pairs
    )

    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{esc(name)}</title>
<style>{_HTML_CSS}</style></head>
<body>
<h1>{esc(name)}</h1>
<p class="legend">iteration length l = {length}; {esc(spans)}</p>
<h2>Per-cycle schedule (Fig. 4 view)</h2>
<table>{''.join(rows)}</table>
<p class="legend">W = Wait_Signal issue, S = Send_Signal issue,
&#9474; = wait&rarr;send span (per-hop LBD penalty = span + signal latency
&minus; 1 per crossing).</p>
<h2>Cross-iteration execution (n = {n}, one processor per iteration)</h2>
{timeline_svg(schedule, n, signal_latency)}
<p class="legend">blue = executing, amber = stalled at a Wait, red tick = Wait
issue, green tick = Send issue; dashed lines connect each Wait to the
producer iteration's Send that releases it.</p>
</body></html>
"""
