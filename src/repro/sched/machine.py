"""Superscalar machine configurations.

A machine is an issue width plus a set of function units.  Each *unit spec*
serves one or more architectural :class:`~repro.codegen.isa.FuClass`\\ es
with some number of identical physical instances and a fixed latency;
multi-cycle units are non-pipelined (an instance is busy for its full
latency), matching the era's DLX-style FP units.

Two families are provided:

* :func:`figure4_machine` — the Section 3 walkthrough machine: 4-issue;
  load/store, a single *adder* serving both integer and FP adds, shifter,
  multiplier and divider; all unit latency (the walkthrough counts every
  instruction as one cycle).
* :func:`paper_machine` — the Section 4 experiment machines: 2- or 4-issue;
  separate load/store, integer, floating-point, multiplier (3 cycles),
  divider (6 cycles) and shifter units, each with 1 or 2 instances.

Both have a single synchronization port (one ``Wait``/``Send`` per cycle),
which is what the paper's Fig. 4 bundles exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.isa import FuClass


@dataclass(frozen=True)
class UnitSpec:
    """One kind of physical function unit."""

    name: str
    classes: frozenset[FuClass]
    count: int
    latency: int = 1
    pipelined: bool = False

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("unit count must be >= 1")
        if self.latency < 1:
            raise ValueError("unit latency must be >= 1")


@dataclass(frozen=True)
class MachineConfig:
    """Issue width plus function units; every FuClass must be served by
    exactly one unit spec."""

    name: str
    issue_width: int
    units: tuple[UnitSpec, ...]

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError("issue width must be >= 1")
        served: dict[FuClass, str] = {}
        for unit in self.units:
            for cls in unit.classes:
                if cls in served:
                    raise ValueError(
                        f"{cls} served by both {served[cls]!r} and {unit.name!r}"
                    )
                served[cls] = unit.name
        missing = [cls for cls in FuClass if cls not in served]
        if missing:
            raise ValueError(f"function unit classes not served: {missing}")

    def unit_for(self, fu: FuClass) -> UnitSpec:
        for unit in self.units:
            if fu in unit.classes:
                return unit
        raise KeyError(fu)  # pragma: no cover - __post_init__ guarantees

    def latency(self, fu: FuClass) -> int:
        return self.unit_for(fu).latency


def figure4_machine() -> MachineConfig:
    """The Section 3 walkthrough machine (paper Fig. 4): 4-issue, one unit
    of each, a shared int/FP adder, unit latencies."""
    return MachineConfig(
        name="fig4-4issue",
        issue_width=4,
        units=(
            UnitSpec("load/store", frozenset({FuClass.LOAD_STORE}), 1),
            UnitSpec("adder", frozenset({FuClass.INT_ALU, FuClass.FP_ALU}), 1),
            UnitSpec("shifter", frozenset({FuClass.SHIFTER}), 1),
            UnitSpec("multiplier", frozenset({FuClass.MULTIPLIER}), 1),
            UnitSpec("divider", frozenset({FuClass.DIVIDER}), 1),
            UnitSpec("sync", frozenset({FuClass.SYNC}), 1),
        ),
    )


def paper_machine(issue_width: int, fu_count: int, pipelined: bool = False) -> MachineConfig:
    """A Section 4 experiment machine.

    ``issue_width`` in {2, 4} and ``fu_count`` in {1, 2} give the paper's
    four cases; other positive values are accepted for sweeps.  Multiplier
    and divider take 3 and 6 cycles, other units one cycle; the sync port
    is always single.  ``pipelined`` makes the multi-cycle units accept a
    new operation every cycle (latency unchanged) — an extension knob; the
    paper's units are non-pipelined.
    """
    suffix = "-pipe" if pipelined else ""
    return MachineConfig(
        name=f"paper-{issue_width}issue-fu{fu_count}{suffix}",
        issue_width=issue_width,
        units=(
            UnitSpec("load/store", frozenset({FuClass.LOAD_STORE}), fu_count),
            UnitSpec("integer", frozenset({FuClass.INT_ALU}), fu_count),
            UnitSpec("float", frozenset({FuClass.FP_ALU}), fu_count),
            UnitSpec(
                "multiplier",
                frozenset({FuClass.MULTIPLIER}),
                fu_count,
                latency=3,
                pipelined=pipelined,
            ),
            UnitSpec(
                "divider",
                frozenset({FuClass.DIVIDER}),
                fu_count,
                latency=6,
                pipelined=pipelined,
            ),
            UnitSpec("shifter", frozenset({FuClass.SHIFTER}), fu_count),
            UnitSpec("sync", frozenset({FuClass.SYNC}), 1),
        ),
    )


def paper_cases() -> list[MachineConfig]:
    """The four Section 4 machine cases, in the paper's table order."""
    return [
        paper_machine(2, 1),
        paper_machine(2, 2),
        paper_machine(4, 1),
        paper_machine(4, 2),
    ]
