"""Register pressure analysis of a schedule.

The paper's lowering exists in a register-starved world ("delayed Load
technique is employed to effectively use the limited registers"), and
aggressive scheduling famously trades register pressure for ILP.  This
module measures that trade: for a given schedule, how many temporaries are
live at once — a value is live from its definition's issue cycle until its
last consumer's issue cycle.

The interesting reproduction question (benchmarked in
``test_bench_register_pressure.py``): does the synchronization-aware
scheduler, which pulls whole dependence cones around, need more registers
than list scheduling?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sched.schedule import Schedule


@dataclass(frozen=True)
class PressureProfile:
    """Live-temporary counts per cycle and their maximum."""

    per_cycle: tuple[int, ...]  # index 0 = cycle 1
    max_pressure: int
    temporaries: int

    def cycle_of_peak(self) -> int:
        return self.per_cycle.index(self.max_pressure) + 1


def register_pressure(schedule: Schedule) -> PressureProfile:
    """Compute the live-range overlap profile of ``schedule``.

    Loop-invariant registers (the index, bounds) are excluded — they live
    for the whole iteration on any schedule and shift every count equally.
    A defined value with no consumer (possible only for dead code, which
    the lowerer never emits) would be live for its definition cycle alone.
    """
    lowered = schedule.lowered
    cycle_of = schedule.cycle_of
    def_cycle: dict[str, int] = {}
    last_use: dict[str, int] = {}

    for instr in lowered.instructions:
        cycle = cycle_of[instr.iid]
        if instr.dest is not None:
            def_cycle[instr.dest] = cycle
        for reg in instr.uses():
            # Entries for loop-invariant registers are recorded too but
            # never consulted: ranges are built from `def_cycle` keys only.
            last_use[reg] = max(last_use.get(reg, 0), cycle)

    length = schedule.issue_cycles
    per_cycle = [0] * length
    for temp, start in def_cycle.items():
        end = max(last_use.get(temp, start), start)
        for cycle in range(start, end + 1):
            per_cycle[cycle - 1] += 1

    return PressureProfile(
        per_cycle=tuple(per_cycle),
        max_pressure=max(per_cycle, default=0),
        temporaries=len(def_cycle),
    )


def minimum_registers(schedule: Schedule) -> int:
    """Registers needed to run ``schedule`` without spilling: the peak
    live-range overlap (live ranges form an interval graph, whose chromatic
    number is the max clique = max overlap)."""
    return register_pressure(schedule).max_pressure
