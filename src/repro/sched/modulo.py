"""Iterative modulo scheduling (software pipelining) — extension module.

The paper exploits a loop's cross-iteration parallelism by *spreading
iterations across processors* and synchronizing.  The era's competing
approach keeps one processor and *overlaps* iterations in a software
pipeline: a kernel of initiation interval ``II`` cycles starts a new
iteration every ``II`` cycles, bounded below by

* **ResMII** — the busiest unit's work per iteration / its instance count,
* **RecMII** — for every dependence cycle, ``ceil(Σ latency / Σ distance)``
  (loop-carried edges close the cycles).

This module implements Rau's iterative modulo scheduling (the
schedule-and-eject variant) over the same lowered code, DFG and machine
models as the rest of the system, minus the synchronization machinery —
a single processor needs no signals.  ``benchmarks/test_bench_modulo.py``
compares the two execution models head-to-head.

Scope note: we schedule the kernel and validate all modulo constraints;
register lifetimes longer than ``II`` would need modulo variable expansion
to *execute*, which is out of scope — times are derived from the validated
kernel (``T = (n-1)·II + fill``), the standard software-pipelining model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.codegen.lower import LoweredLoop, lower_loop
from repro.deps import analyze_loop
from repro.dfg.builder import build_dfg
from repro.ir.ast_nodes import Loop
from repro.sched.machine import MachineConfig
from repro.sync.insertion import SyncedLoop, _ensure_labels


@dataclass(frozen=True)
class LoopEdge:
    """A dependence edge with an iteration distance (0 = intra-iteration)."""

    src: int
    dst: int
    distance: int


@dataclass
class ModuloSchedule:
    """A validated kernel schedule."""

    machine: MachineConfig
    lowered: LoweredLoop
    ii: int
    cycle_of: dict[int, int]
    mii_resource: int
    mii_recurrence: int

    @property
    def makespan(self) -> int:
        return max(
            cycle + self.machine.latency(self.lowered.instruction(iid).fu) - 1
            for iid, cycle in self.cycle_of.items()
        )

    def parallel_time(self, n: int) -> int:
        """Single-processor pipelined time: fill + one kernel per iteration."""
        if n <= 0:
            return 0
        return (n - 1) * self.ii + self.makespan


@dataclass
class _Mrt:
    """Modulo reservation table: unit occupancy folded at II."""

    machine: MachineConfig
    ii: int
    issue: list[int] = field(default_factory=list)
    units: dict[str, list[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.issue = [0] * self.ii
        self.units = {u.name: [0] * self.ii for u in self.machine.units}

    def _slots(self, fu, cycle: int) -> list[int]:
        unit = self.machine.unit_for(fu)
        busy = 1 if unit.pipelined else unit.latency
        if busy >= self.ii:
            return list(range(self.ii))
        return [(cycle + k) % self.ii for k in range(busy)]

    def fits(self, fu, cycle: int) -> bool:
        unit = self.machine.unit_for(fu)
        if self.issue[cycle % self.ii] >= self.machine.issue_width:
            return False
        return all(self.units[unit.name][s] < unit.count for s in self._slots(fu, cycle))

    def add(self, fu, cycle: int) -> None:
        unit = self.machine.unit_for(fu)
        self.issue[cycle % self.ii] += 1
        for s in self._slots(fu, cycle):
            self.units[unit.name][s] += 1

    def remove(self, fu, cycle: int) -> None:
        unit = self.machine.unit_for(fu)
        self.issue[cycle % self.ii] -= 1
        for s in self._slots(fu, cycle):
            self.units[unit.name][s] -= 1


def prepare_loop(loop: Loop) -> tuple[LoweredLoop, list[LoopEdge]]:
    """Lower ``loop`` without synchronization and collect its loop DFG:
    intra-iteration edges (distance 0) plus carried edges between the
    dependence events, at instruction level."""
    labelled = _ensure_labels(loop)
    graph = analyze_loop(labelled)
    synced = SyncedLoop(loop=labelled)  # no pairs: a plain sequential body
    lowered = lower_loop(synced)
    dfg = build_dfg(lowered)
    edges = [LoopEdge(e.src, e.dst, 0) for e in dfg.edges]
    for dep in graph.loop_carried():
        if dep.irregular or dep.distance is None:
            raise ValueError("modulo scheduling requires constant dependence distances")
        src = lowered.ref_iids[id(dep.source_ref)]
        dst = lowered.ref_iids[id(dep.sink_ref)]
        if src and dst:
            edges.append(LoopEdge(src, dst, dep.distance))
    return lowered, edges


def resource_mii(lowered: LoweredLoop, machine: MachineConfig) -> int:
    best = 1
    for unit in machine.units:
        work = sum(
            (1 if unit.pipelined else unit.latency)
            for i in lowered.instructions
            if machine.unit_for(i.fu) is unit
        )
        best = max(best, math.ceil(work / unit.count))
    return best


def recurrence_mii(lowered: LoweredLoop, edges: list[LoopEdge], machine: MachineConfig) -> int:
    """Max over dependence cycles of ceil(latency sum / distance sum).

    Computed by binary search on II: II is feasible w.r.t. recurrences iff
    the constraint graph with weights ``lat(u) - II*distance`` has no
    positive cycle (checked by Bellman-Ford).
    """
    nodes = [i.iid for i in lowered.instructions]

    def has_positive_cycle(ii: int) -> bool:
        dist = {n: 0 for n in nodes}
        for _ in range(len(nodes)):
            changed = False
            for e in edges:
                w = machine.latency(lowered.instruction(e.src).fu) - ii * e.distance
                if dist[e.src] + w > dist[e.dst]:
                    dist[e.dst] = dist[e.src] + w
                    changed = True
            if not changed:
                return False
        return True  # still relaxing after |V| passes: positive cycle

    lo, hi = 1, 1 + sum(machine.latency(i.fu) for i in lowered.instructions)
    while lo < hi:
        mid = (lo + hi) // 2
        if has_positive_cycle(mid):
            lo = mid + 1
        else:
            hi = mid
    return lo


def modulo_schedule(
    loop: Loop,
    machine: MachineConfig,
    max_ii: int | None = None,
    budget_factor: int = 16,
) -> ModuloSchedule:
    """Schedule ``loop``'s kernel with Rau's iterative algorithm."""
    lowered, edges = prepare_loop(loop)
    mii_res = resource_mii(lowered, machine)
    mii_rec = recurrence_mii(lowered, edges, machine)
    mii = max(mii_res, mii_rec)
    if max_ii is None:
        max_ii = mii + len(lowered.instructions) * max(
            u.latency for u in machine.units
        ) + 8

    preds: dict[int, list[LoopEdge]] = {i.iid: [] for i in lowered.instructions}
    for e in edges:
        preds[e.dst].append(e)

    # height priority from the distance-0 subgraph
    order = [i.iid for i in lowered.instructions]
    height = {n: machine.latency(lowered.instruction(n).fu) for n in order}
    for n in reversed(order):
        for e in edges:
            if e.distance == 0 and e.src == n:
                height[n] = max(height[n], machine.latency(lowered.instruction(n).fu) + height[e.dst])

    for ii in range(mii, max_ii + 1):
        result = _try_ii(lowered, edges, preds, machine, ii, height, budget_factor)
        if result is not None:
            return ModuloSchedule(
                machine=machine,
                lowered=lowered,
                ii=ii,
                cycle_of=result,
                mii_resource=mii_res,
                mii_recurrence=mii_rec,
            )
    raise RuntimeError(f"no feasible II up to {max_ii}")  # pragma: no cover


def _try_ii(lowered, edges, preds, machine, ii, height, budget_factor):
    """One schedule-and-eject attempt at a fixed II (Rau's inner loop)."""
    mrt = _Mrt(machine=machine, ii=ii)
    cycle_of: dict[int, int] = {}
    never_scheduled = {i.iid for i in lowered.instructions}
    budget = budget_factor * len(never_scheduled)
    # worklist ordered by height (descending), then id
    pending = sorted(never_scheduled, key=lambda n: (-height[n], n))

    while pending:
        if budget <= 0:
            return None
        budget -= 1
        node = pending.pop(0)
        fu = lowered.instruction(node).fu
        earliest = 1
        for e in preds[node]:
            if e.src in cycle_of:
                lat = machine.latency(lowered.instruction(e.src).fu)
                earliest = max(earliest, cycle_of[e.src] + lat - ii * e.distance)
        placed = False
        for cycle in range(earliest, earliest + ii):
            if mrt.fits(fu, cycle):
                cycle_of[node] = cycle
                mrt.add(fu, cycle)
                placed = True
                break
        if not placed:
            # force placement at earliest, ejecting resource conflicts
            cycle = earliest
            if node in never_scheduled:
                never_scheduled.discard(node)
            # eject everything on this unit/slot congruent with `cycle`
            ejected = []
            for other, other_cycle in list(cycle_of.items()):
                other_fu = lowered.instruction(other).fu
                same_issue = other_cycle % ii == cycle % ii
                same_unit = machine.unit_for(other_fu) is machine.unit_for(fu)
                overlap = any(
                    s in _Mrt._slots(mrt, fu, cycle) for s in _Mrt._slots(mrt, other_fu, other_cycle)
                )
                if (same_unit and overlap) or (same_issue and not mrt.fits(fu, cycle)):
                    mrt.remove(other_fu, other_cycle)
                    del cycle_of[other]
                    ejected.append(other)
                    if mrt.fits(fu, cycle):
                        break
            if not mrt.fits(fu, cycle):
                return None
            cycle_of[node] = cycle
            mrt.add(fu, cycle)
            pending = sorted(
                set(pending) | set(ejected), key=lambda n: (-height[n], n)
            )
        never_scheduled.discard(node)
        # dependence repair: successors violating their constraint re-enter
        for e in edges:
            if e.src == node and e.dst in cycle_of:
                lat = machine.latency(lowered.instruction(node).fu)
                if cycle_of[e.dst] < cycle_of[node] + lat - ii * e.distance:
                    victim_fu = lowered.instruction(e.dst).fu
                    mrt.remove(victim_fu, cycle_of.pop(e.dst))
                    if e.dst not in pending:
                        pending.append(e.dst)
        pending.sort(key=lambda n: (-height[n], n))

    # final validation
    for e in edges:
        lat = machine.latency(lowered.instruction(e.src).fu)
        if cycle_of[e.dst] < cycle_of[e.src] + lat - ii * e.distance:
            return None
    return cycle_of


def verify_modulo(schedule: ModuloSchedule, edges: list[LoopEdge] | None = None) -> list[str]:
    """Re-check every modulo constraint of a finished kernel schedule."""
    lowered = schedule.lowered
    machine = schedule.machine
    ii = schedule.ii
    violations: list[str] = []
    if edges is None:
        _, edges = prepare_loop(lowered.synced.loop)
    for e in edges:
        lat = machine.latency(lowered.instruction(e.src).fu)
        lhs = schedule.cycle_of[e.dst]
        rhs = schedule.cycle_of[e.src] + lat - ii * e.distance
        if lhs < rhs:
            violations.append(f"edge {e.src}->{e.dst} (d={e.distance}): {lhs} < {rhs}")
    mrt = _Mrt(machine=machine, ii=ii)
    for iid, cycle in schedule.cycle_of.items():
        fu = lowered.instruction(iid).fu
        if not mrt.fits(fu, cycle):
            violations.append(f"resource overflow at instruction {iid} (cycle {cycle})")
        else:
            mrt.add(fu, cycle)
    return violations
