"""The paper's synchronization-aware instruction scheduler (Section 3.2).

Scheduling order:

1. **Synchronization paths** in Sigwat graphs, in descending
   ``(n/d)·|SP|`` order, overlapping paths grouped.  The highest-priority
   path of each group is placed *contiguously* — one path node per
   back-to-back cycle (spaced by unit latency) — because the path is the
   shortest possible wait→send span and packing it realizes that minimum.
   The placement searches the earliest start cycle for which the path's
   off-path ancestors fit in the surrounding slots (a retry search; loop
   bodies are tens of instructions, so this is cheap).  Remaining paths of
   the group are packed as tightly as dependences allow.
2. **Remaining Sigwat nodes**, ASAP in topological order.
3. **Sig graphs**: each ``Send_Signal`` is placed as late as possible but
   *before* its already-scheduled wait (converting the pair to run-time
   LFD); other Sig-graph nodes ASAP.
4. **Wat graphs**: each ``Wait_Signal`` is placed *after* its send (run-time
   LFD again); other Wat-graph nodes ASAP.
5. **Plain nodes** (no synchronization in their component), ASAP.

Unlike the cycle-by-cycle list scheduler, placement is slot-based: a later
phase may fill empty slots of earlier cycles, exactly as the paper's
Fig. 4(b) fills Wat-graph nodes into the Sigwat cycles.

Every step honours the DFG (which includes the synchronization-condition
arcs), so the result is always a legal, stale-data-free schedule; the
options exist to ablate the individual performance ideas.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.codegen.isa import Opcode
from repro.codegen.lower import LoweredLoop
from repro.dfg.graph import DataFlowGraph
from repro.dfg.partition import Component, ComponentKind, partition
from repro.dfg.syncpath import SyncPath, find_sync_paths, group_overlapping, order_paths
from repro.ir.ast_nodes import Const
from repro.obs.explain import Decision, active_journal
from repro.obs.metrics import count as metric_count
from repro.obs.trace import span
from repro.sched.machine import MachineConfig
from repro.sched.resources import ResourceTable
from repro.sched.schedule import Schedule


@dataclass(frozen=True)
class SyncSchedulerOptions:
    """Feature switches for ablation studies.  Defaults = the paper."""

    contiguous_sp: bool = True  # pack each primary SP back-to-back
    sp_order: str = "desc"  # "desc" | "asc" | "id": (n/d)|SP| ordering
    sends_before_waits: bool = True  # Sig-graph deadline placement
    waits_after_sends: bool = True  # Wat-graph placement after the send
    trip_count: int | None = None  # n for SP weights; default from the loop
    guard_never_degrade: bool = False  # fall back to list scheduling if faster
    """The paper asserts the technique "never degrades the system
    performance".  The *stall component* never degrades, but the phase-
    based placement can cost a cycle or two of iteration length on
    stall-free loops, and cross-coupled pairs can stack (see
    EXPERIMENTS.md §6).  With this guard on, the scheduler simulates both
    its own result and plain list scheduling and returns the faster one,
    making the claim literally true at the cost of one extra scheduling
    pass."""


class _SyncScheduler:
    def __init__(
        self,
        lowered: LoweredLoop,
        graph: DataFlowGraph,
        machine: MachineConfig,
        options: SyncSchedulerOptions,
    ) -> None:
        self.lowered = lowered
        self.graph = graph
        self.machine = machine
        self.options = options
        self.resources = ResourceTable(machine)
        self.cycle_of: dict[int, int] = {}
        self.topo = graph.topological_order()
        self.topo_pos = {iid: i for i, iid in enumerate(self.topo)}
        self._inflight_sends: set[int] = set()
        self._sp_pair_ids: set[int] = set()  # filled by run()
        # Decision provenance (repro.obs.explain).  Buffered per-iid so the
        # transactional SP placement can roll decisions back with unplace();
        # flushed to the journal once at the end of run().
        self._journal = active_journal()
        self._decisions: dict[int, Decision] = {}
        self._phase = "init"
        self._rule = "asap"
        self._rule_pair: int | None = None
        self._rule_note = ""

    # -- decision provenance ----------------------------------------------------

    @contextmanager
    def _ruled(self, rule: str, pair_id: int | None = None, note: str = ""):
        """Label placements inside the block with a placement rule."""
        previous = (self._rule, self._rule_pair, self._rule_note)
        self._rule, self._rule_pair, self._rule_note = rule, pair_id, note
        try:
            yield
        finally:
            self._rule, self._rule_pair, self._rule_note = previous

    def _record(
        self,
        iid: int,
        cycle: int,
        *,
        ready: int,
        min_cycle: int = 1,
        rule: str | None = None,
        pair_id: int | None = None,
        note: str | None = None,
        critical_pred: int | None = None,
    ) -> None:
        if self._journal is None:
            return
        self._decisions[iid] = Decision(
            scheduler="sync-aware",
            iid=iid,
            cycle=cycle,
            phase=self._phase,
            rule=rule if rule is not None else self._rule,
            ready_cycle=ready,
            min_cycle=min_cycle,
            resource_delay=max(0, cycle - max(ready, min_cycle)),
            critical_pred=critical_pred,
            pair_id=pair_id if pair_id is not None else self._rule_pair,
            note=note if note is not None else self._rule_note,
        )

    def ready_cycle_reason(self, iid: int) -> tuple[int, int | None]:
        """:meth:`ready_cycle` plus the predecessor that set it."""
        cycle, pred = 1, None
        for edge in self.graph.pred[iid]:
            candidate = self.cycle_of[edge.src] + self.latency(edge.src)
            if candidate > cycle:
                cycle, pred = candidate, edge.src
        return cycle, pred

    # -- primitives -----------------------------------------------------------

    def latency(self, iid: int) -> int:
        return self.machine.latency(self.lowered.instruction(iid).fu)

    def ready_cycle(self, iid: int) -> int:
        """Earliest legal issue cycle given scheduled predecessors.

        All predecessors must already be scheduled (phases guarantee it).
        """
        cycle = 1
        for edge in self.graph.pred[iid]:
            pred_cycle = self.cycle_of[edge.src]
            cycle = max(cycle, pred_cycle + self.latency(edge.src))
        return cycle

    def place(self, iid: int, cycle: int) -> None:
        self.resources.place(self.lowered.instruction(iid).fu, cycle)
        self.cycle_of[iid] = cycle

    def unplace(self, iid: int) -> None:
        cycle = self.cycle_of.pop(iid)
        self.resources.remove(self.lowered.instruction(iid).fu, cycle)
        self._decisions.pop(iid, None)

    def place_asap(self, iid: int, min_cycle: int = 1) -> int:
        fu = self.lowered.instruction(iid).fu
        if self._journal is None:
            ready, pred = self.ready_cycle(iid), None
        else:
            ready, pred = self.ready_cycle_reason(iid)
        cycle = self.resources.earliest(fu, max(min_cycle, ready))
        self.place(iid, cycle)
        self._record(iid, cycle, ready=ready, min_cycle=min_cycle, critical_pred=pred)
        return cycle

    def unscheduled_ancestors(self, nodes: list[int]) -> list[int]:
        closure: set[int] = set()
        for node in nodes:
            closure |= self.graph.ancestors(node)
        closure -= set(nodes)
        closure -= self.cycle_of.keys()
        return sorted(closure, key=self.topo_pos.__getitem__)

    def place_with_ancestors(self, iid: int, min_cycle: int = 1) -> int:
        for anc in self.unscheduled_ancestors([iid]):
            self.place_asap(anc)
        return self.place_asap(iid, min_cycle)

    # -- node placement rules (sends and waits) --------------------------------

    def wait_min_cycle(self, iid: int) -> int:
        """A wait goes after its send when the send is already placed."""
        if not self.options.waits_after_sends:
            return 1
        instr = self.lowered.instruction(iid)
        assert instr.sync is not None
        min_cycle = 1
        for pair_id in instr.sync.pair_ids:
            send_iid = self.lowered.send_iids[pair_id]
            if send_iid in self.cycle_of:
                min_cycle = max(min_cycle, self.cycle_of[send_iid] + self.latency(send_iid))
        return min_cycle

    def send_deadline(self, iid: int) -> int | None:
        """A send should complete before its earliest scheduled wait."""
        if not self.options.sends_before_waits:
            return None
        instr = self.lowered.instruction(iid)
        assert instr.sync is not None
        deadline: int | None = None
        for pair_id in instr.sync.pair_ids:
            wait_iid = self.lowered.wait_iids[pair_id]
            if wait_iid in self.cycle_of:
                limit = self.cycle_of[wait_iid] - self.latency(iid)
                deadline = limit if deadline is None else min(deadline, limit)
        return deadline

    def place_node(self, iid: int) -> None:
        """Place one node (preds scheduled) honouring send/wait rules.

        Idempotent: recursive cone-pulling can reach a node through several
        routes; the first placement wins.
        """
        if iid in self.cycle_of:
            return
        instr = self.lowered.instruction(iid)
        if instr.opcode is Opcode.WAIT:
            if self.options.waits_after_sends:
                # Convertible-to-LFD: pull the paired send's cone in first
                # whenever the wait does not feed it (no synchronization
                # path), then sit down after the send.
                assert instr.sync is not None
                for pair_id in instr.sync.pair_ids:
                    send_iid = self.lowered.send_iids[pair_id]
                    if (
                        send_iid in self.cycle_of
                        or send_iid in self._inflight_sends
                        or iid in self.graph.ancestors(send_iid)
                    ):
                        continue
                    self._inflight_sends.add(send_iid)
                    try:
                        for anc in self.unscheduled_ancestors([send_iid]):
                            self.place_node(anc)
                        self.place_node(send_iid)
                    finally:
                        self._inflight_sends.discard(send_iid)
                if iid in self.cycle_of:
                    return  # the cone-pulling recursion placed this wait
            min_cycle = self.wait_min_cycle(iid)
            assert instr.sync is not None
            pair_id = instr.sync.pair_ids[0] if instr.sync.pair_ids else None
            rule = (
                "wait_after_send"
                if self.options.waits_after_sends and min_cycle > 1
                else self._rule
            )
            with self._ruled(rule, pair_id=pair_id):
                self.place_asap(iid, min_cycle)
            return
        if instr.opcode is Opcode.SEND:
            assert instr.sync is not None
            pair_id = instr.sync.pair_ids[0] if instr.sync.pair_ids else None
            deadline = self.send_deadline(iid)
            if self._journal is None:
                ready, pred = self.ready_cycle(iid), None
            else:
                ready, pred = self.ready_cycle_reason(iid)
            if deadline is not None and deadline >= ready:
                cycle = self.resources.latest_at_most(instr.fu, deadline, ready)
                if cycle is not None:
                    self.place(iid, cycle)
                    self._record(
                        iid,
                        cycle,
                        ready=ready,
                        rule="send_deadline",
                        pair_id=pair_id,
                        note=f"placed before its wait (deadline c{deadline})",
                        critical_pred=pred,
                    )
                    return
            with self._ruled(self._rule, pair_id=pair_id):
                self.place_asap(iid)
            return
        self.place_asap(iid)

    def schedule_set(self, nodes: set[int], sends_first: bool = False) -> None:
        """Schedule ``nodes`` (and any unscheduled ancestors) in topological
        order with the send/wait placement rules.

        ``sends_first`` implements the paper's convertible-to-LFD case for
        Sigwat graphs: a pair whose wait has *no* directed path to its send
        (no synchronization path — those were handled in phase 1) can be
        made run-time LFD by scheduling the send's dependence cone first
        and the wait after it.  A wait never sits in a send's ancestor cone
        here (that would be a synchronization path), so the two passes are
        well-defined.
        """
        pending = [n for n in self.topo if n in nodes and n not in self.cycle_of]
        if sends_first:
            for iid in pending:
                if iid in self.cycle_of:
                    continue
                if self.lowered.instruction(iid).opcode is Opcode.SEND:
                    for anc in self.unscheduled_ancestors([iid]):
                        self.place_node(anc)
                    self.place_node(iid)
        for iid in pending:
            if iid in self.cycle_of:
                continue
            for anc in self.unscheduled_ancestors([iid]):
                self.place_node(anc)
            self.place_node(iid)

    # -- synchronization-path placement ----------------------------------------

    def min_spacing(self, a: int, b: int) -> int:
        """Minimum cycles between path nodes ``a`` and ``b``: the longest
        latency-weighted dependence chain from ``a`` to ``b``.

        Usually that is just ``lat(a)`` (the direct path edge), but other
        mandatory chains may connect two consecutive SP nodes — e.g. the
        k19-style recurrence where the sink's loaded value feeds, through
        the whole statement, the very store the send follows.  Packing
        tighter than the chain is impossible for *any* start cycle.
        """
        between = (self.graph.descendants(a) & self.graph.ancestors(b)) | {a, b}
        dist = {a: 0}
        for node in self.topo:
            if node not in between or node not in dist:
                continue
            for edge in self.graph.succ[node]:
                if edge.dst in between:
                    candidate = dist[node] + self.latency(node)
                    if candidate > dist.get(edge.dst, -1):
                        dist[edge.dst] = candidate
        return dist.get(b, self.latency(a))

    def sp_targets(self, nodes: tuple[int, ...], start: int) -> list[int]:
        targets = []
        cycle = start
        for i, node in enumerate(nodes):
            targets.append(cycle)
            if i + 1 < len(nodes):
                cycle += self.min_spacing(node, nodes[i + 1])
        return targets

    def try_place_path(self, nodes: list[int], start: int, pair_id: int | None = None) -> bool:
        """Transactionally place ``nodes`` contiguously from ``start``, then
        their ancestors backward (ALAP before their consumers, the way the
        paper's Fig. 4(b) tucks ``t5 <- I + 1`` into cycle 1); roll back on
        any failure.

        ALAP rather than ASAP matters: an ancestor placed greedily early
        can occupy the slot a tighter-deadline ancestor chain needs (the
        address arithmetic feeding the path's first load must finish before
        the path starts, while the store-address arithmetic has the whole
        path's length of slack).
        """
        placed: list[int] = []

        def rollback() -> bool:
            for iid in reversed(placed):
                self.unplace(iid)
            return False

        targets = self.sp_targets(tuple(nodes), start)
        for iid, target in zip(nodes, targets):
            fu = self.lowered.instruction(iid).fu
            if not self.resources.can_place(fu, target):
                return rollback()
            self.place(iid, target)
            placed.append(iid)

        ancestors = self.unscheduled_ancestors(nodes)
        for anc in reversed(ancestors):  # reverse topological: consumers first
            instr = self.lowered.instruction(anc)
            latency = self.latency(anc)
            deadline: int | None = None
            for edge in self.graph.succ[anc]:
                if edge.dst in self.cycle_of:
                    limit = self.cycle_of[edge.dst] - latency
                    deadline = limit if deadline is None else min(deadline, limit)
            if deadline is None or deadline < 1:
                return rollback()
            # Predecessors scheduled in earlier phases bound us from below;
            # ancestor predecessors are placed after us (reverse topo) and
            # satisfy the ordering through their own deadlines.
            min_cycle = 1
            for edge in self.graph.pred[anc]:
                if edge.src in self.cycle_of:
                    min_cycle = max(min_cycle, self.cycle_of[edge.src] + self.latency(edge.src))
            if instr.opcode is Opcode.WAIT and not (
                instr.sync is not None
                and set(instr.sync.pair_ids) & self._sp_pair_ids
            ):
                # A *convertible* wait ancestor whose send is already placed
                # (Sig graphs go first) must land after it — retrying with a
                # later SP start makes room for the run-time LFD.  Waits on
                # synchronization paths are exempt: they can never follow
                # their own sends.
                min_cycle = max(min_cycle, self.wait_min_cycle(anc))
            cycle = self.resources.latest_at_most(instr.fu, deadline, min_cycle)
            if cycle is None:
                return rollback()
            self.place(anc, cycle)
            placed.append(anc)

        # Full latency re-check now that everything relevant is scheduled.
        for iid in placed:
            if self.ready_cycle(iid) > self.cycle_of[iid]:
                return rollback()
        if self._journal is not None:
            # Everything relevant is placed, so ready cycles are final.
            path_set = set(nodes)
            for iid in placed:
                ready, pred = self.ready_cycle_reason(iid)
                if iid in path_set:
                    self._record(
                        iid,
                        self.cycle_of[iid],
                        ready=ready,
                        rule="sp_contiguous",
                        pair_id=pair_id,
                        note=f"synchronization path packed from c{start}",
                        critical_pred=pred,
                    )
                else:
                    self._record(
                        iid,
                        self.cycle_of[iid],
                        ready=ready,
                        rule="sp_ancestor_alap",
                        pair_id=pair_id,
                        note="tucked before its consumer on the path",
                        critical_pred=pred,
                    )
        return True

    def schedule_path_contiguous(self, path: SyncPath) -> None:
        nodes = [n for n in path.nodes if n not in self.cycle_of]
        if len(nodes) != len(path.nodes):
            # Partially scheduled by an earlier group (shared ancestor):
            # fall back to tight ASAP packing of the remainder.
            for node in nodes:
                self.place_with_ancestors(node)
            return
        horizon = (
            max(self.cycle_of.values(), default=0)
            + (len(self.graph) + 2) * max(u.latency for u in self.machine.units)
            + 8
        )
        for start in range(1, horizon + 1):
            if self.try_place_path(nodes, start, pair_id=path.pair_id):
                metric_count("sched_pass.sync.sp_start_retries", start - 1)
                return
        # Dependence-minimal spacing can still be resource-infeasible (the
        # in-between work oversubscribes a unit inside the fixed window):
        # fall back to tight sequential ASAP placement, which always works.
        metric_count("sched_pass.sync.sp_fallback_asap")
        with self._ruled("sp_fallback_asap", pair_id=path.pair_id):
            for node in nodes:
                if node not in self.cycle_of:
                    self.place_with_ancestors(node)

    def schedule_sp_group(self, group: list[SyncPath]) -> None:
        primary, *rest = group
        if self.options.contiguous_sp:
            self.schedule_path_contiguous(primary)
        else:
            for node in primary.nodes:
                if node not in self.cycle_of:
                    self.place_with_ancestors(node)
        for path in rest:
            for node in path.nodes:
                if node not in self.cycle_of:
                    self.place_with_ancestors(node)

    # -- driver -----------------------------------------------------------------

    def run(self) -> Schedule:
        components = partition(self.graph, self.lowered)
        trip = self.options.trip_count
        if trip is None:
            loop = self.lowered.synced.loop
            if isinstance(loop.lower, Const) and isinstance(loop.upper, Const):
                trip = int(loop.upper.value) - int(loop.lower.value) + 1
            else:
                trip = 100
        paths = find_sync_paths(self.graph, self.lowered, components)
        self._sp_pair_ids = {p.pair_id for p in paths}
        metric_count("sched_pass.sync.sync_paths", len(paths))
        if self.options.sp_order == "desc":
            paths = order_paths(paths, trip)
        elif self.options.sp_order == "asc":
            paths = list(reversed(order_paths(paths, trip)))
        else:
            paths = sorted(paths, key=lambda p: p.pair_id)

        # Phase 0: a pair with no synchronization path is convertible to
        # run-time LFD, but only if its send precedes its wait.  When such a
        # pair's wait is an *ancestor of an SP node* (its sink's load feeds
        # an SP chain), phase 1 would drag the wait early while the send's
        # statement is still unscheduled — an avoidable LBD costing
        # ``(n/d)·span``.  Scheduling those sends' cones first costs a few
        # cycles of iteration length and removes the whole stall chain.
        sp_nodes = {node for path in paths for node in path.nodes}
        sp_ancestors: set[int] = set()
        for node in sp_nodes:
            sp_ancestors |= self.graph.ancestors(node)
        sp_pair_ids = {path.pair_id for path in paths}
        if self.options.waits_after_sends:
            self._phase = "lfd_conversion"
            for pair in self.lowered.synced.pairs:
                if pair.pair_id in sp_pair_ids:
                    continue
                wait_iid = self.lowered.wait_iids[pair.pair_id]
                send_iid = self.lowered.send_iids[pair.pair_id]
                if wait_iid in sp_ancestors and send_iid not in sp_nodes:
                    cone = set(self.unscheduled_ancestors([send_iid]))
                    if cone & sp_nodes:
                        continue  # cannot hoist the send without the SP
                    with self._ruled("lfd_send_hoist", pair_id=pair.pair_id):
                        for anc in self.unscheduled_ancestors([send_iid]):
                            self.place_node(anc)
                        self.place_node(send_iid)

        # Sig graphs first (the paper's rule: "scheduling Sig graphs before
        # all Sigwat graphs" converts their pairs to LFD — the waits, placed
        # later, land after these sends).
        if self.options.sends_before_waits:
            self._phase = "sig_first"
            with span("schedule.sync.sig_first"):
                for component in components:
                    if component.kind is ComponentKind.SIG:
                        self.schedule_set(set(component.nodes))

        # Phase 1: synchronization paths.
        self._phase = "sync_paths"
        with span("schedule.sync.sp"):
            groups = group_overlapping(paths)
            metric_count("sched_pass.sync.sp_groups", len(groups))
            for group in groups:
                self.schedule_sp_group(group)

        # Phases 2-5: Sigwat remainders, Sig graphs, Wat graphs, plain nodes.
        with span("schedule.sync.components"):
            for kind in (
                ComponentKind.SIGWAT,
                ComponentKind.SIG,
                ComponentKind.WAT,
                ComponentKind.PLAIN,
            ):
                self._phase = f"components.{kind.name.lower()}"
                for component in components:
                    if component.kind is kind:
                        self.schedule_set(
                            set(component.nodes),
                            sends_first=(kind is ComponentKind.SIGWAT),
                        )

        if self._journal is not None:
            for iid in sorted(
                self._decisions, key=lambda i: (self.cycle_of.get(i, 0), i)
            ):
                self._journal.record_decision(self._decisions[iid])

        return Schedule(
            machine=self.machine,
            lowered=self.lowered,
            cycle_of=self.cycle_of,
            scheduler_name="sync-aware",
        )


def sync_schedule(
    lowered: LoweredLoop,
    graph: DataFlowGraph,
    machine: MachineConfig,
    options: SyncSchedulerOptions | None = None,
) -> Schedule:
    """Schedule with the paper's synchronization-aware algorithm."""
    options = options or SyncSchedulerOptions()
    with span("schedule.sync"):
        schedule = _SyncScheduler(lowered, graph, machine, options).run()
    if options.guard_never_degrade:
        # Deferred imports: repro.sim imports repro.sched at module load.
        from repro.ir.ast_nodes import Const
        from repro.sched.list_scheduler import list_schedule
        from repro.sim.multiproc import simulate_doacross

        n = options.trip_count
        if n is None:
            loop = lowered.synced.loop
            if isinstance(loop.lower, Const) and isinstance(loop.upper, Const):
                n = int(loop.upper.value) - int(loop.lower.value) + 1
            else:
                n = 100
        listed = list_schedule(lowered, graph, machine)
        if (
            simulate_doacross(listed, n).parallel_time
            < simulate_doacross(schedule, n).parallel_time
        ):
            listed.scheduler_name = "sync-aware/guarded->list"
            return listed
    return schedule
