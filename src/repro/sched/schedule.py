"""The schedule result type: cycle assignments and derived quantities."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codegen.lower import LoweredLoop
from repro.sched.machine import MachineConfig


@dataclass
class Schedule:
    """A cycle assignment for every instruction of a lowered loop.

    ``cycle_of`` maps instruction id → issue cycle (1-based).  ``length``
    is the iteration time ``l`` in cycles: the last *completion* cycle
    (issue cycle + unit latency - 1), which equals the bundle count when
    all latencies are one, as in the paper's Fig. 4 (13 cycles).
    """

    machine: MachineConfig
    lowered: LoweredLoop
    cycle_of: dict[int, int] = field(default_factory=dict)
    scheduler_name: str = ""

    @property
    def length(self) -> int:
        return max(
            (
                cycle + self.machine.latency(self.lowered.instruction(iid).fu) - 1
                for iid, cycle in self.cycle_of.items()
            ),
            default=0,
        )

    @property
    def issue_cycles(self) -> int:
        """Number of the last issue cycle (bundle count upper bound)."""
        return max(self.cycle_of.values(), default=0)

    def bundles(self) -> list[list[int]]:
        """Instruction ids per cycle, 1..issue_cycles, ids ascending."""
        table: list[list[int]] = [[] for _ in range(self.issue_cycles)]
        for iid, cycle in sorted(self.cycle_of.items()):
            table[cycle - 1].append(iid)
        return table

    # -- synchronization geometry --------------------------------------------

    def wait_cycle(self, pair_id: int) -> int:
        return self.cycle_of[self.lowered.wait_iids[pair_id]]

    def send_cycle(self, pair_id: int) -> int:
        return self.cycle_of[self.lowered.send_iids[pair_id]]

    def span(self, pair_id: int) -> int:
        """The paper's ``i - j`` instruction span, inclusive: the number of
        cycles from the wait to its send.  Positive spans are the LBD
        penalty multiplier; a non-positive span means the send is issued
        before the wait — the LFD (no-stall) situation."""
        return self.send_cycle(pair_id) - self.wait_cycle(pair_id) + 1

    def runtime_lbd_pairs(self) -> list[int]:
        """Pairs whose *scheduled* send does not precede their wait — these
        stall at runtime regardless of the textual LFD/LBD classification."""
        return [p.pair_id for p in self.lowered.synced.pairs if self.span(p.pair_id) > 0]

    def format(self) -> str:
        """Fig. 4-style bundle table, e.g. ``(1, 2, 3, -)`` per cycle."""
        width = self.machine.issue_width
        lines = []
        for cycle, bundle in enumerate(self.bundles(), start=1):
            slots = [str(i) for i in bundle] + ["-"] * (width - len(bundle))
            lines.append(f"c{cycle:<3} ({', '.join(slots)})")
        return "\n".join(lines)
