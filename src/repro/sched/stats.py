"""Schedule statistics: issue-slot and function-unit utilization.

The paper's discussion leans on resource pressure (the adder conflicts in
the Fig. 4 walkthrough, the 2-vs-4-issue behaviour); these helpers make
that pressure measurable for any schedule.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.sched.schedule import Schedule


@dataclass(frozen=True)
class UnitUtilization:
    name: str
    busy_cycles: int  # instance-cycles occupied
    capacity_cycles: int  # instances * schedule length

    @property
    def utilization(self) -> float:
        return self.busy_cycles / self.capacity_cycles if self.capacity_cycles else 0.0


@dataclass(frozen=True)
class ScheduleStats:
    length: int
    instructions: int
    issue_slots_used: int
    issue_slots_total: int
    units: tuple[UnitUtilization, ...]

    @property
    def issue_utilization(self) -> float:
        return self.issue_slots_used / self.issue_slots_total if self.issue_slots_total else 0.0

    @property
    def ipc(self) -> float:
        """Instructions per cycle actually achieved."""
        return self.instructions / self.length if self.length else 0.0

    def format(self) -> str:
        lines = [
            f"length {self.length} cycles, {self.instructions} instructions, "
            f"IPC {self.ipc:.2f}, issue slots {self.issue_utilization:.0%} used"
        ]
        for unit in self.units:
            lines.append(
                f"  {unit.name:12s} {unit.busy_cycles:4d}/{unit.capacity_cycles:<4d}"
                f" ({unit.utilization:.0%})"
            )
        return "\n".join(lines)


def schedule_stats(schedule: Schedule) -> ScheduleStats:
    """Compute utilization figures for ``schedule``."""
    machine = schedule.machine
    length = schedule.length
    busy: dict[str, int] = defaultdict(int)
    for iid, cycle in schedule.cycle_of.items():
        unit = machine.unit_for(schedule.lowered.instruction(iid).fu)
        busy[unit.name] += 1 if unit.pipelined else unit.latency
        del cycle
    units = tuple(
        UnitUtilization(
            name=unit.name,
            busy_cycles=busy.get(unit.name, 0),
            capacity_cycles=unit.count * length,
        )
        for unit in machine.units
    )
    n_instr = len(schedule.cycle_of)
    return ScheduleStats(
        length=length,
        instructions=n_instr,
        issue_slots_used=n_instr,
        issue_slots_total=machine.issue_width * length,
        units=units,
    )
