"""Machine model and instruction schedulers.

* :mod:`repro.sched.machine` — superscalar machine configurations (issue
  width, function units, latencies), including the paper's Fig. 4
  walkthrough machine and the four Section 4 experiment configurations.
* :mod:`repro.sched.resources` — per-cycle issue-slot and function-unit
  reservation tables.
* :mod:`repro.sched.schedule` — the :class:`Schedule` result type (cycle
  assignment, bundles, synchronization spans).
* :mod:`repro.sched.list_scheduler` — the baseline list scheduler (the
  paper's comparison point), with pluggable priority.
* :mod:`repro.sched.sync_scheduler` — the paper's synchronization-aware
  scheduler (Section 3.2).
* :mod:`repro.sched.verify` — legality checking of any schedule against
  the DFG, the machine, and the synchronization conditions.
"""

from repro.sched.gantt import (
    execution_timeline,
    gantt,
    sync_timeline,
    timeline_html,
    timeline_svg,
)
from repro.sched.list_scheduler import Priority, list_schedule
from repro.sched.machine import MachineConfig, UnitSpec, figure4_machine, paper_machine
from repro.sched.marker_scheduler import marker_schedule
from repro.sched.modulo import ModuloSchedule, modulo_schedule, verify_modulo
from repro.sched.pressure import PressureProfile, minimum_registers, register_pressure
from repro.sched.resources import ResourceTable
from repro.sched.schedule import Schedule
from repro.sched.stats import ScheduleStats, schedule_stats
from repro.sched.sync_scheduler import SyncSchedulerOptions, sync_schedule
from repro.sched.verify import (
    Violation,
    assert_valid,
    verify_schedule,
    verify_schedule_structured,
)

__all__ = [
    "MachineConfig",
    "ModuloSchedule",
    "PressureProfile",
    "Priority",
    "ResourceTable",
    "Schedule",
    "ScheduleStats",
    "SyncSchedulerOptions",
    "UnitSpec",
    "Violation",
    "assert_valid",
    "execution_timeline",
    "figure4_machine",
    "gantt",
    "list_schedule",
    "marker_schedule",
    "minimum_registers",
    "modulo_schedule",
    "paper_machine",
    "register_pressure",
    "verify_modulo",
    "schedule_stats",
    "sync_schedule",
    "sync_timeline",
    "timeline_html",
    "timeline_svg",
    "verify_schedule",
    "verify_schedule_structured",
]
