"""Synchronization-marker list scheduling (the paper's predecessor, its
reference [18]).

The marker method keeps synchronization operations *glued to their
dependence events* instead of letting list scheduling treat them as
always-ready nodes: a ``Wait_Signal`` is held back until its sink could
issue the very next cycle (so the wait sits immediately before the sink,
as the textual insertion intended), and a ``Send_Signal`` issues as soon
as its source completes.

This removes the classic pathology — waits hoisted to cycle 1 stretch the
wait→send span to the whole iteration — without any of the paper's
structural ideas (no Sigwat analysis, no LBD→LFD conversion, no
synchronization-path packing).  It therefore makes the natural middle
baseline between plain list scheduling and the Section 3 technique; the
three-way comparison is `benchmarks/test_bench_scheduler_comparison.py`.
"""

from __future__ import annotations

from repro.codegen.isa import Opcode
from repro.codegen.lower import LoweredLoop
from repro.dfg.graph import DataFlowGraph
from repro.sched.machine import MachineConfig
from repro.sched.resources import ResourceTable
from repro.sched.schedule import Schedule


def marker_schedule(
    lowered: LoweredLoop,
    graph: DataFlowGraph,
    machine: MachineConfig,
) -> Schedule:
    """Greedy cycle-by-cycle scheduling with marker-pinned sync operations.

    Identical to :func:`repro.sched.list_scheduler.list_schedule` with
    program-order priority, except for the readiness rule of waits: a wait
    becomes a candidate only once every *other* predecessor of each of its
    sinks is scheduled and their latencies allow the sink to issue next
    cycle.  Sends have no special rule — their sync arc (source → send)
    already delays them until the source completes, and program order picks
    them up immediately after.
    """
    # For each wait: its sinks, and each sink's other predecessors.
    wait_sinks: dict[int, list[int]] = {}
    for pair in lowered.synced.pairs:
        wait_iid = lowered.wait_iids[pair.pair_id]
        wait_sinks.setdefault(wait_iid, []).extend(lowered.sink_iids(pair.pair_id))

    schedule = Schedule(machine=machine, lowered=lowered, scheduler_name="marker")
    resources = ResourceTable(machine)
    unscheduled = set(graph.nodes)
    ready_cycle = {n: 1 for n in graph.nodes}
    pending_preds = {n: graph.in_degree(n) for n in graph.nodes}
    cycle_of = schedule.cycle_of

    wait_descendants: dict[int, set[int]] = {
        iid: graph.descendants(iid) for iid in wait_sinks
    }

    def wait_ready(iid: int, cycle: int) -> bool:
        """May the wait issue at ``cycle`` under the marker rule?"""
        for snk in wait_sinks.get(iid, ()):
            for edge in graph.pred[snk]:
                if edge.src == iid:
                    continue
                if lowered.instruction(edge.src).opcode is Opcode.WAIT:
                    # sibling waits on the same sink must not deadlock each
                    # other; the single sync port serializes them anyway
                    continue
                if edge.src in wait_descendants[iid]:
                    # the predecessor itself needs this wait first (a sink
                    # store whose value chain starts at the wait) — holding
                    # the wait for it would deadlock
                    continue
                if edge.src not in cycle_of:
                    return False
                latency = machine.latency(lowered.instruction(edge.src).fu)
                if cycle_of[edge.src] + latency > cycle + 1:
                    # the sink could not issue right after the wait yet
                    return False
        return True

    cycle = 1
    guard = 0
    while unscheduled:
        candidates = sorted(
            n
            for n in unscheduled
            if pending_preds[n] == 0 and ready_cycle[n] <= cycle
        )
        for iid in candidates:
            instr = lowered.instruction(iid)
            if instr.opcode is Opcode.WAIT and not wait_ready(iid, cycle):
                continue
            if resources.can_place(instr.fu, cycle):
                resources.place(instr.fu, cycle)
                cycle_of[iid] = cycle
                unscheduled.discard(iid)
                latency = machine.latency(instr.fu)
                for edge in graph.succ[iid]:
                    pending_preds[edge.dst] -= 1
                    ready_cycle[edge.dst] = max(ready_cycle[edge.dst], cycle + latency)
        cycle += 1
        guard += 1
        if guard > len(graph.nodes) * 64 + 1024:  # pragma: no cover
            raise RuntimeError("marker scheduler failed to make progress")
    return schedule
