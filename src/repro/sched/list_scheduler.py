"""Baseline list scheduler (the paper's comparison point).

Greedy cycle-by-cycle scheduling: at each cycle, the ready instructions
(all predecessors scheduled and their latencies elapsed) are considered in
priority order and issued while slots and function units allow.
Synchronization operations are ordinary nodes — a wait has no predecessors
beyond its own arcs, so list scheduling happily hoists it to the first
cycles, which is precisely the behaviour the paper criticizes (it
stretches the wait→send span and multiplies the LBD penalty).

Two priorities are provided:

* ``PROGRAM_ORDER`` — lowest instruction id first.  This reproduces the
  paper's Fig. 4(a) schedule bundle-for-bundle and is the experiments'
  baseline.
* ``CRITICAL_PATH`` — classic latency-weighted height, ties by id; used by
  the ablation benches.
"""

from __future__ import annotations

import enum

from repro.codegen.lower import LoweredLoop
from repro.dfg.graph import DataFlowGraph
from repro.obs.explain import Decision, active_journal
from repro.obs.metrics import observe as metric_observe
from repro.obs.trace import span
from repro.sched.machine import MachineConfig
from repro.sched.resources import ResourceTable
from repro.sched.schedule import Schedule


class Priority(enum.Enum):
    """Candidate ordering for the list scheduler (see module docs)."""

    PROGRAM_ORDER = "program_order"
    CRITICAL_PATH = "critical_path"


def critical_path_heights(
    graph: DataFlowGraph, lowered: LoweredLoop, machine: MachineConfig
) -> dict[int, int]:
    """Latency-weighted height of each node (its own latency included)."""
    heights: dict[int, int] = {}
    for node in reversed(graph.topological_order()):
        latency = machine.latency(lowered.instruction(node).fu)
        below = max((heights[e.dst] for e in graph.succ[node]), default=0)
        heights[node] = latency + below
    return heights


def list_schedule(
    lowered: LoweredLoop,
    graph: DataFlowGraph,
    machine: MachineConfig,
    priority: Priority = Priority.PROGRAM_ORDER,
) -> Schedule:
    """Schedule every instruction with greedy list scheduling."""
    if priority is Priority.CRITICAL_PATH:
        heights = critical_path_heights(graph, lowered, machine)

        def sort_key(iid: int) -> tuple:
            return (-heights[iid], iid)

    else:

        def sort_key(iid: int) -> tuple:
            return (iid,)

    schedule = Schedule(machine=machine, lowered=lowered, scheduler_name=f"list/{priority.value}")
    resources = ResourceTable(machine)
    unscheduled = set(graph.nodes)
    # earliest cycle each node may issue, updated as predecessors schedule
    ready_cycle = {n: 1 for n in graph.nodes}
    pending_preds = {n: graph.in_degree(n) for n in graph.nodes}
    journal = active_journal()
    # predecessor that last raised a node's ready cycle (provenance)
    critical_pred: dict[int, int] = {}

    with span("schedule.list"):
        cycle = 1
        while unscheduled:
            candidates = sorted(
                (
                    n
                    for n in unscheduled
                    if pending_preds[n] == 0 and ready_cycle[n] <= cycle
                ),
                key=sort_key,
            )
            metric_observe("sched_pass.list.ready_len", len(candidates))
            placed_any = False
            for iid in candidates:
                fu = lowered.instruction(iid).fu
                if resources.can_place(fu, cycle):
                    resources.place(fu, cycle)
                    schedule.cycle_of[iid] = cycle
                    unscheduled.discard(iid)
                    placed_any = True
                    if journal is not None:
                        instr = lowered.instruction(iid)
                        journal.record_decision(
                            Decision(
                                scheduler=schedule.scheduler_name,
                                iid=iid,
                                cycle=cycle,
                                phase="list",
                                rule="greedy",
                                ready_cycle=ready_cycle[iid],
                                min_cycle=ready_cycle[iid],
                                resource_delay=cycle - ready_cycle[iid],
                                critical_pred=critical_pred.get(iid),
                                pair_id=(
                                    instr.sync.pair_ids[0]
                                    if instr.sync is not None and instr.sync.pair_ids
                                    else None
                                ),
                                competing=tuple(c for c in candidates if c != iid),
                            )
                        )
                    latency = machine.latency(fu)
                    for edge in graph.succ[iid]:
                        pending_preds[edge.dst] -= 1
                        if cycle + latency > ready_cycle[edge.dst]:
                            ready_cycle[edge.dst] = cycle + latency
                            critical_pred[edge.dst] = iid
            cycle += 1
            if not placed_any and not candidates and cycle > 2 * len(graph.nodes) * 8 + 64:
                raise RuntimeError("list scheduler failed to make progress")  # pragma: no cover
    return schedule
