"""Schedule legality verification.

Checks, independently of how a schedule was produced:

1. every instruction scheduled exactly once, at a cycle >= 1;
2. every DFG edge's latency respected (``cycle(dst) >= cycle(src) +
   latency(src)``) — this covers register, memory *and* the
   synchronization-condition arcs;
3. per-cycle issue width and function-unit occupancy (multi-cycle units
   non-pipelined);
4. the paper's two synchronization invariants restated directly from the
   pair map (belt and braces: a builder bug dropping a sync arc would
   otherwise go unnoticed): no ``Send_Signal`` before its dependence
   source completes (kind ``send_before_source``), and no sink before its
   ``Wait_Signal`` (kind ``sink_before_wait``).

:func:`verify_schedule_structured` returns typed :class:`Violation`
records (kind + the instructions/cycles/pair involved), so callers can
dispatch on *what* is broken; :func:`verify_schedule` keeps the original
list-of-strings surface, and :func:`assert_valid` raises on any.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.dfg.graph import DataFlowGraph
from repro.sched.schedule import Schedule

__all__ = ["Violation", "assert_valid", "verify_schedule", "verify_schedule_structured"]


@dataclass(frozen=True)
class Violation:
    """One schedule-legality violation, typed for dispatch.

    ``kind`` is one of ``unscheduled``, ``unknown_instruction``,
    ``bad_cycle``, ``latency``, ``issue_width``, ``unit_overuse``,
    ``send_before_source``, ``sink_before_wait``.  ``iid``/``cycle``/
    ``pair_id`` locate the offender where the kind has one (``None``
    otherwise); ``message`` is the human-readable rendering.
    """

    kind: str
    message: str
    iid: int | None = None
    cycle: int | None = None
    pair_id: int | None = None

    def __str__(self) -> str:
        return self.message


def verify_schedule_structured(
    schedule: Schedule, graph: DataFlowGraph
) -> list[Violation]:
    """Check ``schedule`` against the module-level rules; returns typed
    violations (empty = legal)."""
    lowered = schedule.lowered
    machine = schedule.machine
    cycle_of = schedule.cycle_of
    violations: list[Violation] = []

    # 1. completeness
    expected = {i.iid for i in lowered.instructions}
    scheduled = set(cycle_of)
    for missing in sorted(expected - scheduled):
        violations.append(
            Violation("unscheduled", f"instruction {missing} not scheduled", iid=missing)
        )
    for extra in sorted(scheduled - expected):
        violations.append(
            Violation(
                "unknown_instruction", f"unknown instruction {extra} scheduled", iid=extra
            )
        )
    for iid, cycle in cycle_of.items():
        if cycle < 1:
            violations.append(
                Violation(
                    "bad_cycle",
                    f"instruction {iid} scheduled at cycle {cycle} < 1",
                    iid=iid,
                    cycle=cycle,
                )
            )
    if violations:
        return violations

    # 2. dependence latencies
    for edge in graph.edges:
        src_cycle = cycle_of[edge.src]
        dst_cycle = cycle_of[edge.dst]
        latency = machine.latency(lowered.instruction(edge.src).fu)
        if dst_cycle < src_cycle + latency:
            violations.append(
                Violation(
                    "latency",
                    f"edge {edge} violated: {edge.src}@{src_cycle} (lat {latency}) "
                    f"-> {edge.dst}@{dst_cycle}",
                    iid=edge.dst,
                    cycle=dst_cycle,
                )
            )

    # 3. resources
    issue_count: dict[int, int] = defaultdict(int)
    unit_count: dict[tuple[str, int], int] = defaultdict(int)
    for iid, cycle in cycle_of.items():
        issue_count[cycle] += 1
        unit = machine.unit_for(lowered.instruction(iid).fu)
        busy = 1 if unit.pipelined else unit.latency
        for c in range(cycle, cycle + busy):
            unit_count[(unit.name, c)] += 1
    for cycle, used in sorted(issue_count.items()):
        if used > machine.issue_width:
            violations.append(
                Violation(
                    "issue_width",
                    f"cycle {cycle}: {used} issued > width {machine.issue_width}",
                    cycle=cycle,
                )
            )
    for (unit_name, cycle), used in sorted(unit_count.items()):
        unit = next(u for u in machine.units if u.name == unit_name)
        if used > unit.count:
            violations.append(
                Violation(
                    "unit_overuse",
                    f"cycle {cycle}: unit {unit_name!r} used {used} > count {unit.count}",
                    cycle=cycle,
                )
            )

    # 4. the paper's synchronization invariants from the pair map
    for pair in lowered.synced.pairs:
        sig = lowered.send_iids[pair.pair_id]
        wat = lowered.wait_iids[pair.pair_id]
        for src in lowered.source_iids(pair.pair_id):
            src_done = cycle_of[src] + machine.latency(lowered.instruction(src).fu) - 1
            if cycle_of[sig] <= src_done:
                violations.append(
                    Violation(
                        "send_before_source",
                        f"pair {pair.pair_id}: send {sig}@{cycle_of[sig]} not after "
                        f"source {src} completing at {src_done}",
                        iid=sig,
                        cycle=cycle_of[sig],
                        pair_id=pair.pair_id,
                    )
                )
        for snk in lowered.sink_iids(pair.pair_id):
            if cycle_of[wat] >= cycle_of[snk]:
                violations.append(
                    Violation(
                        "sink_before_wait",
                        f"pair {pair.pair_id}: wait {wat}@{cycle_of[wat]} not before "
                        f"sink {snk}@{cycle_of[snk]}",
                        iid=wat,
                        cycle=cycle_of[wat],
                        pair_id=pair.pair_id,
                    )
                )
    return violations


def verify_schedule(schedule: Schedule, graph: DataFlowGraph) -> list[str]:
    """Check ``schedule``; returns human-readable violations (the original
    string surface of :func:`verify_schedule_structured`)."""
    return [v.message for v in verify_schedule_structured(schedule, graph)]


def assert_valid(schedule: Schedule, graph: DataFlowGraph) -> None:
    """Raise ``AssertionError`` with details if the schedule is illegal."""
    violations = verify_schedule(schedule, graph)
    if violations:
        details = "\n  ".join(violations)
        raise AssertionError(f"invalid schedule ({schedule.scheduler_name}):\n  {details}")
