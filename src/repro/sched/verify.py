"""Schedule legality verification.

Checks, independently of how a schedule was produced:

1. every instruction scheduled exactly once, at a cycle >= 1;
2. every DFG edge's latency respected (``cycle(dst) >= cycle(src) +
   latency(src)``) — this covers register, memory *and* the
   synchronization-condition arcs;
3. per-cycle issue width and function-unit occupancy (multi-cycle units
   non-pipelined);
4. the paper's synchronization conditions restated directly from the pair
   map (belt and braces: a builder bug dropping a sync arc would otherwise
   go unnoticed): no send before its dependence source completes, no wait
   after its dependence sink issues.

Returns a list of human-readable violations; :func:`assert_valid` raises on
any.
"""

from __future__ import annotations

from collections import defaultdict

from repro.dfg.graph import DataFlowGraph
from repro.sched.schedule import Schedule


def verify_schedule(schedule: Schedule, graph: DataFlowGraph) -> list[str]:
    """Check ``schedule`` against the module-level rules; returns violations."""
    lowered = schedule.lowered
    machine = schedule.machine
    cycle_of = schedule.cycle_of
    violations: list[str] = []

    # 1. completeness
    expected = {i.iid for i in lowered.instructions}
    scheduled = set(cycle_of)
    for missing in sorted(expected - scheduled):
        violations.append(f"instruction {missing} not scheduled")
    for extra in sorted(scheduled - expected):
        violations.append(f"unknown instruction {extra} scheduled")
    for iid, cycle in cycle_of.items():
        if cycle < 1:
            violations.append(f"instruction {iid} scheduled at cycle {cycle} < 1")
    if violations:
        return violations

    # 2. dependence latencies
    for edge in graph.edges:
        src_cycle = cycle_of[edge.src]
        dst_cycle = cycle_of[edge.dst]
        latency = machine.latency(lowered.instruction(edge.src).fu)
        if dst_cycle < src_cycle + latency:
            violations.append(
                f"edge {edge} violated: {edge.src}@{src_cycle} (lat {latency}) "
                f"-> {edge.dst}@{dst_cycle}"
            )

    # 3. resources
    issue_count: dict[int, int] = defaultdict(int)
    unit_count: dict[tuple[str, int], int] = defaultdict(int)
    for iid, cycle in cycle_of.items():
        issue_count[cycle] += 1
        unit = machine.unit_for(lowered.instruction(iid).fu)
        busy = 1 if unit.pipelined else unit.latency
        for c in range(cycle, cycle + busy):
            unit_count[(unit.name, c)] += 1
    for cycle, used in sorted(issue_count.items()):
        if used > machine.issue_width:
            violations.append(f"cycle {cycle}: {used} issued > width {machine.issue_width}")
    for (unit_name, cycle), used in sorted(unit_count.items()):
        unit = next(u for u in machine.units if u.name == unit_name)
        if used > unit.count:
            violations.append(
                f"cycle {cycle}: unit {unit_name!r} used {used} > count {unit.count}"
            )

    # 4. synchronization conditions from the pair map
    for pair in lowered.synced.pairs:
        sig = lowered.send_iids[pair.pair_id]
        wat = lowered.wait_iids[pair.pair_id]
        for src in lowered.source_iids(pair.pair_id):
            src_done = cycle_of[src] + machine.latency(lowered.instruction(src).fu) - 1
            if cycle_of[sig] <= src_done:
                violations.append(
                    f"pair {pair.pair_id}: send {sig}@{cycle_of[sig]} not after "
                    f"source {src} completing at {src_done}"
                )
        for snk in lowered.sink_iids(pair.pair_id):
            if cycle_of[wat] >= cycle_of[snk]:
                violations.append(
                    f"pair {pair.pair_id}: wait {wat}@{cycle_of[wat]} not before "
                    f"sink {snk}@{cycle_of[snk]}"
                )
    return violations


def assert_valid(schedule: Schedule, graph: DataFlowGraph) -> None:
    """Raise ``AssertionError`` with details if the schedule is illegal."""
    violations = verify_schedule(schedule, graph)
    if violations:
        details = "\n  ".join(violations)
        raise AssertionError(f"invalid schedule ({schedule.scheduler_name}):\n  {details}")
