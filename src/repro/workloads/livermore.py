"""Livermore-loop-style kernels (extension workload, beyond the paper).

The Livermore Fortran Kernels are the classic loop-parallelism stress
suite of the paper's era.  The subset below is every kernel expressible in
our single-index straight-line loop language, transcribed to the paper's
100-iteration form.  They are *not* part of the paper's evaluation — they
exist to exercise the pipeline on famous, independently-defined loop
shapes: DOALL kernels, reductions, first-order recurrences (the
DOACROSS cases), and genuinely serial ones the classifier must reject.

Each entry records the expected :class:`~repro.deps.LoopClass` so tests
can pin the classifier's behaviour kernel by kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deps import LoopClass
from repro.ir.ast_nodes import Loop
from repro.ir.parser import parse_loop


@dataclass(frozen=True)
class Kernel:
    """One kernel: source, provenance note, expected classification."""

    name: str
    source: str
    expected_class: LoopClass
    note: str

    def loop(self) -> Loop:
        loop = parse_loop(self.source)
        loop.name = self.name
        return loop


KERNELS: tuple[Kernel, ...] = (
    Kernel(
        name="k1-hydro",
        source="""
        DO I = 1, 100
          X(I) = Q + Y(I) * (R * Z(I+10) + T * Z(I+11))
        ENDDO
        """,
        expected_class=LoopClass.DOALL,
        note="LFK 1, hydro fragment: pure DOALL",
    ),
    Kernel(
        name="k3-inner-product",
        source="""
        DO I = 1, 100
          Q = Q + Z(I) * X(I)
        ENDDO
        """,
        expected_class=LoopClass.DOALL,  # after reduction replacement
        note="LFK 3, inner product: reduction",
    ),
    Kernel(
        name="k5-tridiag",
        source="""
        DO I = 2, 100
          X(I) = Z(I) * (Y(I) - X(I-1))
        ENDDO
        """,
        expected_class=LoopClass.DOACROSS,
        note="LFK 5, tri-diagonal elimination: first-order linear recurrence",
    ),
    Kernel(
        name="k7-state",
        source="""
        DO I = 1, 100
          X(I) = U(I) + R * (Z(I) + R * Y(I)) + T * (U(I+3) + R * (U(I+2) + R * U(I+1)))
        ENDDO
        """,
        expected_class=LoopClass.DOALL,
        note="LFK 7, equation-of-state fragment: wide DOALL expression",
    ),
    Kernel(
        name="k11-first-sum",
        source="""
        DO I = 2, 100
          X(I) = X(I-1) + Y(I)
        ENDDO
        """,
        expected_class=LoopClass.DOACROSS,
        note="LFK 11, first sum: prefix-sum recurrence, distance 1",
    ),
    Kernel(
        name="k12-first-diff",
        source="""
        DO I = 1, 100
          X(I) = Y(I+1) - Y(I)
        ENDDO
        """,
        expected_class=LoopClass.DOALL,
        note="LFK 12, first difference: DOALL",
    ),
    Kernel(
        name="k19-general-recurrence",
        source="""
        DO I = 1, 100
          B5(I) = SA(I) + STB5 * SB(I)
          STB5 = B5(I) - STB5
        ENDDO
        """,
        expected_class=LoopClass.DOACROSS,
        note="LFK 19, general linear recurrence through scalar STB5",
    ),
    Kernel(
        name="k21-matmul-row",
        source="""
        DO I = 1, 100
          PX(I) = PX(I) + VY(I) * CX(I+25)
        ENDDO
        """,
        expected_class=LoopClass.DOALL,
        note="LFK 21, one matrix-product row: element-wise accumulate, no carry",
    ),
    Kernel(
        name="k24-min-location-ish",
        source="""
        DO I = 2, 100
          M(I) = M(I-1) + X(I) * X(I)
        ENDDO
        """,
        expected_class=LoopClass.DOACROSS,
        note="LFK 24 reshaped as a running aggregate (min needs control flow)",
    ),
    Kernel(
        name="k24-min-location",
        source="""
        DO I = 1, 100
          S1: IF (X(I) < M) M = X(I)
        ENDDO
        """,
        expected_class=LoopClass.DOACROSS,
        note="LFK 24 proper: conditional running minimum — a control-"
        "dependent (type 1) recurrence through the guarded scalar M",
    ),
    Kernel(
        name="k2-iccg-slice",
        source="""
        DO I = 1, 100
          X(I) = X(I+1) - V(I) * X(I+32)
        ENDDO
        """,
        expected_class=LoopClass.DOACROSS,
        note="LFK 2 inner slice: anti dependences (X read ahead of the write)",
    ),
)


def livermore_kernels() -> list[Kernel]:
    """All kernels (fresh copy of the tuple as a list)."""
    return list(KERNELS)


def livermore_loops() -> list[Loop]:
    """Fresh loop ASTs for every kernel."""
    return [k.loop() for k in KERNELS]


def doacross_kernels() -> list[Kernel]:
    """The kernels that exercise the paper's scheduler (DOACROSS class)."""
    return [k for k in KERNELS if k.expected_class is LoopClass.DOACROSS]
