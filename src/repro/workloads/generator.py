"""Seeded random DOACROSS loop generator.

The generator *plants* an exact set of loop-carried dependences and builds
statements around them, so a corpus's LFD/LBD structure is a controlled
input rather than an accident:

* each statement writes its own array (one writer per array), so the only
  carried dependences are the planted ones;
* a planted dependence ``(source s, sink t, distance d)`` makes statement
  ``s`` write ``X(I)`` and statement ``t`` read ``X(I-d)`` — lexically
  backward iff ``s >= t``;
* remaining operand slots read *noise* arrays that are never written
  (offsets vary, no dependences);
* optional temp scalars, reductions and induction variables produce
  pre-restructuring loops for the transform pipeline.

Everything is driven by a ``random.Random`` seeded from the config, so
corpora are reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ir.ast_nodes import ArrayRef, Assign, BinOp, Const, Expr, Loop, Stmt, VarRef


@dataclass(frozen=True)
class PlantedDep:
    """One deliberate loop-carried dependence.

    ``source``/``sink`` are statement indices (before any scalar/reduction
    statements are woven in); the dependence is LBD iff ``source >= sink``.

    ``chained`` additionally routes the sink statement's result into the
    source statement (the source reads the sink's target array at ``I``),
    creating a directed sink→source data path — and therefore a genuine
    synchronization path, the paper's unconvertible-LBD case.  A self
    dependence (``source == sink``) is inherently chained.
    """

    source: int
    sink: int
    distance: int
    chained: bool = False

    def __post_init__(self) -> None:
        if self.distance < 1:
            raise ValueError("planted dependences must be loop-carried (distance >= 1)")
        if self.chained and self.source < self.sink:
            raise ValueError("a chained dependence requires source at/after sink (LBD)")

    @property
    def is_lbd(self) -> bool:
        return self.source >= self.sink


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape of one generated loop."""

    statements: int = 4
    deps: tuple[PlantedDep, ...] = ()
    trip_count: int = 100
    noise_reads: tuple[int, int] = (1, 3)  # min/max extra operands per statement
    noise_offset: tuple[int, int] = (-3, 3)
    op_weights: tuple[float, float, float, float] = (5.0, 2.0, 2.0, 0.5)  # + - * /
    temp_scalars: int = 0  # covered temporaries (scalar expansion fodder)
    reductions: int = 0  # s = s + expr statements (reduction fodder)
    inductions: int = 0  # j = j + c increments used in subscripts
    guard_prob: float = 0.0  # probability a core statement gets an IF guard
    seed: int = 0
    name: str | None = None

    def __post_init__(self) -> None:
        for dep in self.deps:
            if not (0 <= dep.source < self.statements and 0 <= dep.sink < self.statements):
                raise ValueError(f"dependence {dep} references a missing statement")
            if dep.distance >= self.trip_count:
                raise ValueError(f"dependence distance {dep.distance} >= trip count")


_OPS = ("+", "-", "*", "/")


@dataclass
class _Builder:
    config: GeneratorConfig
    rng: random.Random
    noise_counter: int = 0
    reads_by_stmt: dict[int, list[Expr]] = field(default_factory=dict)

    def pick_op(self) -> str:
        return self.rng.choices(_OPS, weights=self.config.op_weights, k=1)[0]

    def noise_array(self) -> str:
        self.noise_counter += 1
        return f"R{self.noise_counter}"

    def noise_read(self) -> Expr:
        lo, hi = self.config.noise_offset
        offset = self.rng.randint(lo, hi)
        index: Expr = VarRef("I")
        if offset > 0:
            index = BinOp("+", index, Const(offset))
        elif offset < 0:
            index = BinOp("-", index, Const(-offset))
        return ArrayRef(self.noise_array(), index)

    def combine(self, operands: list[Expr]) -> Expr:
        """Fold operands into a random-shaped expression tree."""
        operands = operands[:]
        self.rng.shuffle(operands)
        while len(operands) > 1:
            i = self.rng.randrange(len(operands) - 1)
            left = operands.pop(i)
            right = operands.pop(i)
            op = self.pick_op()
            if op == "/" and not (
                isinstance(right, ArrayRef) and right.name.startswith("R")
            ):
                # Only noise arrays (never written, never-zero defaults) may
                # be denominators; dividing by computed data risks zero in
                # the semantic equivalence checks.
                op = "*"
            operands.insert(i, BinOp(op, left, right))
        return operands[0]


def generate_loop(config: GeneratorConfig) -> Loop:
    """Generate one DO loop per ``config`` (deterministic in ``config.seed``)."""
    rng = random.Random(config.seed)
    builder = _Builder(config=config, rng=rng)

    # Target array of each core statement: the dependence sources must keep
    # a stable array across their dependences; others write private arrays.
    target_array = {s: f"A{s}" for s in range(config.statements)}

    # Planted reads per sink statement; chained dependences also feed the
    # sink's value forward into the source statement.
    planted_reads: dict[int, list[Expr]] = {s: [] for s in range(config.statements)}
    for dep in config.deps:
        read = ArrayRef(
            target_array[dep.source], BinOp("-", VarRef("I"), Const(dep.distance))
        )
        planted_reads[dep.sink].append(read)
        if dep.chained and dep.source != dep.sink:
            planted_reads[dep.source].append(
                ArrayRef(target_array[dep.sink], VarRef("I"))
            )

    body: list[Stmt] = []
    for s in range(config.statements):
        operands: list[Expr] = list(planted_reads[s])
        lo, hi = config.noise_reads
        for _ in range(rng.randint(lo, hi)):
            operands.append(builder.noise_read())
        if not operands:
            operands.append(builder.noise_read())
        expr = builder.combine(operands)
        guard = None
        # (guard_prob == 0 must not touch the RNG stream: the frozen
        # corpora were generated before guards existed)
        if config.guard_prob > 0 and rng.random() < config.guard_prob:
            # defaults lie in [2, 6): a threshold inside that range makes
            # both guard outcomes occur across iterations
            from repro.ir.ast_nodes import Comparison

            guard = Comparison(
                rng.choice(("<", ">", "<=", ">=")),
                builder.noise_read(),
                Const(rng.choice((3, 4, 5))),
            )
        body.append(
            Assign(target=ArrayRef(target_array[s], VarRef("I")), expr=expr, guard=guard)
        )

    # Optional pre-restructuring material, woven at deterministic positions.
    for t in range(config.temp_scalars):
        temp = f"T{t}"
        define = Assign(target=VarRef(temp), expr=builder.noise_read())
        use_pos = rng.randrange(len(body)) + 1
        body.insert(use_pos, define)
        # splice a use of the temp into the next assignment's RHS
        for stmt in body[use_pos + 1 :]:
            if isinstance(stmt, Assign) and isinstance(stmt.target, ArrayRef):
                stmt.expr = BinOp("+", stmt.expr, VarRef(temp))
                break
        else:
            body.append(
                Assign(
                    target=ArrayRef(builder.noise_array(), VarRef("I")),
                    expr=VarRef(temp),
                )
            )
    for r in range(config.reductions):
        acc = f"SUM{r}"
        body.append(Assign(target=VarRef(acc), expr=BinOp("+", VarRef(acc), builder.noise_read())))
    for j in range(config.inductions):
        ind = f"J{j}"
        step = rng.randint(1, 2)
        body.insert(0, Assign(target=VarRef(ind), expr=BinOp("+", VarRef(ind), Const(step))))
        body.append(
            Assign(
                target=ArrayRef(builder.noise_array(), VarRef(ind)),
                expr=builder.noise_read(),
            )
        )

    return Loop(
        index="I",
        lower=Const(1),
        upper=Const(config.trip_count),
        body=body,
        name=config.name,
    )
