"""Workloads: DOACROSS loop corpora for the experiments.

The paper evaluates on five Perfect-club benchmarks (FLQ52, QCD, MDG,
TRACK, ADM).  The original Fortran sources are not redistributable (and the
Parafrase toolchain is long gone), so :mod:`repro.workloads.perfect`
synthesizes a loop corpus per benchmark with the dependence
*characteristics* the paper reports — loop counts, the all-LBD property of
FLQ52/QCD/TRACK, distance distributions, and body shapes (see DESIGN.md's
substitution table).  :mod:`repro.workloads.generator` is the seeded
random DOACROSS loop generator underneath;
:mod:`repro.workloads.characteristics` extracts Table-1-style statistics
from any corpus.
"""

from repro.workloads.characteristics import BenchmarkCharacteristics, characterize
from repro.workloads.generator import GeneratorConfig, PlantedDep, generate_loop
from repro.workloads.livermore import (
    Kernel,
    doacross_kernels,
    livermore_kernels,
    livermore_loops,
)
from repro.workloads.perfect import PERFECT_BENCHMARKS, perfect_benchmark, perfect_suite

__all__ = [
    "BenchmarkCharacteristics",
    "GeneratorConfig",
    "Kernel",
    "PERFECT_BENCHMARKS",
    "PlantedDep",
    "characterize",
    "doacross_kernels",
    "generate_loop",
    "livermore_kernels",
    "livermore_loops",
    "perfect_benchmark",
    "perfect_suite",
]
