"""Table-1-style benchmark characteristics extraction."""

from __future__ import annotations

from dataclasses import dataclass

from repro.deps import analyze_loop, classify_loop, count_lfd_lbd, LoopClass
from repro.ir.ast_nodes import Assign, Loop


@dataclass(frozen=True)
class BenchmarkCharacteristics:
    """The columns of the paper's Table 1 for one benchmark corpus."""

    name: str
    total_loops: int
    doall_loops: int
    doacross_loops: int
    serial_loops: int
    total_statements: int
    lfd: int
    lbd: int

    @property
    def all_lbd(self) -> bool:
        return self.lbd > 0 and self.lfd == 0


def characterize(name: str, loops: list[Loop]) -> BenchmarkCharacteristics:
    """Analyze a corpus: loop classes and carried-dependence directions."""
    doall = doacross = serial = 0
    lfd = lbd = 0
    statements = 0
    for loop in loops:
        graph = analyze_loop(loop)
        cls = classify_loop(graph)
        if cls is LoopClass.DOALL:
            doall += 1
        elif cls is LoopClass.DOACROSS:
            doacross += 1
        else:
            serial += 1
        counts = count_lfd_lbd(graph)
        lfd += counts.lfd
        lbd += counts.lbd
        statements += sum(1 for s in loop.body if isinstance(s, Assign))
    return BenchmarkCharacteristics(
        name=name,
        total_loops=len(loops),
        doall_loops=doall,
        doacross_loops=doacross,
        serial_loops=serial,
        total_statements=statements,
        lfd=lfd,
        lbd=lbd,
    )
