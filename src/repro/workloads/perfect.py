"""Synthetic Perfect-club benchmark corpora.

The five corpora mirror the dependence characteristics the paper reports
for its Perfect-benchmark DOACROSS loops (Table 1 and the surrounding
prose); the original Fortran sources are unavailable, so each corpus is a
seeded, reproducible set of generated loops plus a few hand-written kernels
in the benchmark's style:

* **FLQ52** (transonic flow solver): medium bodies with substantial
  independent work per iteration; every carried dependence is LBD.  Large
  bodies with short synchronization paths are where the new scheduler wins
  big (the paper measures ~87-90%).
* **QCD** (lattice gauge theory): tight first-order recurrences — the
  synchronization path *is* most of the body, so little is left to gain
  (the paper's anomaly: as low as 0.32% at 2-issue/#FU=2).  All LBD.
* **MDG** (molecular dynamics of water): medium bodies, divisions (the
  6-cycle divider), a reduction and expanded temporaries exercising the
  restructuring pipeline; mostly LBD with occasional LFD.
* **TRACK** (missile tracking): like FLQ52 with longer distances; all LBD.
* **ADM** (pseudospectral air pollution): mixed LFD/LBD with moderate
  bodies; moderate improvements (~79-83% in the paper).
"""

from __future__ import annotations

from repro.ir.ast_nodes import Loop
from repro.ir.parser import parse_loop
from repro.workloads.generator import GeneratorConfig, PlantedDep, generate_loop


def _gen(name: str, seed: int, statements: int, deps: list[tuple], **kw) -> Loop:
    """Dep tuples are ``(source, sink, distance[, chained])``."""
    config = GeneratorConfig(
        statements=statements,
        deps=tuple(PlantedDep(*d) for d in deps),
        seed=seed,
        name=name,
        **kw,
    )
    return generate_loop(config)


# -- hand-written kernels -----------------------------------------------------

_FLQ52_SWEEP = """
DO I = 1, 100
  S1: P(I) = U(I-1) * R1(I) + R2(I+1)
  S2: Q(I) = P(I) * R3(I-2) - R4(I) * R5(I+2)
  S3: U(I) = Q(I) + R6(I+1) * R7(I) + R8(I-3)
ENDDO
"""

_QCD_LINK = """
DO I = 1, 100
  S1: U(I) = U(I-1) * R1(I)
ENDDO
"""

_QCD_PLAQUETTE = """
DO I = 1, 100
  S1: W(I) = W(I-1) * R1(I) + R2(I)
  S2: V(I) = W(I) * R3(I)
ENDDO
"""

_MDG_FORCES = """
DO I = 1, 100
  T = R1(I) * R2(I+1)
  S1: F(I) = T + G(I-1) / R3(I)
  S2: G(I) = F(I) - T * R4(I-2)
  SUM = SUM + F(I)
ENDDO
"""

_TRACK_FILTER = """
DO I = 1, 100
  S1: X(I) = X(I-2) * R1(I) + R2(I+1) * R3(I-1) + R4(I)
  S2: Y(I) = X(I) + R5(I) * R6(I+3) - R7(I-2) * R8(I)
ENDDO
"""

_ADM_SMOOTH = """
DO I = 1, 100
  S1: C(I) = R1(I) + R2(I-1) * R3(I)
  S2: D(I) = C(I-1) + C(I) * R4(I+2)
  S3: E9(I) = D(I-1) - R5(I) * R6(I)
ENDDO
"""


def _flq52() -> list[Loop]:
    loops = [parse_loop(_FLQ52_SWEEP)]
    specs = [
        (110, 7, [(6, 0, 1)]),
        (111, 6, [(5, 1, 2)]),
        (112, 8, [(7, 0, 1)]),
        (113, 7, [(6, 2, 1), (2, 2, 2)]),
        (114, 6, [(5, 0, 2)]),
        (115, 8, [(7, 1, 1)]),
        (116, 7, [(3, 3, 1)]),
    ]
    for seed, statements, deps in specs:
        loops.append(
            _gen("flq52", seed, statements, deps, noise_reads=(3, 4), op_weights=(4, 2, 3, 0.5))
        )
    return loops


def _qcd() -> list[Loop]:
    loops = [parse_loop(_QCD_LINK), parse_loop(_QCD_PLAQUETTE)]
    specs = [
        (210, 1, [(0, 0, 1)]),
        (211, 2, [(1, 0, 1, True)]),  # chained: a genuine two-statement recurrence
        (212, 1, [(0, 0, 2)]),
        (213, 2, [(1, 1, 1)]),
    ]
    for seed, statements, deps in specs:
        loops.append(
            _gen("qcd", seed, statements, deps, noise_reads=(0, 1), op_weights=(3, 1, 4, 0))
        )
    return loops


def _mdg() -> list[Loop]:
    loops = [parse_loop(_MDG_FORCES)]
    specs = [
        (310, 4, [(3, 0, 1)]),
        (311, 5, [(4, 1, 2)]),
        (312, 3, [(2, 0, 1), (0, 1, 1)]),  # one LFD alongside the LBD
        (313, 5, [(4, 0, 1)]),
        (314, 4, [(3, 2, 2)]),
    ]
    for seed, statements, deps in specs:
        loops.append(
            _gen("mdg", seed, statements, deps, noise_reads=(2, 3), op_weights=(4, 2, 2, 1))
        )
    loops.append(
        _gen("mdg-red", 315, 4, [(3, 0, 1)], noise_reads=(1, 2), reductions=1, temp_scalars=1)
    )
    return loops


def _track() -> list[Loop]:
    loops = [parse_loop(_TRACK_FILTER)]
    specs = [
        (410, 5, [(4, 0, 1)]),
        (411, 6, [(5, 1, 3)]),
        (412, 5, [(4, 0, 2)]),
        (413, 7, [(6, 2, 1)]),
        (414, 6, [(5, 0, 1), (3, 3, 2)]),
        (415, 5, [(4, 1, 1)]),
    ]
    for seed, statements, deps in specs:
        loops.append(
            _gen("track", seed, statements, deps, noise_reads=(2, 3), op_weights=(4, 2, 3, 0.3))
        )
    return loops


def _adm() -> list[Loop]:
    loops = [parse_loop(_ADM_SMOOTH)]
    specs = [
        (510, 4, [(2, 0, 1, True)]),  # chained recurrence
        (511, 4, [(0, 2, 1), (3, 1, 1)]),  # LFD + convertible LBD
        (512, 5, [(3, 0, 2)]),
        (513, 3, [(2, 1, 1)]),
        (514, 5, [(0, 3, 2), (4, 2, 1)]),  # LFD + convertible LBD
        (515, 4, [(3, 0, 1)]),
        (516, 3, [(1, 1, 1)]),  # self dependence
    ]
    for seed, statements, deps in specs:
        loops.append(
            _gen("adm", seed, statements, deps, noise_reads=(1, 2), op_weights=(5, 2, 2, 0.4))
        )
    return loops


PERFECT_BENCHMARKS = ("FLQ52", "QCD", "MDG", "TRACK", "ADM")

_BUILDERS = {
    "FLQ52": _flq52,
    "QCD": _qcd,
    "MDG": _mdg,
    "TRACK": _track,
    "ADM": _adm,
}


def perfect_benchmark(name: str) -> list[Loop]:
    """The loop corpus of one benchmark (fresh AST objects per call)."""
    try:
        return _BUILDERS[name.upper()]()
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; choose from {PERFECT_BENCHMARKS}") from None


def perfect_suite() -> dict[str, list[Loop]]:
    """All five corpora, in the paper's table order."""
    return {name: perfect_benchmark(name) for name in PERFECT_BENCHMARKS}
