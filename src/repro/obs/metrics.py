"""Counters and histograms for the quantities the paper reasons about.

A :class:`MetricsRegistry` holds two deterministic stores:

* **counters** — monotonically increasing integers (``count()``):
  wait-stall cycles, run-time LBD/LFD pair counts, cache hits, fast-path
  vs event-walk dispatch, ...
* **histograms** — value → occurrence maps (``observe()``): Wait→Send
  spans ``i − j``, per-pair stall totals, ready-list lengths, ...

Both stores are plain integer maps, so merging registries (e.g. from
:class:`~repro.perf.parallel.ParallelEvaluator` workers) is commutative
and associative: aggregates are **identical regardless of how the work
was partitioned** — the same discipline as the profile merge of PR 1.

Metric names are dotted.  The first component is the namespace; the
:data:`DETERMINISTIC_NAMESPACES` (``sim``, ``sched``) hold quantities
recorded once per loop evaluation, which are therefore identical across
``--jobs 1`` and ``--jobs 4`` runs.  Other namespaces (``cache``,
``parallel``, ``sched_pass``) describe *how* the run executed — cache
warmth and worker partitioning legitimately change them.  Use
:meth:`MetricsRegistry.deterministic_subset` to compare runs.

The ``robust.*`` namespace (see :mod:`repro.robust` and
``docs/robustness.md``) is likewise **non-deterministic by design**: it
counts injected faults taking effect (``robust.faults.*``), diagnosed
deadlocks (``robust.deadlock.detected``), degraded-mode recoveries in
the parallel evaluator (``robust.parallel.timeouts`` / ``retries`` /
``broken_pool`` / ``serial_reruns``), quarantined work
(``robust.quarantine.loops`` / ``jobs``) and discarded on-disk caches
(``robust.cache.corrupt``) — all functions of the fault plan, the host,
and timing, not of the workload alone.

The module-level :func:`count` / :func:`observe` helpers write to the
registry installed with :func:`enable_metrics`, and cost one global read
when metrics are disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "DETERMINISTIC_NAMESPACES",
    "MetricsRegistry",
    "active_metrics",
    "count",
    "disable_metrics",
    "enable_metrics",
    "observe",
]

# Namespaces whose metrics depend only on (corpus, machine, options) —
# never on caching, worker count or partitioning.
DETERMINISTIC_NAMESPACES = ("sim", "sched")


@dataclass
class MetricsRegistry:
    """Deterministically mergeable counters and histograms."""

    counters: dict[str, int] = field(default_factory=dict)
    histograms: dict[str, dict[int, int]] = field(default_factory=dict)

    # -- recording -----------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def observe(self, name: str, value: int) -> None:
        bucket = self.histograms.setdefault(name, {})
        bucket[value] = bucket.get(value, 0) + 1

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's totals in (commutative)."""
        for name, amount in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + amount
        for name, buckets in other.histograms.items():
            mine = self.histograms.setdefault(name, {})
            for value, occurrences in buckets.items():
                mine[value] = mine.get(value, 0) + occurrences

    def deterministic_subset(self) -> "MetricsRegistry":
        """Only the metrics guaranteed identical across execution
        strategies (see :data:`DETERMINISTIC_NAMESPACES`)."""

        def keep(name: str) -> bool:
            return name.split(".", 1)[0] in DETERMINISTIC_NAMESPACES

        return MetricsRegistry(
            counters={k: v for k, v in self.counters.items() if keep(k)},
            histograms={
                k: dict(v) for k, v in self.histograms.items() if keep(k)
            },
        )

    # -- export --------------------------------------------------------------

    def histogram_summary(self, name: str) -> dict[str, Any]:
        buckets = self.histograms[name]
        total = sum(buckets.values())
        weighted = sum(value * occurrences for value, occurrences in buckets.items())
        return {
            "count": total,
            "sum": weighted,
            "min": min(buckets),
            "max": max(buckets),
            "mean": round(weighted / total, 4) if total else 0.0,
            "buckets": {str(value): buckets[value] for value in sorted(buckets)},
        }

    def as_dict(self) -> dict[str, Any]:
        """Snapshot with stable key order, ready for JSON export."""
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "histograms": {
                name: self.histogram_summary(name) for name in sorted(self.histograms)
            },
        }

    def format(self) -> str:
        """Aligned human-readable table, counters then histograms."""
        if not self.counters and not self.histograms:
            return "no metrics recorded"
        lines: list[str] = []
        if self.counters:
            width = max(len(name) for name in self.counters)
            lines.append(f"{'counter':<{width}}  {'value':>12}")
            for name in sorted(self.counters):
                lines.append(f"{name:<{width}}  {self.counters[name]:>12}")
        if self.histograms:
            if lines:
                lines.append("")
            width = max(len(name) for name in self.histograms)
            lines.append(
                f"{'histogram':<{width}}  {'count':>8}  {'sum':>10}  "
                f"{'min':>6}  {'max':>6}  {'mean':>9}"
            )
            for name in sorted(self.histograms):
                s = self.histogram_summary(name)
                lines.append(
                    f"{name:<{width}}  {s['count']:>8}  {s['sum']:>10}  "
                    f"{s['min']:>6}  {s['max']:>6}  {s['mean']:>9.2f}"
                )
        return "\n".join(lines)

    def __bool__(self) -> bool:
        return bool(self.counters or self.histograms)


_ACTIVE: MetricsRegistry | None = None


def enable_metrics(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the active collector."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return _ACTIVE


def disable_metrics() -> MetricsRegistry | None:
    """Deactivate and return the previously active registry, if any."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, None
    return previous


def active_metrics() -> MetricsRegistry | None:
    return _ACTIVE


def count(name: str, amount: int = 1) -> None:
    """Bump a counter on the active registry; no-op when disabled."""
    registry = _ACTIVE
    if registry is not None:
        registry.count(name, amount)


def observe(name: str, value: int) -> None:
    """Record a histogram observation; no-op when disabled."""
    registry = _ACTIVE
    if registry is not None:
        registry.observe(name, value)
