"""Counters and histograms for the quantities the paper reasons about.

A :class:`MetricsRegistry` holds two deterministic stores:

* **counters** — monotonically increasing integers (``count()``):
  wait-stall cycles, run-time LBD/LFD pair counts, cache hits, fast-path
  vs event-walk dispatch, ...
* **histograms** — value → occurrence maps (``observe()``): Wait→Send
  spans ``i − j``, per-pair stall totals, ready-list lengths, ...

Both stores are plain integer maps, so merging registries (e.g. from
:class:`~repro.perf.parallel.ParallelEvaluator` workers) is commutative
and associative: aggregates are **identical regardless of how the work
was partitioned** — the same discipline as the profile merge of PR 1.

Metric names are dotted.  The first component is the namespace; the
:data:`DETERMINISTIC_NAMESPACES` (``sim``, ``sched``) hold quantities
recorded once per loop evaluation, which are therefore identical across
``--jobs 1`` and ``--jobs 4`` runs.  Other namespaces (``cache``,
``parallel``, ``sched_pass``) describe *how* the run executed — cache
warmth and worker partitioning legitimately change them.  Use
:meth:`MetricsRegistry.deterministic_subset` to compare runs.

The ``robust.*`` namespace (see :mod:`repro.robust` and
``docs/robustness.md``) is likewise **non-deterministic by design**: it
counts injected faults taking effect (``robust.faults.*``), diagnosed
deadlocks (``robust.deadlock.detected``), degraded-mode recoveries in
the parallel evaluator (``robust.parallel.timeouts`` / ``retries`` /
``broken_pool`` / ``serial_reruns``), quarantined work
(``robust.quarantine.loops`` / ``jobs``) and discarded on-disk caches
(``robust.cache.corrupt``) — all functions of the fault plan, the host,
and timing, not of the workload alone.

Two further stores serve the service telemetry layer (PR 8) — they keep
the same commutative-merge discipline, but hold operational quantities:

* **distributions** — fixed-bucket :class:`Histogram`\\ s (``record_value()``)
  for continuous measurements: request latency in seconds, coalesce
  window occupancy.  Bucket counts are plain integers, so merging is
  exact; the p50/p95/p99 estimators interpolate within a bucket.
* **gauges** — :class:`Gauge` point-in-time values (``set_gauge()``):
  queue depth, in-flight requests.  Merging keeps the maximum (the only
  commutative, associative choice without timestamps) plus min/max/
  update counts.

The module-level :func:`count` / :func:`observe` / :func:`record_value`
/ :func:`set_gauge` helpers write to the registry installed with
:func:`enable_metrics` **and** to the context-local registry installed
with :func:`metrics_scope` (a :mod:`contextvars` scope, so concurrent
service handler threads each collect into their own registry without
sharing one global).  The disabled path costs two module-global reads.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "DETERMINISTIC_NAMESPACES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_metrics",
    "context_metrics",
    "count",
    "disable_metrics",
    "enable_metrics",
    "metrics_scope",
    "observe",
    "percentile",
    "record_value",
    "set_gauge",
]

# Namespaces whose metrics depend only on (corpus, machine, options) —
# never on caching, worker count or partitioning.
DETERMINISTIC_NAMESPACES = ("sim", "sched")

#: Default bucket upper bounds (seconds) for :class:`Histogram`: a
#: 1-2.5-5 decade ladder from 1 ms to 30 s, sized for request latencies.
DEFAULT_LATENCY_BOUNDS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def percentile(values: Iterable[float], q: float) -> float:
    """Nearest-rank percentile of raw samples.

    The shared client-side convention (``repro loadtest`` and friends):
    sort, take index ``floor(q * len)`` clamped to the last sample.
    For bucketed server-side estimates use :meth:`Histogram.percentile`.
    """
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


class Histogram:
    """A fixed-bucket distribution with quantile estimation.

    ``bounds`` are inclusive bucket upper bounds (Prometheus ``le``
    semantics); one overflow bucket catches everything above the last
    bound.  All merge state is integer bucket counts plus exact min/max,
    so :meth:`merge` is commutative and associative like the counter
    stores (the float ``sum`` is the one field subject to float
    association error).  :meth:`percentile` interpolates linearly within
    the bucket holding the target rank and clamps to the observed
    min/max, so p50/p95/p99 are deterministic functions of the merged
    counts.
    """

    __slots__ = ("bounds", "bucket_counts", "total", "value_sum", "minimum", "maximum")

    def __init__(self, bounds: Iterable[float] = DEFAULT_LATENCY_BOUNDS) -> None:
        cleaned = tuple(sorted({float(bound) for bound in bounds}))
        if not cleaned:
            raise ValueError("Histogram needs at least one bucket bound")
        self.bounds = cleaned
        self.bucket_counts = [0] * (len(cleaned) + 1)  # +1: overflow
        self.total = 0
        self.value_sum = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None

    def record(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.value_sum += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for index, occurrences in enumerate(other.bucket_counts):
            self.bucket_counts[index] += occurrences
        self.total += other.total
        self.value_sum += other.value_sum
        for attr in ("minimum", "maximum"):
            mine, theirs = getattr(self, attr), getattr(other, attr)
            if theirs is not None:
                pick = min if attr == "minimum" else max
                setattr(self, attr, theirs if mine is None else pick(mine, theirs))

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]); 0.0 when empty."""
        if self.total == 0:
            return 0.0
        target = min(max(q, 0.0), 1.0) * self.total
        cumulative = 0
        previous = 0.0
        for bound, occurrences in zip(self.bounds, self.bucket_counts):
            if occurrences and cumulative + occurrences >= target:
                fraction = (target - cumulative) / occurrences
                return self._clamp(previous + (bound - previous) * fraction)
            cumulative += occurrences
            previous = bound
        # Overflow bucket: the exact maximum is the only honest bound.
        return self._clamp(self.maximum if self.maximum is not None else previous)

    def _clamp(self, estimate: float) -> float:
        if self.minimum is not None:
            estimate = max(estimate, self.minimum)
        if self.maximum is not None:
            estimate = min(estimate, self.maximum)
        return estimate

    def summary(self) -> dict[str, Any]:
        buckets = {
            repr(bound): occurrences
            for bound, occurrences in zip(self.bounds, self.bucket_counts)
        }
        buckets["+Inf"] = self.bucket_counts[-1]
        return {
            "count": self.total,
            "sum": round(self.value_sum, 9),
            "min": self.minimum,
            "max": self.maximum,
            "mean": round(self.value_sum / self.total, 9) if self.total else 0.0,
            "p50": round(self.percentile(0.50), 9),
            "p95": round(self.percentile(0.95), 9),
            "p99": round(self.percentile(0.99), 9),
            "buckets": buckets,
        }

    def copy(self) -> "Histogram":
        twin = Histogram(self.bounds)
        twin.merge(self)
        return twin

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.bounds == other.bounds
            and self.bucket_counts == other.bucket_counts
            and self.total == other.total
            and self.value_sum == other.value_sum
            and self.minimum == other.minimum
            and self.maximum == other.maximum
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.total}, sum={self.value_sum:.6f})"


class Gauge:
    """A point-in-time value (queue depth, in-flight requests).

    :meth:`merge` keeps the **maximum** of the two current values — the
    only commutative, associative combination available without
    timestamps — and folds min/max/update counts exactly, so merged
    snapshots stay order-independent like every other store here.
    """

    __slots__ = ("value", "minimum", "maximum", "updates")

    def __init__(self) -> None:
        self.value: float = 0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    def merge(self, other: "Gauge") -> None:
        if other.updates == 0:
            return
        self.value = other.value if self.updates == 0 else max(self.value, other.value)
        self.updates += other.updates
        for attr in ("minimum", "maximum"):
            mine, theirs = getattr(self, attr), getattr(other, attr)
            if theirs is not None:
                pick = min if attr == "minimum" else max
                setattr(self, attr, theirs if mine is None else pick(mine, theirs))

    def summary(self) -> dict[str, Any]:
        return {
            "value": self.value,
            "min": self.minimum,
            "max": self.maximum,
            "updates": self.updates,
        }

    def copy(self) -> "Gauge":
        twin = Gauge()
        twin.merge(self)
        return twin

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gauge):
            return NotImplemented
        return (
            self.value == other.value
            and self.minimum == other.minimum
            and self.maximum == other.maximum
            and self.updates == other.updates
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge(value={self.value}, updates={self.updates})"


@dataclass
class MetricsRegistry:
    """Deterministically mergeable counters and histograms."""

    counters: dict[str, int] = field(default_factory=dict)
    histograms: dict[str, dict[int, int]] = field(default_factory=dict)
    distributions: dict[str, Histogram] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)

    # -- recording -----------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def observe(self, name: str, value: int) -> None:
        bucket = self.histograms.setdefault(name, {})
        bucket[value] = bucket.get(value, 0) + 1

    def record_value(
        self, name: str, value: float, bounds: Iterable[float] | None = None
    ) -> None:
        """Record one sample into the named fixed-bucket distribution.

        ``bounds`` only takes effect when the distribution is created by
        this call (default: :data:`DEFAULT_LATENCY_BOUNDS`).
        """
        histogram = self.distributions.get(name)
        if histogram is None:
            histogram = self.distributions[name] = Histogram(
                bounds if bounds is not None else DEFAULT_LATENCY_BOUNDS
            )
        histogram.record(value)

    def set_gauge(self, name: str, value: float) -> None:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        gauge.set(value)

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's totals in (commutative)."""
        for name, amount in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + amount
        for name, buckets in other.histograms.items():
            mine = self.histograms.setdefault(name, {})
            for value, occurrences in buckets.items():
                mine[value] = mine.get(value, 0) + occurrences
        for name, histogram in other.distributions.items():
            mine_h = self.distributions.get(name)
            if mine_h is None:
                self.distributions[name] = histogram.copy()
            else:
                mine_h.merge(histogram)
        for name, gauge in other.gauges.items():
            mine_g = self.gauges.get(name)
            if mine_g is None:
                self.gauges[name] = gauge.copy()
            else:
                mine_g.merge(gauge)

    def deterministic_subset(self) -> "MetricsRegistry":
        """Only the metrics guaranteed identical across execution
        strategies (see :data:`DETERMINISTIC_NAMESPACES`)."""

        def keep(name: str) -> bool:
            return name.split(".", 1)[0] in DETERMINISTIC_NAMESPACES

        return MetricsRegistry(
            counters={k: v for k, v in self.counters.items() if keep(k)},
            histograms={
                k: dict(v) for k, v in self.histograms.items() if keep(k)
            },
            distributions={
                k: v.copy() for k, v in self.distributions.items() if keep(k)
            },
            gauges={k: v.copy() for k, v in self.gauges.items() if keep(k)},
        )

    # -- export --------------------------------------------------------------

    def histogram_summary(self, name: str) -> dict[str, Any]:
        buckets = self.histograms[name]
        total = sum(buckets.values())
        weighted = sum(value * occurrences for value, occurrences in buckets.items())
        return {
            "count": total,
            "sum": weighted,
            "min": min(buckets),
            "max": max(buckets),
            "mean": round(weighted / total, 4) if total else 0.0,
            "buckets": {str(value): buckets[value] for value in sorted(buckets)},
        }

    def as_dict(self) -> dict[str, Any]:
        """Snapshot with stable key order, ready for JSON export.

        The ``distributions``/``gauges`` keys appear **only when
        non-empty**: one-shot pipeline snapshots (report records,
        ``repro metrics --json``) never record them, and their output
        must stay byte-identical to the pre-telemetry schema.
        """
        snapshot: dict[str, Any] = {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "histograms": {
                name: self.histogram_summary(name) for name in sorted(self.histograms)
            },
        }
        if self.distributions:
            snapshot["distributions"] = {
                name: self.distributions[name].summary()
                for name in sorted(self.distributions)
            }
        if self.gauges:
            snapshot["gauges"] = {
                name: self.gauges[name].summary() for name in sorted(self.gauges)
            }
        return snapshot

    def format(self) -> str:
        """Aligned human-readable table, counters then histograms."""
        if not self:
            return "no metrics recorded"
        lines: list[str] = []
        if self.counters:
            width = max(len(name) for name in self.counters)
            lines.append(f"{'counter':<{width}}  {'value':>12}")
            for name in sorted(self.counters):
                lines.append(f"{name:<{width}}  {self.counters[name]:>12}")
        if self.histograms:
            if lines:
                lines.append("")
            width = max(len(name) for name in self.histograms)
            lines.append(
                f"{'histogram':<{width}}  {'count':>8}  {'sum':>10}  "
                f"{'min':>6}  {'max':>6}  {'mean':>9}"
            )
            for name in sorted(self.histograms):
                s = self.histogram_summary(name)
                lines.append(
                    f"{name:<{width}}  {s['count']:>8}  {s['sum']:>10}  "
                    f"{s['min']:>6}  {s['max']:>6}  {s['mean']:>9.2f}"
                )
        if self.distributions:
            if lines:
                lines.append("")
            width = max(len(name) for name in self.distributions)
            lines.append(
                f"{'distribution':<{width}}  {'count':>8}  {'p50':>10}  "
                f"{'p95':>10}  {'p99':>10}  {'max':>10}"
            )
            for name in sorted(self.distributions):
                s = self.distributions[name].summary()
                lines.append(
                    f"{name:<{width}}  {s['count']:>8}  {s['p50']:>10.4f}  "
                    f"{s['p95']:>10.4f}  {s['p99']:>10.4f}  {s['max'] or 0.0:>10.4f}"
                )
        if self.gauges:
            if lines:
                lines.append("")
            width = max(len(name) for name in self.gauges)
            lines.append(
                f"{'gauge':<{width}}  {'value':>10}  {'min':>10}  "
                f"{'max':>10}  {'updates':>8}"
            )
            for name in sorted(self.gauges):
                s = self.gauges[name].summary()
                lines.append(
                    f"{name:<{width}}  {s['value']:>10}  {s['min'] or 0:>10}  "
                    f"{s['max'] or 0:>10}  {s['updates']:>8}"
                )
        return "\n".join(lines)

    def __bool__(self) -> bool:
        return bool(
            self.counters or self.histograms or self.distributions or self.gauges
        )


_ACTIVE: MetricsRegistry | None = None

# Context-local collector (PR 8): the service wraps each request's
# execution in metrics_scope(), so concurrent handler threads never
# share one global registry.  _SCOPES counts entered scopes process-wide
# so the disabled hot path stays at two module-global reads (no
# ContextVar lookup until someone actually opens a scope).
_SCOPED: ContextVar[MetricsRegistry | None] = ContextVar(
    "repro_obs_metrics_scope", default=None
)
_SCOPES = 0
_SCOPES_LOCK = threading.Lock()


def enable_metrics(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the active collector."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return _ACTIVE


def disable_metrics() -> MetricsRegistry | None:
    """Deactivate and return the previously active registry, if any."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, None
    return previous


def active_metrics() -> MetricsRegistry | None:
    return _ACTIVE


@contextmanager
def metrics_scope(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Collect into ``registry`` (or a fresh one) for this context only.

    Context-local (:mod:`contextvars`): a scope entered on one thread is
    invisible to every other, so the service can give each request its
    own collector while the process-global :func:`enable_metrics`
    registry (if any) keeps receiving everything.  Scopes nest; the
    innermost wins.
    """
    global _SCOPES
    registry = registry if registry is not None else MetricsRegistry()
    token = _SCOPED.set(registry)
    with _SCOPES_LOCK:
        _SCOPES += 1
    try:
        yield registry
    finally:
        with _SCOPES_LOCK:
            _SCOPES -= 1
        _SCOPED.reset(token)


def context_metrics() -> MetricsRegistry | None:
    """The registry installed by the innermost :func:`metrics_scope`."""
    return _SCOPED.get()


def count(name: str, amount: int = 1) -> None:
    """Bump a counter on the active registry; no-op when disabled."""
    registry = _ACTIVE
    if registry is not None:
        registry.count(name, amount)
    if _SCOPES:
        scoped = _SCOPED.get()
        if scoped is not None and scoped is not registry:
            scoped.count(name, amount)


def observe(name: str, value: int) -> None:
    """Record a histogram observation; no-op when disabled."""
    registry = _ACTIVE
    if registry is not None:
        registry.observe(name, value)
    if _SCOPES:
        scoped = _SCOPED.get()
        if scoped is not None and scoped is not registry:
            scoped.observe(name, value)


def record_value(name: str, value: float, bounds: Iterable[float] | None = None) -> None:
    """Record a distribution sample; no-op when disabled."""
    registry = _ACTIVE
    if registry is not None:
        registry.record_value(name, value, bounds)
    if _SCOPES:
        scoped = _SCOPED.get()
        if scoped is not None and scoped is not registry:
            scoped.record_value(name, value, bounds)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge; no-op when disabled."""
    registry = _ACTIVE
    if registry is not None:
        registry.set_gauge(name, value)
    if _SCOPES:
        scoped = _SCOPED.get()
        if scoped is not None and scoped is not registry:
            scoped.set_gauge(name, value)
