"""Continuous sampling CPU profiler: collapsed stacks, flame graphs, diffs.

:class:`StageProfiler` (PR 1) buckets coarse per-stage wall clock and the
``service.*`` telemetry stops at request latency — neither can say *which
function* regressed when ``repro bench check`` trips its wall-clock gate.
This module closes that gap with a zero-dependency sampling profiler:

* :class:`Profiler` — a daemon thread that samples
  ``sys._current_frames()`` at a configurable hz and aggregates each
  thread's stack into **collapsed (folded) form** (``mod:fn;mod:fn;...``,
  root first — the format every flame-graph tool speaks).  Default off;
  the disabled cost of instrumented code is one module-global read, the
  same discipline as :func:`repro.obs.trace.span`.  The profiler is also
  a :class:`~repro.obs.trace.Tracer`: installed via
  :func:`~repro.obs.trace.add_tracer` it rides the existing span seam and
  attributes every sample to the innermost open pipeline stage.
* :class:`Profile` — the immutable, schema-stamped sample aggregate
  (``kind: "profile"``, schema v10) with per-frame self/total counts
  (:func:`frame_stats`), folded-line export (:func:`folded_lines`), a
  terminal top table (:func:`profile_top_table`) and a self-contained
  SVG flame graph (:func:`flamegraph_svg` — same zero-dependency style
  as ``timeline_html``, embedded by ``repro dash`` and served by
  ``GET /v1/profile?format=svg``).
* :func:`diff_profiles` / :func:`format_profile_diff` — per-frame deltas
  between two profiles as *shares* of their own sample totals, naming
  the top regressed frames (``repro prof diff``, and the automatic
  attribution block ``repro bench check`` attaches when the wall gate
  trips).
* :class:`ProfileStore` — append-only JSONL persistence (one stamped
  ``profile`` record per line), mirroring ``BenchHistory``.

Sample counts are wall-clock samples per thread, so like the ``robust.*``
metrics they are **non-deterministic** — never gate on them, only on the
names they surface.  Worker processes in
:class:`repro.perf.parallel.ParallelEvaluator` run their own sampler and
ship the folded stacks back for :meth:`Profiler.merge_profile`.
"""

from __future__ import annotations

import hashlib
import html
import json
import os
import sys
import threading
import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Any

from repro.schema import parse_line, stamped
from repro.obs.trace import Tracer, add_tracer, remove_tracer

__all__ = [
    "DEFAULT_HZ",
    "DEFAULT_PROFILES",
    "FrameDelta",
    "FrameStat",
    "IDLE_LEAVES",
    "MAX_STACK_DEPTH",
    "Profile",
    "ProfileStore",
    "Profiler",
    "UNATTRIBUTED_STAGE",
    "active_sampler",
    "busy_samples",
    "diff_profiles",
    "flamegraph_svg",
    "folded_lines",
    "format_profile_diff",
    "frame_stats",
    "profile_top_table",
    "reset_after_fork",
    "start_sampler",
    "stop_sampler",
]

#: Default sampling rate.  Prime, so the sampler does not beat against
#: periodic work; ~100 hz keeps armed overhead well under the 5% budget.
DEFAULT_HZ = 97.0

#: Frames deeper than this are truncated (runaway recursion guard).
MAX_STACK_DEPTH = 128

#: Stage label for samples taken while no pipeline span is open.
UNATTRIBUTED_STAGE = "(unattributed)"

#: Default on-disk profile store, next to the run ledger.
DEFAULT_PROFILES = os.path.join(".repro", "profiles.jsonl")


# ``mod:fn`` label per code object, memoized: the same few hundred code
# objects recur every sample, and skipping the per-frame dict lookup +
# string format keeps armed overhead inside the <5% budget.  (A code
# object exec'd under two module dicts keeps its first label — an
# acceptable approximation for profile labels.)
_FRAME_NAMES: dict[Any, str] = {}


def _collapse(frame: Any) -> str:
    """One thread's stack in folded form: ``mod:fn;mod:fn``, root first."""
    parts: list[str] = []
    depth = 0
    while frame is not None and depth < MAX_STACK_DEPTH:
        code = frame.f_code
        name = _FRAME_NAMES.get(code)
        if name is None:
            module = frame.f_globals.get("__name__", "?")
            name = _FRAME_NAMES[code] = f"{module}:{code.co_name}"
        parts.append(name)
        frame = frame.f_back
        depth += 1
    parts.reverse()
    return ";".join(parts)


@dataclass(frozen=True)
class Profile:
    """An immutable aggregate of samples — the ``profile`` record (v10).

    ``folded`` maps collapsed stacks (root-first, ``;``-joined) to sample
    counts; ``stages`` maps pipeline-stage names (from the span seam) to
    the samples taken while that stage was the innermost open span.
    """

    timestamp: float
    hz: float
    duration_s: float
    samples: int
    folded: dict[str, int]
    stages: dict[str, int]
    label: str = ""
    suite: str | None = None

    @property
    def profile_id(self) -> str:
        """Content hash of the sample payload (stable across reload)."""
        payload = json.dumps(
            [self.timestamp, self.hz, self.samples, sorted(self.folded.items())],
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    def as_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "profile_id": self.profile_id,
            "timestamp": self.timestamp,
            "hz": self.hz,
            "duration_s": self.duration_s,
            "samples": self.samples,
            "folded": dict(sorted(self.folded.items())),
            "stages": dict(sorted(self.stages.items())),
            "label": self.label,
            "suite": self.suite,
        }
        return stamped("profile", record)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Profile":
        return cls(
            timestamp=float(data["timestamp"]),
            hz=float(data["hz"]),
            duration_s=float(data["duration_s"]),
            samples=int(data["samples"]),
            folded={str(k): int(v) for k, v in data.get("folded", {}).items()},
            stages={str(k): int(v) for k, v in data.get("stages", {}).items()},
            label=str(data.get("label", "")),
            suite=data.get("suite"),
        )


@dataclass(frozen=True)
class FrameStat:
    """Per-frame sample counts: ``self`` (on top) and ``total`` (on stack)."""

    name: str
    self_samples: int
    total_samples: int


def frame_stats(profile: Profile) -> dict[str, FrameStat]:
    """Per-frame self/total counts over a profile's folded stacks.

    ``self`` counts samples where the frame was the leaf (executing);
    ``total`` counts samples where it appeared anywhere on the stack
    (each stack counts a frame at most once, so recursion does not
    inflate totals past ``profile.samples``).
    """
    selfs: dict[str, int] = {}
    totals: dict[str, int] = {}
    for stack, count in profile.folded.items():
        frames = stack.split(";") if stack else []
        if not frames:
            continue
        leaf = frames[-1]
        selfs[leaf] = selfs.get(leaf, 0) + count
        for name in set(frames):
            totals[name] = totals.get(name, 0) + count
    return {
        name: FrameStat(name, selfs.get(name, 0), totals.get(name, 0))
        for name in totals
    }


#: Leaf frames that mean "blocked, not burning CPU": the stdlib Python
#: wrappers around the C blocking primitives (condition waits, thread
#: joins, selector polls).  ``sys._current_frames()`` is a wall-clock
#: sampler — it sees every thread, parked or not — so consumers that
#: want *busy* time (the ``repro top`` cpu column) subtract these.
#: The flame graph keeps every sample: where threads wait is signal.
IDLE_LEAVES = frozenset(
    {
        "threading:wait",
        "threading:_wait_for_tstate_lock",
        "selectors:select",
        "queue:get",
    }
)


def busy_samples(folded: dict[str, int]) -> int:
    """Samples whose leaf frame is not a known blocking primitive."""
    return sum(
        count
        for stack, count in folded.items()
        if stack.rsplit(";", 1)[-1] not in IDLE_LEAVES
    )


def folded_lines(profile: Profile) -> list[str]:
    """``"stack count"`` lines, the interchange format flame tools read."""
    return [
        f"{stack} {count}"
        for stack, count in sorted(
            profile.folded.items(), key=lambda item: (-item[1], item[0])
        )
    ]


def profile_top_table(profile: Profile, limit: int = 15) -> str:
    """A terminal table of the hottest frames by self samples."""
    stats = sorted(
        frame_stats(profile).values(),
        key=lambda s: (-s.self_samples, -s.total_samples, s.name),
    )[:limit]
    total = max(profile.samples, 1)
    lines = [
        f"profile {profile.profile_id}"
        + (f" suite={profile.suite}" if profile.suite else "")
        + (f" label={profile.label}" if profile.label else ""),
        f"  {profile.samples} sample(s) over {profile.duration_s:.2f}s"
        f" at {profile.hz:g} hz",
        f"  {'self':>6} {'self%':>7} {'total%':>7}  frame",
    ]
    for stat in stats:
        lines.append(
            f"  {stat.self_samples:>6}"
            f" {100.0 * stat.self_samples / total:>6.1f}%"
            f" {100.0 * stat.total_samples / total:>6.1f}%"
            f"  {stat.name}"
        )
    if profile.stages:
        lines.append("  stages:")
        for stage, count in sorted(
            profile.stages.items(), key=lambda item: (-item[1], item[0])
        ):
            lines.append(f"    {count:>6} {100.0 * count / total:>6.1f}%  {stage}")
    return "\n".join(lines)


@dataclass(frozen=True)
class FrameDelta:
    """One frame's change between two profiles, as shares of samples.

    Shares (``self / samples``) rather than raw counts, so profiles with
    different durations or rates compare fairly.
    """

    name: str
    self_share_old: float
    self_share_new: float
    total_share_old: float
    total_share_new: float

    @property
    def self_delta(self) -> float:
        return self.self_share_new - self.self_share_old

    @property
    def total_delta(self) -> float:
        return self.total_share_new - self.total_share_old


def diff_profiles(old: Profile, new: Profile) -> list[FrameDelta]:
    """Per-frame share deltas, most-regressed (self time grew) first."""
    old_stats = frame_stats(old)
    new_stats = frame_stats(new)
    old_total = max(old.samples, 1)
    new_total = max(new.samples, 1)
    deltas = []
    for name in sorted(set(old_stats) | set(new_stats)):
        o = old_stats.get(name)
        n = new_stats.get(name)
        deltas.append(
            FrameDelta(
                name=name,
                self_share_old=(o.self_samples / old_total) if o else 0.0,
                self_share_new=(n.self_samples / new_total) if n else 0.0,
                total_share_old=(o.total_samples / old_total) if o else 0.0,
                total_share_new=(n.total_samples / new_total) if n else 0.0,
            )
        )
    deltas.sort(key=lambda d: (-d.self_delta, -d.total_delta, d.name))
    return deltas


def format_profile_diff(
    old: Profile, new: Profile, limit: int = 10
) -> list[str]:
    """Human-readable diff lines naming the top regressed frames."""
    deltas = diff_profiles(old, new)
    lines = [
        f"profile diff {old.profile_id} -> {new.profile_id}"
        f" ({old.samples} -> {new.samples} samples)"
    ]
    regressed = [d for d in deltas if d.self_delta > 0]
    improved = [d for d in deltas if d.self_delta < 0]
    if regressed:
        top = regressed[0]
        lines.append(
            f"top regressed frame: {top.name}"
            f" (self {100.0 * top.self_share_old:.1f}%"
            f" -> {100.0 * top.self_share_new:.1f}%,"
            f" {100.0 * top.self_delta:+.1f} pt)"
        )
    else:
        lines.append("top regressed frame: none (no frame gained self share)")
    shown = regressed[:limit] + list(reversed(improved[-limit:]))
    if shown:
        lines.append(f"  {'self old':>9} {'self new':>9} {'delta':>8}  frame")
    for d in shown:
        lines.append(
            f"  {100.0 * d.self_share_old:>8.1f}%"
            f" {100.0 * d.self_share_new:>8.1f}%"
            f" {100.0 * d.self_delta:>+7.1f}p"
            f"  {d.name}"
        )
    return lines


class Profiler(Tracer):
    """Daemon-thread sampler over ``sys._current_frames()``.

    Also a :class:`~repro.obs.trace.Tracer`: install it with
    :func:`~repro.obs.trace.add_tracer` and every ``span()`` push/pop
    maintains a per-thread stage stack, so each sample is attributed to
    the innermost open pipeline stage (``stages`` on the profile).

    All counters live behind one lock; :meth:`snapshot` is safe while
    sampling continues (the service serves live profiles this way).
    """

    def __init__(self, hz: float = DEFAULT_HZ) -> None:
        if hz <= 0:
            raise ValueError(f"sampling hz must be positive, got {hz!r}")
        self.hz = float(hz)
        self._interval = 1.0 / self.hz
        self._lock = threading.Lock()
        self._folded: dict[str, int] = {}
        self._stages: dict[str, int] = {}
        self._thread_samples: dict[int, int] = {}
        self._samples = 0
        self._merged_duration = 0.0
        # defaultdict: start() runs on every span of every traced thread,
        # so the per-call cost must stay at one C-level dict hit.
        self._stage_stacks: dict[int, list[str]] = defaultdict(list)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None

    # -- Tracer interface: ride the span seam for stage attribution ----
    def start(self, name: str, attrs: dict[str, Any] | None) -> Any:
        self._stage_stacks[threading.get_ident()].append(name)
        return None

    def finish(self, name: str, token: Any, attrs: dict[str, Any] | None) -> None:
        stack = self._stage_stacks.get(threading.get_ident())
        if stack and stack[-1] == name:
            stack.pop()

    # -- sampling lifecycle --------------------------------------------
    @property
    def sampling(self) -> bool:
        return self._thread is not None

    def start_sampling(self) -> "Profiler":
        if self._thread is not None:
            raise RuntimeError("profiler is already sampling")
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-prof-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop_sampling(self) -> Profile:
        thread = self._thread
        if thread is not None:
            self._stop.set()
            thread.join()
            self._thread = None
        if self._started_at is not None:
            # Freeze the wall clock: snapshots after stop stay constant.
            with self._lock:
                self._merged_duration += time.perf_counter() - self._started_at
            self._started_at = None
        return self.snapshot()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self.sample_once()

    def sample_once(self) -> int:
        """Take one sample of every thread but the sampler's own.

        Called from the sampler thread; also callable directly (tests,
        deterministic one-shot sampling) — then no thread is skipped.
        """
        sampler = self._thread
        skip = sampler.ident if sampler is not None else None
        frames = sys._current_frames()
        with self._lock:
            for tid, frame in frames.items():
                if tid == skip:
                    continue
                stack = self._stage_stacks.get(tid)
                stage = stack[-1] if stack else UNATTRIBUTED_STAGE
                folded = _collapse(frame)
                self._folded[folded] = self._folded.get(folded, 0) + 1
                self._stages[stage] = self._stages.get(stage, 0) + 1
                self._thread_samples[tid] = self._thread_samples.get(tid, 0) + 1
                self._samples += 1
            return self._samples

    # -- aggregates ----------------------------------------------------
    def thread_samples(self, thread_id: int) -> int:
        """Samples attributed so far to one thread (per-request CPU)."""
        with self._lock:
            return self._thread_samples.get(thread_id, 0)

    def merge_profile(self, profile: Profile) -> None:
        """Fold a worker profile's stacks into this sampler's aggregate.

        Used by :class:`repro.perf.parallel.ParallelEvaluator` to merge
        worker-lane samples into the parent profile.  Durations add;
        per-thread counts do not cross the process boundary.
        """
        with self._lock:
            for stack, count in profile.folded.items():
                self._folded[stack] = self._folded.get(stack, 0) + count
            for stage, count in profile.stages.items():
                self._stages[stage] = self._stages.get(stage, 0) + count
            self._samples += profile.samples
            self._merged_duration += profile.duration_s

    def snapshot(self, label: str = "", suite: str | None = None) -> Profile:
        elapsed = 0.0
        if self._started_at is not None:
            elapsed = time.perf_counter() - self._started_at
        with self._lock:
            return Profile(
                timestamp=time.time(),
                hz=self.hz,
                duration_s=elapsed + self._merged_duration,
                samples=self._samples,
                folded=dict(self._folded),
                stages=dict(self._stages),
                label=label,
                suite=suite,
            )


# -- the module-global sampler slot (the one read `span` already pays) --

_SAMPLER: Profiler | None = None


def active_sampler() -> Profiler | None:
    """The process-wide sampler, or ``None`` when profiling is off."""
    return _SAMPLER


def start_sampler(hz: float = DEFAULT_HZ) -> Profiler:
    """Arm the process-wide sampler (replacing any already running)."""
    global _SAMPLER
    stop_sampler()
    sampler = Profiler(hz)
    add_tracer(sampler)  # stage attribution rides the existing span seam
    sampler.start_sampling()
    _SAMPLER = sampler
    return sampler


def stop_sampler() -> Profile | None:
    """Disarm the process-wide sampler; return its final profile."""
    global _SAMPLER
    sampler, _SAMPLER = _SAMPLER, None
    if sampler is None:
        return None
    remove_tracer(sampler)
    return sampler.stop_sampling()


def reset_after_fork() -> None:
    """Detach a fork-inherited sampler (its thread died with the parent).

    Worker processes call this before arming their own sampler, so the
    parent's (dead) sampler neither traces worker spans nor leaks into
    the worker's global slot.
    """
    global _SAMPLER
    sampler, _SAMPLER = _SAMPLER, None
    if sampler is not None:
        remove_tracer(sampler)


# -- persistence -------------------------------------------------------


class ProfileStore:
    """Append-only JSONL store of ``profile`` records (like BenchHistory)."""

    def __init__(self, path: str = DEFAULT_PROFILES) -> None:
        self.path = path

    def append(self, profile: Profile) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(profile.as_dict(), sort_keys=True) + "\n")

    def load(self) -> list[Profile]:
        if not os.path.exists(self.path):
            return []
        profiles = []
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = parse_line(line)
                if record.get("kind") != "profile":
                    continue
                profiles.append(Profile.from_dict(record))
        return profiles

    def get(self, profile_id: str) -> Profile:
        """Look up by id prefix (unique match required)."""
        matches = [
            p for p in self.load() if p.profile_id.startswith(profile_id)
        ]
        if not matches:
            raise KeyError(f"no profile with id {profile_id!r} in {self.path}")
        if len(matches) > 1:
            ids = ", ".join(p.profile_id for p in matches)
            raise KeyError(f"profile id {profile_id!r} is ambiguous: {ids}")
        return matches[0]

    def latest(self, suite: str | None = None) -> Profile | None:
        profiles = self.load()
        if suite is not None:
            profiles = [p for p in profiles if p.suite == suite]
        return profiles[-1] if profiles else None


# -- flame graph -------------------------------------------------------


class _FlameNode:
    __slots__ = ("name", "value", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.children: dict[str, _FlameNode] = {}


def _flame_tree(folded: dict[str, int]) -> _FlameNode:
    root = _FlameNode("all")
    for stack, count in folded.items():
        frames = stack.split(";") if stack else []
        root.value += count
        node = root
        for name in frames:
            child = node.children.get(name)
            if child is None:
                child = node.children[name] = _FlameNode(name)
            child.value += count
    return root


def _flame_color(name: str) -> str:
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    hue = 12 + digest[0] % 38  # warm flame palette
    light = 52 + digest[1] % 14
    return f"hsl({hue},85%,{light}%)"


def flamegraph_svg(
    profile: Profile, title: str = "", width: int = 1080
) -> str:
    """A self-contained SVG flame graph (no JS, no external assets).

    Rows are stack depth (root at the top), box width is the frame's
    share of total samples; every box carries a ``<title>`` tooltip with
    its exact counts, so the file works standalone and inline in the
    dashboards.
    """
    root = _flame_tree(profile.folded)
    total = max(root.value, 1)
    row_h = 17
    top = 26
    min_w = 0.5

    def depth_of(node: _FlameNode) -> int:
        if not node.children:
            return 1
        return 1 + max(depth_of(child) for child in node.children.values())

    rows = depth_of(root)
    height = top + rows * row_h + 6
    boxes: list[str] = []

    def emit(node: _FlameNode, x: float, depth: int) -> None:
        w = width * node.value / total
        if w < min_w:
            return
        y = top + depth * row_h
        pct = 100.0 * node.value / total
        label = html.escape(node.name, quote=True)
        boxes.append(
            f'<g><rect x="{x:.2f}" y="{y}" width="{w:.2f}" height="{row_h - 1}"'
            f' rx="1.5" fill="{_flame_color(node.name)}">'
            f"<title>{label}: {node.value} sample(s), {pct:.1f}%</title></rect>"
        )
        if w >= 44:
            shown = node.name
            max_chars = max(int(w / 6.5), 3)
            if len(shown) > max_chars:
                shown = shown[: max_chars - 1] + "…"
            boxes.append(
                f'<text x="{x + 3:.2f}" y="{y + row_h - 5}"'
                f' font-size="10.5" fill="#1b1b1b">{html.escape(shown)}</text>'
            )
        boxes.append("</g>")
        cx = x
        for child in sorted(
            node.children.values(), key=lambda c: (-c.value, c.name)
        ):
            emit(child, cx, depth + 1)
            cx += width * child.value / total

    emit(root, 0.0, 0)
    heading = title or (
        f"CPU profile {profile.profile_id}"
        + (f" · {profile.suite}" if profile.suite else "")
    )
    sub = (
        f"{profile.samples} sample(s) · {profile.duration_s:.2f}s"
        f" · {profile.hz:g} hz"
    )
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}"'
        f' height="{height}" viewBox="0 0 {width} {height}"'
        f' font-family="system-ui, sans-serif">'
        f'<rect width="{width}" height="{height}" fill="#fdfaf5"/>'
        f'<text x="6" y="16" font-size="12.5" font-weight="600"'
        f' fill="#333">{html.escape(heading)}</text>'
        f'<text x="{width - 6}" y="16" font-size="11" text-anchor="end"'
        f' fill="#777">{html.escape(sub)}</text>'
        + "".join(boxes)
        + "</svg>"
    )
