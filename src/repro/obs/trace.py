"""Hierarchical trace spans for the whole pipeline.

The pipeline marks its stages with the :func:`span` context manager
(``with span("schedule"): ...``).  When no tracer is installed the marker
costs one module-global read — the same discipline as PR 1's
``profiled()`` — so instrumented code is free in production.  When one or
more :class:`Tracer` instances are installed (via :func:`enable_tracing`
or :func:`add_tracer`), every span is reported to each of them.

Two tracer families ship with the package:

* :class:`RecordingTracer` (here) — records every span as a
  :class:`TraceEvent` with nanosecond timestamps, nesting depth and
  process id; the events feed the exporters in :mod:`repro.obs.export`
  (Chrome ``chrome://tracing`` format, JSON-lines journal).
* :class:`repro.perf.StageProfiler` — PR 1's per-stage wall-clock
  accumulator, now just one pluggable ``Tracer`` among others
  (``repro --profile`` keeps working unchanged).

A ``Tracer`` is anything with ``start(name, attrs) -> token`` and
``finish(name, token, attrs)``; exceptions inside a span still finish it.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "RecordingTracer",
    "TraceEvent",
    "Tracer",
    "active_tracers",
    "add_tracer",
    "disable_tracing",
    "enable_tracing",
    "ingest_events",
    "remove_tracer",
    "span",
]


@dataclass
class TraceEvent:
    """One completed span: ``[start_ns, start_ns + duration_ns)``."""

    name: str
    start_ns: int
    duration_ns: int
    depth: int  # nesting level at the time the span opened (0 = root)
    pid: int
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "depth": self.depth,
            "pid": self.pid,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class Tracer:
    """Base tracer: subclasses override :meth:`start` / :meth:`finish`.

    ``start`` returns an opaque token that is handed back to ``finish``;
    the default implementation is a no-op pair, so a subclass may override
    either or both.
    """

    def start(self, name: str, attrs: dict[str, Any] | None) -> Any:  # pragma: no cover
        return None

    def finish(self, name: str, token: Any, attrs: dict[str, Any] | None) -> None:
        """Called when the span closes (even on exceptions)."""


class RecordingTracer(Tracer):
    """Collects every span as a :class:`TraceEvent` for export."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._depth = 0

    def start(self, name: str, attrs: dict[str, Any] | None) -> tuple[int, int]:
        depth = self._depth
        self._depth += 1
        return depth, time.perf_counter_ns()

    def finish(self, name: str, token: tuple[int, int], attrs: dict[str, Any] | None) -> None:
        depth, start_ns = token
        self._depth = depth
        self.events.append(
            TraceEvent(
                name=name,
                start_ns=start_ns,
                duration_ns=time.perf_counter_ns() - start_ns,
                depth=depth,
                pid=os.getpid(),
                attrs=dict(attrs) if attrs else {},
            )
        )

    def add_events(self, events: list[TraceEvent]) -> None:
        """Fold in completed events from elsewhere (a worker process)."""
        self.events.extend(events)

    def clear(self) -> None:
        self.events.clear()
        self._depth = 0


# The active tracers.  A tuple (not a list) so `span` reads one immutable
# snapshot; installation replaces the whole tuple.
_TRACERS: tuple[Tracer, ...] = ()


def add_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer``; spans report to every installed tracer."""
    global _TRACERS
    if tracer not in _TRACERS:
        _TRACERS = _TRACERS + (tracer,)
    return tracer


def remove_tracer(tracer: Tracer) -> None:
    """Uninstall ``tracer`` (a no-op when it is not installed)."""
    global _TRACERS
    _TRACERS = tuple(t for t in _TRACERS if t is not tracer)


def enable_tracing(tracer: Tracer | None = None) -> Tracer:
    """Install ``tracer`` (default: a fresh :class:`RecordingTracer`)."""
    return add_tracer(tracer if tracer is not None else RecordingTracer())


def disable_tracing() -> tuple[Tracer, ...]:
    """Uninstall every tracer; returns the tracers that were active."""
    global _TRACERS
    previous, _TRACERS = _TRACERS, ()
    return previous


def active_tracers() -> tuple[Tracer, ...]:
    return _TRACERS


def ingest_events(events: list[TraceEvent]) -> None:
    """Deliver remotely-collected events (e.g. from a
    :class:`~repro.perf.parallel.ParallelEvaluator` worker) to every
    active tracer that records events."""
    if not events:
        return
    for tracer in _TRACERS:
        add = getattr(tracer, "add_events", None)
        if add is not None:
            add(events)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[None]:
    """Mark a pipeline stage; no-op (one global read) when tracing is off."""
    tracers = _TRACERS
    if not tracers:
        yield
        return
    tokens = [(tracer, tracer.start(name, attrs)) for tracer in tracers]
    try:
        yield
    finally:
        for tracer, token in reversed(tokens):
            tracer.finish(name, token, attrs)
