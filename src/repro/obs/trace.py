"""Hierarchical trace spans for the whole pipeline.

The pipeline marks its stages with the :func:`span` context manager
(``with span("schedule"): ...``).  When no tracer is installed the marker
costs one module-global read — the same discipline as PR 1's
``profiled()`` — so instrumented code is free in production.  When one or
more :class:`Tracer` instances are installed (via :func:`enable_tracing`
or :func:`add_tracer`), every span is reported to each of them.

Two tracer families ship with the package:

* :class:`RecordingTracer` (here) — records every span as a
  :class:`TraceEvent` with nanosecond timestamps, nesting depth and
  process id; the events feed the exporters in :mod:`repro.obs.export`
  (Chrome ``chrome://tracing`` format, JSON-lines journal).
* :class:`repro.perf.StageProfiler` — PR 1's per-stage wall-clock
  accumulator, now just one pluggable ``Tracer`` among others
  (``repro --profile`` keeps working unchanged).

A ``Tracer`` is anything with ``start(name, attrs) -> token`` and
``finish(name, token, attrs)``; exceptions inside a span still finish it.

Alongside the span seam lives the **progress seam** (PR 5): long-running
drivers (:func:`repro.pipeline.evaluate_corpus`,
:class:`repro.perf.parallel.ParallelEvaluator`) report structured
:class:`ProgressEvent` heartbeats — loops/chunks done vs total, retries,
quarantines — through :func:`emit_progress`.  Like spans, the emit costs
one module-global read when no :class:`ProgressSink` is installed.  Three
sinks ship here: :class:`TTYProgressSink` (an in-place ``\\r`` status
line for interactive terminals), :class:`LogProgressSink` (periodic
plain lines — no control characters — for CI/pytest captured output) and
:class:`RecordingProgressSink` (collects events for the JSON-lines
journal; see :func:`repro.obs.export.journal_lines`).
:func:`progress_sink_for` picks the right renderer for a stream.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator, TextIO

from repro.schema import stamped

__all__ = [
    "LogProgressSink",
    "ProgressEvent",
    "ProgressSink",
    "RecordingProgressSink",
    "RecordingTracer",
    "TTYProgressSink",
    "TraceEvent",
    "Tracer",
    "active_progress_sinks",
    "active_tracers",
    "add_progress_sink",
    "add_tracer",
    "context_tracers",
    "disable_tracing",
    "emit_progress",
    "enable_tracing",
    "ingest_events",
    "progress_sink_for",
    "remove_progress_sink",
    "remove_tracer",
    "span",
    "tracer_scope",
]


@dataclass
class TraceEvent:
    """One completed span: ``[start_ns, start_ns + duration_ns)``."""

    name: str
    start_ns: int
    duration_ns: int
    depth: int  # nesting level at the time the span opened (0 = root)
    pid: int
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "depth": self.depth,
            "pid": self.pid,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class Tracer:
    """Base tracer: subclasses override :meth:`start` / :meth:`finish`.

    ``start`` returns an opaque token that is handed back to ``finish``;
    the default implementation is a no-op pair, so a subclass may override
    either or both.
    """

    def start(self, name: str, attrs: dict[str, Any] | None) -> Any:  # pragma: no cover
        return None

    def finish(self, name: str, token: Any, attrs: dict[str, Any] | None) -> None:
        """Called when the span closes (even on exceptions)."""


class RecordingTracer(Tracer):
    """Collects every span as a :class:`TraceEvent` for export."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._depth = 0

    def start(self, name: str, attrs: dict[str, Any] | None) -> tuple[int, int]:
        depth = self._depth
        self._depth += 1
        return depth, time.perf_counter_ns()

    def finish(self, name: str, token: tuple[int, int], attrs: dict[str, Any] | None) -> None:
        depth, start_ns = token
        self._depth = depth
        self.events.append(
            TraceEvent(
                name=name,
                start_ns=start_ns,
                duration_ns=time.perf_counter_ns() - start_ns,
                depth=depth,
                pid=os.getpid(),
                attrs=dict(attrs) if attrs else {},
            )
        )

    def add_events(self, events: list[TraceEvent]) -> None:
        """Fold in completed events from elsewhere (a worker process)."""
        self.events.extend(events)

    def clear(self) -> None:
        self.events.clear()
        self._depth = 0


# The active tracers.  A tuple (not a list) so `span` reads one immutable
# snapshot; installation replaces the whole tuple.
_TRACERS: tuple[Tracer, ...] = ()


def add_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer``; spans report to every installed tracer."""
    global _TRACERS
    if tracer not in _TRACERS:
        _TRACERS = _TRACERS + (tracer,)
    return tracer


def remove_tracer(tracer: Tracer) -> None:
    """Uninstall ``tracer`` (a no-op when it is not installed)."""
    global _TRACERS
    _TRACERS = tuple(t for t in _TRACERS if t is not tracer)


def enable_tracing(tracer: Tracer | None = None) -> Tracer:
    """Install ``tracer`` (default: a fresh :class:`RecordingTracer`)."""
    return add_tracer(tracer if tracer is not None else RecordingTracer())


def disable_tracing() -> tuple[Tracer, ...]:
    """Uninstall every tracer; returns the tracers that were active."""
    global _TRACERS
    previous, _TRACERS = _TRACERS, ()
    return previous


def active_tracers() -> tuple[Tracer, ...]:
    return _TRACERS


# Context-local tracers (PR 8): the service wraps each request's
# evaluation in tracer_scope(), so concurrent handler threads each
# collect their own spans without sharing one global tracer.  _SCOPES
# counts entered scopes process-wide so the disabled span() path stays
# at two module-global reads (no ContextVar lookup until a scope opens).
_CONTEXT_TRACERS: ContextVar[tuple[Tracer, ...]] = ContextVar(
    "repro_obs_tracer_scope", default=()
)
_SCOPES = 0
_SCOPES_LOCK = threading.Lock()


@contextmanager
def tracer_scope(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Report spans to ``tracer`` (default: a fresh
    :class:`RecordingTracer`) for this context only.

    Context-local (:mod:`contextvars`): invisible to other threads, so
    each service request traces into its own collector while any
    globally installed tracers keep seeing everything.  Scopes nest —
    spans report to every tracer on the context stack.
    """
    global _SCOPES
    tracer = tracer if tracer is not None else RecordingTracer()
    token = _CONTEXT_TRACERS.set(_CONTEXT_TRACERS.get() + (tracer,))
    with _SCOPES_LOCK:
        _SCOPES += 1
    try:
        yield tracer
    finally:
        with _SCOPES_LOCK:
            _SCOPES -= 1
        _CONTEXT_TRACERS.reset(token)


def context_tracers() -> tuple[Tracer, ...]:
    """The tracers installed by enclosing :func:`tracer_scope` calls."""
    return _CONTEXT_TRACERS.get()


def ingest_events(events: list[TraceEvent]) -> None:
    """Deliver remotely-collected events (e.g. from a
    :class:`~repro.perf.parallel.ParallelEvaluator` worker) to every
    active tracer that records events."""
    if not events:
        return
    tracers = _TRACERS
    if _SCOPES:
        tracers = tracers + _CONTEXT_TRACERS.get()
    for tracer in tracers:
        add = getattr(tracer, "add_events", None)
        if add is not None:
            add(events)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[None]:
    """Mark a pipeline stage; no-op (two global reads) when tracing is off."""
    tracers = _TRACERS
    if _SCOPES:
        tracers = tracers + _CONTEXT_TRACERS.get()
    if not tracers:
        yield
        return
    tokens = [(tracer, tracer.start(name, attrs)) for tracer in tracers]
    try:
        yield
    finally:
        for tracer, token in reversed(tokens):
            tracer.finish(name, token, attrs)


# -- live progress events (the ProgressSink seam) ------------------------------


@dataclass(frozen=True)
class ProgressEvent:
    """One heartbeat from a long-running driver.

    ``phase`` names the loop that is progressing (``"corpus"`` — loops
    within one corpus; ``"sweep"`` — chunks across a parallel fan-out),
    ``done``/``total`` its position, ``message`` the current work item
    (loop index, chunk, or a "waiting on chunk k" heartbeat while a
    pooled worker is silent — the live view of PR 4's degradation
    ladder).  ``retries``/``quarantined`` carry the cumulative
    degradation counters at emit time.
    """

    phase: str
    done: int
    total: int
    message: str = ""
    retries: int = 0
    quarantined: int = 0
    timestamp: float = field(default_factory=time.time)

    def as_dict(self) -> dict[str, Any]:
        """The journaled v5 ``progress`` line (see :mod:`repro.schema`)."""
        return stamped(
            "progress",
            {
                "phase": self.phase,
                "done": self.done,
                "total": self.total,
                "message": self.message,
                "retries": self.retries,
                "quarantined": self.quarantined,
                "timestamp": self.timestamp,
            },
        )

    def render(self) -> str:
        """One human-readable status line (no control characters)."""
        text = f"[{self.phase}] {self.done}/{self.total}"
        if self.message:
            text += f" {self.message}"
        if self.retries:
            text += f" retries={self.retries}"
        if self.quarantined:
            text += f" quarantined={self.quarantined}"
        return text


class ProgressSink:
    """Receives :class:`ProgressEvent` heartbeats; subclass to render."""

    def emit(self, event: ProgressEvent) -> None:  # pragma: no cover - interface
        """Handle one event (called synchronously on the driver thread)."""

    def close(self) -> None:
        """Flush any partial output (e.g. terminate an in-place line)."""


class RecordingProgressSink(ProgressSink):
    """Collects every event — feeds the JSON-lines journal and tests."""

    def __init__(self) -> None:
        self.events: list[ProgressEvent] = []

    def emit(self, event: ProgressEvent) -> None:
        self.events.append(event)


class TTYProgressSink(ProgressSink):
    """In-place ``\\r`` status line for interactive terminals.

    Events are throttled to ``min_interval`` seconds except for the
    terminal event of a phase (``done == total``), so a tight loop does
    not spend its time repainting.  :meth:`close` ends the line with a
    newline so subsequent output starts clean.
    """

    def __init__(self, stream: TextIO | None = None, min_interval: float = 0.1):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        # None, not 0.0: on a freshly booted clock monotonic() can be
        # below min_interval, and a 0.0 sentinel would throttle the very
        # first event of the run.
        self._last_emit: float | None = None
        self._last_width = 0

    def emit(self, event: ProgressEvent) -> None:
        now = time.monotonic()
        if (
            event.done < event.total
            and self._last_emit is not None
            and now - self._last_emit < self.min_interval
        ):
            return
        self._last_emit = now
        text = event.render()
        pad = " " * max(0, self._last_width - len(text))
        self._last_width = len(text)
        self.stream.write("\r" + text + pad)
        self.stream.flush()

    def close(self) -> None:
        if self._last_width:
            self.stream.write("\n")
            self.stream.flush()
            self._last_width = 0


class LogProgressSink(ProgressSink):
    """Plain full lines for captured/non-TTY output (CI, pytest, pipes).

    Never writes ``\\r`` or any other control character: each rendered
    event is one ordinary ``\\n``-terminated line, throttled to
    ``min_interval`` seconds (terminal events always print) so a long
    sweep logs a heartbeat trail instead of a screenful per loop.
    """

    def __init__(self, stream: TextIO | None = None, min_interval: float = 2.0):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._last_emit: float | None = None

    def emit(self, event: ProgressEvent) -> None:
        now = time.monotonic()
        if (
            event.done < event.total
            and self._last_emit is not None
            and now - self._last_emit < self.min_interval
        ):
            return
        self._last_emit = now
        self.stream.write(event.render() + "\n")
        self.stream.flush()


def progress_sink_for(
    stream: TextIO | None = None, min_interval: float | None = None
) -> ProgressSink:
    """The right renderer for ``stream`` (default ``sys.stderr``).

    A real terminal gets the in-place :class:`TTYProgressSink`; anything
    else — CI logs, pytest capture, a pipe — degrades to
    :class:`LogProgressSink` so captured output stays free of ``\\r``
    spew (the ``--progress`` auto-disable).
    """
    stream = stream if stream is not None else sys.stderr
    try:
        interactive = stream.isatty()
    except (AttributeError, ValueError):
        interactive = False
    if interactive:
        return TTYProgressSink(stream, min_interval if min_interval is not None else 0.1)
    return LogProgressSink(stream, min_interval if min_interval is not None else 2.0)


# Same discipline as _TRACERS: an immutable tuple snapshot, so the hot
# emit path is one global read when no sink is installed.
_PROGRESS_SINKS: tuple[ProgressSink, ...] = ()


def add_progress_sink(sink: ProgressSink) -> ProgressSink:
    """Install ``sink``; events report to every installed sink."""
    global _PROGRESS_SINKS
    if sink not in _PROGRESS_SINKS:
        _PROGRESS_SINKS = _PROGRESS_SINKS + (sink,)
    return sink


def remove_progress_sink(sink: ProgressSink) -> None:
    """Uninstall ``sink`` (a no-op when it is not installed)."""
    global _PROGRESS_SINKS
    _PROGRESS_SINKS = tuple(s for s in _PROGRESS_SINKS if s is not sink)


def active_progress_sinks() -> tuple[ProgressSink, ...]:
    return _PROGRESS_SINKS


def emit_progress(
    phase: str,
    done: int,
    total: int,
    message: str = "",
    retries: int = 0,
    quarantined: int = 0,
) -> None:
    """Report progress; no-op (one global read) when no sink is installed."""
    sinks = _PROGRESS_SINKS
    if not sinks:
        return
    event = ProgressEvent(
        phase=phase,
        done=done,
        total=total,
        message=message,
        retries=retries,
        quarantined=quarantined,
    )
    for sink in sinks:
        sink.emit(event)
