"""Append-only benchmark-regression tracker (``repro bench ...``).

PR 2 made the numbers observable; this module makes them *accountable*.
A :class:`BenchRun` snapshots the repository's headline results — the
Fig. 1–4 walkthrough numbers and the Table 2 Perfect-suite cells — keyed
by git SHA, machine fingerprint and :meth:`repro.options.EvalOptions.
stable_hash`, and appends it to a JSON-lines history file.  Two gates
compare runs:

* **cycle counts** (``t_list``/``t_new``/iteration lengths/spans) are
  pure functions of (loop, machine, options) and must match **exactly**
  — any drift is a behaviour change and fails ``repro bench check``;
* **wall-clock** timings gate on a relative threshold, and only when the
  two runs share a machine fingerprint (comparing seconds across hosts
  is noise, not signal).

The committed baseline lives at ``benchmarks/baselines/
bench_history.jsonl`` and is enforced by ``make bench-check`` and CI
(``.github/workflows/ci.yml``).  Records carry
``schema_version`` (v3) and ``kind: "bench_run"``; see ``docs/api.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import statistics
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.schema import SCHEMA_VERSION

__all__ = [
    "BenchPoint",
    "BenchRun",
    "BenchHistory",
    "DEFAULT_HISTORY",
    "DEFAULT_WALL_TOLERANCE",
    "collect_run",
    "diff_runs",
    "check_run",
    "format_diff",
    "machine_fingerprint",
    "git_sha",
]

#: Where ``repro bench`` reads/writes history unless ``--history`` says else.
DEFAULT_HISTORY = os.path.join("benchmarks", "baselines", "bench_history.jsonl")

#: Allowed relative wall-clock slowdown before ``check`` flags it (50%:
#: generous because suite runtimes are fractions of a second and shared
#: CI machines jitter; cycle counts are the precise gate).
DEFAULT_WALL_TOLERANCE = 0.5

# The paper's Fig. 1(a) loop — the walkthrough micro-benchmark whose
# Fig. 4 schedule numbers (l = 13, spans 13/12 vs 7/LFD, T = 1201 vs 356)
# anchor the "fig" suite.
_FIG1A_SOURCE = """
DO I = 1, 100
  S1: B(I) = A(I-2) + E(I+1)
  S2: G(I-3) = A(I-1) * E(I+2)
  S3: A(I) = B(I) + C(I+3)
ENDDO
"""

_SUITES = ("fig", "perfect", "batch")


def git_sha(cwd: str | None = None) -> str:
    """The checked-out commit, or ``"unknown"`` outside a git repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def machine_fingerprint() -> dict[str, str]:
    """Coarse host identity for the wall-clock gate (not for cycle gates —
    cycle counts must match across every machine)."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


@dataclass(frozen=True)
class BenchPoint:
    """One benchmark cell: a corpus on a machine, both schedulers.

    All fields are exact-gate material: simulated parallel times,
    iteration lengths, and the per-pair Wait→Send spans (summed over the
    corpus' loops so the point stays compact)."""

    name: str
    t_list: int
    t_new: int
    l_list: int
    l_new: int
    spans_list: tuple[int, ...] = ()
    spans_new: tuple[int, ...] = ()

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "t_list": self.t_list,
            "t_new": self.t_new,
            "l_list": self.l_list,
            "l_new": self.l_new,
            "spans_list": list(self.spans_list),
            "spans_new": list(self.spans_new),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BenchPoint":
        return cls(
            name=data["name"],
            t_list=data["t_list"],
            t_new=data["t_new"],
            l_list=data["l_list"],
            l_new=data["l_new"],
            spans_list=tuple(data.get("spans_list", ())),
            spans_new=tuple(data.get("spans_new", ())),
        )


@dataclass(frozen=True)
class BenchRun:
    """One recorded benchmark run (a ``kind: "bench_run"`` JSONL record)."""

    run_id: str
    timestamp: float
    git_sha: str
    suite: str
    n: int
    options_hash: str
    machine: dict[str, str]
    points: tuple[BenchPoint, ...]
    wall_s: float
    #: How many timed repeats ``wall_s`` is the median of (v10; 1 for
    #: records written before the median gate existed).
    wall_repeats: int = 1

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "bench_run",
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "git_sha": self.git_sha,
            "suite": self.suite,
            "n": self.n,
            "options_hash": self.options_hash,
            "machine": self.machine,
            "points": [p.as_dict() for p in self.points],
            "wall_s": self.wall_s,
            "wall_repeats": self.wall_repeats,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BenchRun":
        return cls(
            run_id=data["run_id"],
            timestamp=data["timestamp"],
            git_sha=data["git_sha"],
            suite=data["suite"],
            n=data["n"],
            options_hash=data["options_hash"],
            machine=dict(data["machine"]),
            points=tuple(BenchPoint.from_dict(p) for p in data["points"]),
            wall_s=data["wall_s"],
            wall_repeats=int(data.get("wall_repeats", 1)),
        )

    def summary(self) -> str:
        return (
            f"{self.run_id}  {self.suite:<8s} n={self.n} "
            f"points={len(self.points)} wall={self.wall_s:.3f}s "
            f"sha={self.git_sha[:12]} opts={self.options_hash}"
        )


def _run_id(payload: dict[str, Any]) -> str:
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return digest[:12]


def _spans(evaluation) -> tuple[tuple[int, ...], tuple[int, ...]]:
    pair_ids = [p.pair_id for p in evaluation.compiled.synced.pairs]
    return (
        tuple(evaluation.schedule_list.span(pid) for pid in pair_ids),
        tuple(evaluation.schedule_new.span(pid) for pid in pair_ids),
    )


def _suite_points(suite: str, n: int, options) -> list[BenchPoint]:
    """One timed execution of a suite, as its benchmark points."""
    from repro.pipeline import compile_loop, evaluate_corpus, evaluate_loop
    from repro.sched import figure4_machine, paper_machine

    points: list[BenchPoint] = []
    if suite == "fig":
        compiled = compile_loop(_FIG1A_SOURCE, options)
        evaluation = evaluate_loop(compiled, figure4_machine(), n, options)
        spans_list, spans_new = _spans(evaluation)
        points.append(
            BenchPoint(
                name="fig4@fig4-4issue",
                t_list=evaluation.t_list,
                t_new=evaluation.t_new,
                l_list=evaluation.schedule_list.length,
                l_new=evaluation.schedule_new.length,
                spans_list=spans_list,
                spans_new=spans_new,
            )
        )
    else:
        from repro.workloads import PERFECT_BENCHMARKS, perfect_suite

        loops_by_name = perfect_suite()
        grid = [
            (name, loops_by_name[name], paper_machine(*case))
            for name in PERFECT_BENCHMARKS
            for case in ((2, 1), (2, 2), (4, 1), (4, 2))
        ]
        if suite == "batch":
            from repro.perf import BatchEvaluator

            evaluations = BatchEvaluator().evaluate_corpora(grid, n, options)
        else:
            evaluations = [
                evaluate_corpus(name, loops, machine, n, options)
                for name, loops, machine in grid
            ]
        for (name, _loops, machine), ev in zip(grid, evaluations):
            points.append(
                BenchPoint(
                    name=f"{name}@{machine.name}",
                    t_list=ev.t_list,
                    t_new=ev.t_new,
                    l_list=sum(e.schedule_list.length for e in ev.evaluations),
                    l_new=sum(e.schedule_new.length for e in ev.evaluations),
                    spans_list=tuple(
                        s for e in ev.evaluations for s in _spans(e)[0]
                    ),
                    spans_new=tuple(
                        s for e in ev.evaluations for s in _spans(e)[1]
                    ),
                )
            )
    return points


def collect_run(
    suite: str = "fig",
    n: int = 100,
    options=None,
    now: float | None = None,
    repeats: int = 1,
) -> BenchRun:
    """Run one suite and package the results as a :class:`BenchRun`.

    ``"fig"`` evaluates the paper's Fig. 1(a) walkthrough loop on the
    Fig. 4 machine (fast; the CI smoke gate).  ``"perfect"`` evaluates
    the five Perfect-club corpora on the four Section 4 machines — the
    Table 2 grid, one point per cell.  ``"batch"`` answers the same grid
    through the vectorized :class:`~repro.perf.batch.BatchEvaluator` —
    its points carry the same names and must carry the same values as
    ``"perfect"``'s, so the history doubles as a cross-engine gate.

    ``repeats`` times the suite that many times and records the **median**
    wall clock (``wall_s``; ``wall_repeats`` says how many) — the
    wall-clock gate in :func:`check_run` is noise-sensitive, and a median
    of 3 cuts one-off scheduler hiccups out of CI.  The points always
    come from the first execution (they are cycle-exact and identical
    across repeats by construction).
    """
    from repro.options import EvalOptions

    if suite not in _SUITES:
        raise ValueError(f"unknown suite {suite!r}; use one of {_SUITES}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    options = options if options is not None else EvalOptions()
    walls: list[float] = []
    points: list[BenchPoint] = []
    for repeat in range(repeats):
        started = time.perf_counter()
        result = _suite_points(suite, n, options)
        walls.append(time.perf_counter() - started)
        if repeat == 0:
            points = result
    wall = statistics.median(walls)
    timestamp = time.time() if now is None else now
    payload = {
        "suite": suite,
        "n": n,
        "timestamp": timestamp,
        "points": [p.as_dict() for p in points],
    }
    return BenchRun(
        run_id=_run_id(payload),
        timestamp=timestamp,
        git_sha=git_sha(),
        suite=suite,
        n=n,
        options_hash=options.stable_hash(),
        machine=machine_fingerprint(),
        points=tuple(points),
        wall_s=wall,
        wall_repeats=repeats,
    )


class BenchHistory:
    """The append-only JSONL store behind ``repro bench``."""

    def __init__(self, path: str = DEFAULT_HISTORY) -> None:
        self.path = path

    def append(self, run: BenchRun) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(run.as_dict(), sort_keys=True) + "\n")

    def load(self) -> list[BenchRun]:
        if not os.path.exists(self.path):
            return []
        runs: list[BenchRun] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                if data.get("kind") == "bench_run":
                    runs.append(BenchRun.from_dict(data))
        return runs

    def get(self, run_id: str) -> BenchRun:
        """Look a run up by id (unambiguous prefixes accepted)."""
        matches = [r for r in self.load() if r.run_id.startswith(run_id)]
        if not matches:
            raise KeyError(f"no run {run_id!r} in {self.path}")
        if len({r.run_id for r in matches}) > 1:
            raise KeyError(f"run id prefix {run_id!r} is ambiguous in {self.path}")
        return matches[-1]

    def latest(self, suite: str | None = None) -> BenchRun | None:
        runs = [r for r in self.load() if suite is None or r.suite == suite]
        return runs[-1] if runs else None


@dataclass
class PointDiff:
    """One benchmark point compared across two runs."""

    name: str
    field_deltas: dict[str, tuple[Any, Any]] = field(default_factory=dict)

    @property
    def drifted(self) -> bool:
        return bool(self.field_deltas)


@dataclass
class RunDiff:
    """Cycle-exact comparison of two runs of the same suite."""

    old: BenchRun
    new: BenchRun
    point_diffs: list[PointDiff] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)  # points only in old
    added: list[str] = field(default_factory=list)  # points only in new
    wall_ratio: float | None = None  # new/old, only for same-machine runs

    @property
    def cycle_drift(self) -> bool:
        return bool(self.missing or self.added) or any(
            d.drifted for d in self.point_diffs
        )


def diff_runs(old: BenchRun, new: BenchRun) -> RunDiff:
    """Field-by-field comparison of two runs (cycle gate material)."""
    result = RunDiff(old=old, new=new)
    old_points = {p.name: p for p in old.points}
    new_points = {p.name: p for p in new.points}
    result.missing = sorted(set(old_points) - set(new_points))
    result.added = sorted(set(new_points) - set(old_points))
    for name in sorted(set(old_points) & set(new_points)):
        a, b = old_points[name].as_dict(), new_points[name].as_dict()
        deltas = {
            key: (a[key], b[key]) for key in a if key != "name" and a[key] != b[key]
        }
        if deltas:
            result.point_diffs.append(PointDiff(name=name, field_deltas=deltas))
    if old.machine == new.machine and old.wall_s > 0:
        result.wall_ratio = new.wall_s / old.wall_s
    return result


def format_diff(diff: RunDiff) -> str:
    lines = [
        f"old: {diff.old.summary()}",
        f"new: {diff.new.summary()}",
    ]
    if not diff.cycle_drift:
        lines.append(f"cycle counts: identical across {len(diff.new.points)} point(s)")
    for name in diff.missing:
        lines.append(f"  {name}: MISSING from the new run")
    for name in diff.added:
        lines.append(f"  {name}: added (not in the old run)")
    for pd in diff.point_diffs:
        for key, (a, b) in sorted(pd.field_deltas.items()):
            lines.append(f"  {pd.name}: {key} {a} -> {b}")
    if diff.wall_ratio is not None:
        lines.append(
            f"wall-clock: {diff.old.wall_s:.3f}s -> {diff.new.wall_s:.3f}s "
            f"({diff.wall_ratio:.2f}x, same machine)"
        )
    else:
        lines.append("wall-clock: machines differ, not compared")
    return "\n".join(lines)


def check_run(
    baseline: BenchRun,
    candidate: BenchRun,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
) -> list[str]:
    """Violations of the regression gates, empty when the check passes.

    Cycle counts must match exactly; wall-clock may regress by up to
    ``wall_tolerance`` (relative), and only gates when both runs carry
    the same machine fingerprint.
    """
    violations: list[str] = []
    if baseline.suite != candidate.suite:
        violations.append(
            f"suite mismatch: baseline {baseline.suite!r} vs {candidate.suite!r}"
        )
        return violations
    if baseline.n != candidate.n:
        violations.append(f"n mismatch: baseline {baseline.n} vs {candidate.n}")
        return violations
    if baseline.options_hash != candidate.options_hash:
        violations.append(
            "options mismatch: baseline recorded with "
            f"{baseline.options_hash}, candidate with {candidate.options_hash}"
        )
    diff = diff_runs(baseline, candidate)
    for name in diff.missing:
        violations.append(f"{name}: point missing from the candidate run")
    for name in diff.added:
        violations.append(f"{name}: point not present in the baseline")
    for pd in diff.point_diffs:
        for key, (a, b) in sorted(pd.field_deltas.items()):
            violations.append(f"{pd.name}: {key} drifted {a} -> {b} (exact gate)")
    if diff.wall_ratio is not None and diff.wall_ratio > 1.0 + wall_tolerance:
        violations.append(
            f"wall-clock regressed {diff.wall_ratio:.2f}x "
            f"(> {1.0 + wall_tolerance:.2f}x threshold; "
            f"{baseline.wall_s:.3f}s -> {candidate.wall_s:.3f}s)"
        )
    return violations


def suites(selector: str) -> Iterable[str]:
    """Expand a ``--suite`` argument (``all`` → every suite)."""
    if selector == "all":
        return _SUITES
    if selector not in _SUITES:
        raise ValueError(f"unknown suite {selector!r}; use one of {_SUITES} or 'all'")
    return (selector,)
