"""``repro dash``: the run ledger and bench history as one HTML file.

:func:`build_dashboard` aggregates the two append-only stores this
repository keeps — the :mod:`repro.obs.ledger` run records and the
:mod:`repro.obs.regress` bench history — into a **self-contained** HTML
dashboard: inline CSS, inline SVG charts, a few lines of inline
filtering JS, zero external fetches.  The file can be attached to a bug
report or archived as a CI artifact (``make dash``) and will render
identically forever.

Sections, top to bottom:

* stat tiles — run counts, outcome split, the latest walkthrough
  speedup;
* the regression banner — the two most recent bench runs of each suite
  pushed through :func:`repro.obs.regress.diff_runs`; green when cycle
  counts are identical, red with the drifted fields when not;
* cycle-count and wall-clock trend charts per bench suite (inline SVG
  line charts: baseline list scheduler in blue, the paper's sync-aware
  scheduler in orange);
* the run table — every ledger record, filterable by command, outcome
  and free text;
* per-run detail blocks — deterministic metrics counters, quarantined
  failures, artifact paths, and any recorded ASCII timelines;
* the Fig. 4 walkthrough timelines (:func:`walkthrough_timelines`), so
  the dashboard always carries at least one synchronization timeline
  even when the ledger holds only sweep runs.

Charts follow the house dataviz rules: categorical hues in fixed order
(blue then orange), text in ink tokens never series color, one y-axis,
a legend whenever two series share a plot, hairline gridlines, dark
mode derived via CSS custom properties rather than inverted.
"""

from __future__ import annotations

import html as _html
import json
import time
from typing import Any, Iterable, Sequence

from repro.obs.ledger import RunRecord
from repro.obs.prof import Profile, flamegraph_svg
from repro.obs.regress import BenchRun, diff_runs

__all__ = ["build_dashboard", "build_live_dashboard", "walkthrough_timelines"]

# Categorical palette, fixed assignment: slot 1 (blue) is the baseline
# list scheduler, slot 2 (orange) is the paper's sync-aware scheduler.
# Status colors are reserved for the regression banner and never reused
# as series hues.
_SERIES_LIST = "var(--series-1)"
_SERIES_NEW = "var(--series-2)"

_CSS = """
:root {
  --bg: #fcfcfb; --panel: #ffffff; --ink: #1a1a19; --ink-2: #54524d;
  --ink-muted: #7c7a74; --grid: #e1e0d9; --border: #d8d6cf;
  --series-1: #2a78d6; --series-2: #eb6834;
  --good-bg: #e5f3e5; --good-ink: #0a6b0a; --good: #0ca30c;
  --bad-bg: #fbe7e7; --bad-ink: #8f2424; --bad: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    --bg: #1a1a19; --panel: #242422; --ink: #ecebe6; --ink-2: #b3b1aa;
    --ink-muted: #8c8a83; --grid: #3a3936; --border: #44423e;
    --series-1: #5d9ce3; --series-2: #f08a5e;
    --good-bg: #16301b; --good-ink: #7fd28a; --good: #35b94c;
    --bad-bg: #3a1d1d; --bad-ink: #eb9a9a; --bad: #e06060;
  }
}
* { box-sizing: border-box; }
body { font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
       margin: 0; padding: 1.25rem 1.5rem 3rem; background: var(--bg);
       color: var(--ink); }
h1 { font-size: 1.25rem; margin: 0 0 0.2rem; }
h2 { font-size: 1rem; margin: 2rem 0 0.6rem; }
.sub { color: var(--ink-muted); font-size: 0.8rem; margin-bottom: 1.2rem; }
.tiles { display: flex; flex-wrap: wrap; gap: 0.75rem; }
.tile { background: var(--panel); border: 1px solid var(--border);
        border-radius: 8px; padding: 0.7rem 1rem; min-width: 9rem; }
.tile .v { font-size: 1.5rem; font-weight: 600; }
.tile .k { font-size: 0.72rem; color: var(--ink-muted);
           text-transform: uppercase; letter-spacing: 0.04em; }
.banner { border-radius: 8px; padding: 0.7rem 1rem; margin: 1rem 0;
          font-size: 0.9rem; border: 1px solid var(--border); }
.banner.good { background: var(--good-bg); color: var(--good-ink); }
.banner.bad { background: var(--bad-bg); color: var(--bad-ink); }
.banner .icon { font-weight: 700; margin-right: 0.4rem; }
.banner pre { margin: 0.5rem 0 0; font-size: 0.75rem; overflow-x: auto; }
.chart { background: var(--panel); border: 1px solid var(--border);
         border-radius: 8px; padding: 0.75rem; display: inline-block;
         margin: 0 0.75rem 0.75rem 0; vertical-align: top; }
.chart .t { font-size: 0.82rem; font-weight: 600; margin-bottom: 0.3rem; }
.legend { font-size: 0.75rem; color: var(--ink-2); margin-top: 0.25rem; }
.legend .swatch { display: inline-block; width: 0.7rem; height: 0.7rem;
                  border-radius: 3px; margin: 0 0.3rem 0 0.9rem;
                  vertical-align: -1px; }
.filters { display: flex; gap: 0.6rem; margin: 0.6rem 0; flex-wrap: wrap; }
.filters select, .filters input { background: var(--panel); color: var(--ink);
  border: 1px solid var(--border); border-radius: 6px;
  padding: 0.3rem 0.5rem; font-size: 0.8rem; }
table.runs { border-collapse: collapse; font-size: 0.8rem; width: 100%;
             background: var(--panel); }
table.runs th, table.runs td { border: 1px solid var(--border);
  padding: 0.3rem 0.55rem; text-align: left; }
table.runs th { background: var(--bg); color: var(--ink-2);
  font-size: 0.72rem; text-transform: uppercase; letter-spacing: 0.04em; }
td.mono, .mono { font-family: ui-monospace, Menlo, Consolas, monospace; }
.outcome { padding: 0.05rem 0.45rem; border-radius: 9px; font-size: 0.72rem;
           border: 1px solid var(--border); white-space: nowrap; }
.outcome.ok { background: var(--good-bg); color: var(--good-ink); }
.outcome.notok { background: var(--bad-bg); color: var(--bad-ink); }
details { background: var(--panel); border: 1px solid var(--border);
          border-radius: 8px; padding: 0.4rem 0.8rem; margin: 0.4rem 0; }
details summary { cursor: pointer; font-size: 0.85rem; }
details pre { font-size: 0.72rem; overflow-x: auto; color: var(--ink-2); }
svg text { fill: var(--ink-2); }
.empty { color: var(--ink-muted); font-size: 0.85rem; }
""".strip()

# The run-table filter: three controls in one row above the table, each
# row tagged with data-* attributes the filter reads back.
_JS = """
function applyFilters() {
  const cmd = document.getElementById('f-command').value;
  const out = document.getElementById('f-outcome').value;
  const q = document.getElementById('f-text').value.toLowerCase();
  document.querySelectorAll('tr[data-run]').forEach(function (row) {
    const show = (cmd === 'all' || row.dataset.command === cmd)
      && (out === 'all' || row.dataset.outcome === out)
      && (!q || row.dataset.text.indexOf(q) !== -1);
    row.style.display = show ? '' : 'none';
  });
}
document.querySelectorAll('#f-command,#f-outcome').forEach(
  function (el) { el.addEventListener('change', applyFilters); });
document.getElementById('f-text').addEventListener('input', applyFilters);
""".strip()


def _esc(value: Any) -> str:
    return _html.escape(str(value))


# -- inline SVG line chart -----------------------------------------------------


def _line_chart(
    series: Sequence[tuple[str, str, Sequence[float]]],
    x_labels: Sequence[str],
    width: int = 420,
    height: int = 180,
    y_format: str = "{:g}",
) -> str:
    """A minimal inline-SVG line chart.

    ``series`` is ``(label, css_color, values)`` per line; all series
    share one y-axis (house rule: never a dual axis).  Points carry
    native ``<title>`` tooltips — the right interaction budget for a
    generated, dependency-free artifact.
    """
    pad_l, pad_r, pad_t, pad_b = 46, 10, 8, 22
    plot_w, plot_h = width - pad_l - pad_r, height - pad_t - pad_b
    points = max((len(values) for _, _, values in series), default=0)
    all_values = [v for _, _, values in series for v in values]
    if not all_values or points == 0:
        return '<svg width="120" height="40"><text x="4" y="24" font-size="11">no data</text></svg>'
    lo, hi = min(all_values), max(all_values)
    if lo == hi:  # flat series still deserves a visible band
        lo, hi = lo - 1, hi + 1
    span = hi - lo

    def x(i: int) -> float:
        return pad_l + (plot_w * i / max(points - 1, 1) if points > 1 else plot_w / 2)

    def y(v: float) -> float:
        return pad_t + plot_h * (1 - (v - lo) / span)

    parts = [
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} {height}" '
        'xmlns="http://www.w3.org/2000/svg" role="img">'
    ]
    # hairline gridlines + y tick labels (4 divisions)
    for tick in range(5):
        v = lo + span * tick / 4
        ty = y(v)
        parts.append(
            f'<line x1="{pad_l}" y1="{ty:.1f}" x2="{width - pad_r}" y2="{ty:.1f}" '
            'stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{pad_l - 6}" y="{ty + 3.5:.1f}" font-size="10" '
            f'text-anchor="end">{_esc(y_format.format(v))}</text>'
        )
    # x labels: first and last only (recessive axes; the tooltip has the rest)
    for i in (0, points - 1):
        if 0 <= i < len(x_labels):
            anchor = "start" if i == 0 else "end"
            parts.append(
                f'<text x="{x(i):.1f}" y="{height - 6}" font-size="10" '
                f'text-anchor="{anchor}">{_esc(x_labels[i])}</text>'
            )
    for label, color, values in series:
        if not values:
            continue
        path = " ".join(
            f"{'M' if i == 0 else 'L'}{x(i):.1f},{y(v):.1f}"
            for i, v in enumerate(values)
        )
        parts.append(
            f'<path d="{path}" fill="none" stroke="{color}" stroke-width="2" '
            'stroke-linejoin="round"/>'
        )
        for i, v in enumerate(values):
            tip = x_labels[i] if i < len(x_labels) else f"#{i + 1}"
            parts.append(
                f'<circle cx="{x(i):.1f}" cy="{y(v):.1f}" r="4" fill="{color}">'
                f"<title>{_esc(label)} @ {_esc(tip)}: {_esc(y_format.format(v))}"
                "</title></circle>"
            )
    parts.append("</svg>")
    return "".join(parts)


def _chart_panel(title: str, svg: str, legend: Sequence[tuple[str, str]]) -> str:
    swatches = "".join(
        f'<span class="swatch" style="background:{color}"></span>{_esc(label)}'
        for label, color in legend
    )
    legend_html = f'<div class="legend">{swatches}</div>' if len(legend) >= 2 else ""
    return f'<div class="chart"><div class="t">{_esc(title)}</div>{svg}{legend_html}</div>'


# -- sections ------------------------------------------------------------------


def _stat_tiles(runs: Sequence[RunRecord], bench_runs: Sequence[BenchRun]) -> str:
    ok = sum(1 for r in runs if r.ok)
    quarantined = sum(1 for r in runs if r.outcome == "quarantined")
    failed = len(runs) - ok - quarantined
    tiles = [
        (str(len(runs)), "ledger runs"),
        (str(ok), "ok"),
        (str(quarantined), "quarantined"),
        (str(failed), "failed"),
    ]
    latest_fig = next(
        (b for b in reversed(list(bench_runs)) if b.suite == "fig" and b.points), None
    )
    if latest_fig is not None:
        p = latest_fig.points[0]
        if p.t_new:
            tiles.append((f"{p.t_list / p.t_new:.2f}×", "latest fig speedup"))
    return '<div class="tiles">' + "".join(
        f'<div class="tile"><div class="v">{_esc(v)}</div>'
        f'<div class="k">{_esc(k)}</div></div>'
        for v, k in tiles
    ) + "</div>"


def _regression_banner(bench_runs: Sequence[BenchRun]) -> str:
    """``bench diff`` verdicts for the two latest runs of each suite."""
    by_suite: dict[str, list[BenchRun]] = {}
    for run in bench_runs:
        by_suite.setdefault(run.suite, []).append(run)
    banners = []
    for suite in sorted(by_suite):
        history = by_suite[suite]
        if len(history) < 2:
            continue
        diff = diff_runs(history[-2], history[-1])
        if diff.cycle_drift:
            drifted = [
                f"{pd.name}: {key} {a} -> {b}"
                for pd in diff.point_diffs
                for key, (a, b) in sorted(pd.field_deltas.items())
            ]
            drifted += [f"{name}: missing from latest run" for name in diff.missing]
            drifted += [f"{name}: new point" for name in diff.added]
            banners.append(
                f'<div class="banner bad"><span class="icon">&#10007;</span>'
                f"<strong>REGRESSION</strong> &mdash; suite <code>{_esc(suite)}</code>: "
                f"cycle counts drifted between {_esc(history[-2].run_id)} and "
                f"{_esc(history[-1].run_id)}"
                f"<pre>{_esc(chr(10).join(drifted))}</pre></div>"
            )
        else:
            banners.append(
                f'<div class="banner good"><span class="icon">&#10003;</span>'
                f"<strong>OK</strong> &mdash; suite <code>{_esc(suite)}</code>: "
                f"cycle counts identical across the two latest runs "
                f"({len(diff.new.points)} point(s), "
                f"{_esc(history[-2].run_id)} vs {_esc(history[-1].run_id)})</div>"
            )
    if not banners:
        return (
            '<p class="empty">Fewer than two bench runs per suite &mdash; '
            "no regression verdict yet (run <code>repro bench record</code>).</p>"
        )
    return "".join(banners)


def _trend_charts(bench_runs: Sequence[BenchRun]) -> str:
    by_suite: dict[str, list[BenchRun]] = {}
    for run in bench_runs:
        by_suite.setdefault(run.suite, []).append(run)
    panels = []
    for suite in sorted(by_suite):
        history = by_suite[suite]
        labels = [f"{r.run_id[:6]} ({r.git_sha[:7]})" for r in history]
        t_list = [float(sum(p.t_list for p in r.points)) for r in history]
        t_new = [float(sum(p.t_new for p in r.points)) for r in history]
        panels.append(
            _chart_panel(
                f"suite {suite}: simulated cycles per run",
                _line_chart(
                    [("list scheduler", _SERIES_LIST, t_list),
                     ("sync-aware scheduler", _SERIES_NEW, t_new)],
                    labels,
                ),
                [("list scheduler", _SERIES_LIST),
                 ("sync-aware scheduler", _SERIES_NEW)],
            )
        )
        wall = [r.wall_s for r in history]
        panels.append(
            _chart_panel(
                f"suite {suite}: wall-clock per run (s)",
                _line_chart(
                    [("wall-clock", _SERIES_LIST, wall)], labels, y_format="{:.3f}"
                ),
                [("wall-clock", _SERIES_LIST)],
            )
        )
    if not panels:
        return '<p class="empty">No bench history found.</p>'
    return "".join(panels)


def _outcome_chip(outcome: str) -> str:
    cls = "ok" if outcome == "ok" else "notok"
    icon = "&#10003; " if outcome == "ok" else "&#10007; "
    return f'<span class="outcome {cls}">{icon}{_esc(outcome)}</span>'


def _run_table(runs: Sequence[RunRecord]) -> str:
    if not runs:
        return (
            '<p class="empty">The ledger is empty &mdash; record a run with '
            "<code>repro sweep --ledger .repro/ledger.jsonl</code>.</p>"
        )
    commands = sorted({r.command for r in runs})
    outcomes = sorted({r.outcome for r in runs})
    filters = (
        '<div class="filters">'
        '<select id="f-command"><option value="all">all commands</option>'
        + "".join(f'<option value="{_esc(c)}">{_esc(c)}</option>' for c in commands)
        + "</select>"
        '<select id="f-outcome"><option value="all">all outcomes</option>'
        + "".join(f'<option value="{_esc(o)}">{_esc(o)}</option>' for o in outcomes)
        + "</select>"
        '<input id="f-text" type="search" placeholder="filter: argv, hash, sha&hellip;">'
        "</div>"
    )
    rows = [
        "<tr><th>run</th><th>when</th><th>command</th><th>outcome</th>"
        "<th>wall</th><th>mode</th><th>options</th><th>git</th><th>argv</th></tr>"
    ]
    for record in reversed(list(runs)):  # newest first
        when = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(record.timestamp))
        haystack = " ".join(
            [record.run_id, record.command, record.outcome, record.git_sha,
             record.options_hash or "", record.mode or "", *record.argv]
        ).lower()
        rows.append(
            f'<tr data-run="1" data-command="{_esc(record.command)}" '
            f'data-outcome="{_esc(record.outcome)}" data-text="{_esc(haystack)}">'
            f'<td class="mono"><a href="#run-{_esc(record.run_id)}">'
            f"{_esc(record.run_id)}</a></td>"
            f"<td>{_esc(when)}</td><td>{_esc(record.command)}</td>"
            f"<td>{_outcome_chip(record.outcome)}</td>"
            f"<td>{record.wall_s:.3f}s</td><td>{_esc(record.mode or '&mdash;') if record.mode else '&mdash;'}</td>"
            f'<td class="mono">{_esc(record.options_hash or "&mdash;") if record.options_hash else "&mdash;"}</td>'
            f'<td class="mono">{_esc(record.git_sha[:10])}</td>'
            f'<td class="mono">{_esc(" ".join(record.argv))}</td></tr>'
        )
    return filters + '<table class="runs">' + "".join(rows) + "</table>"


def _run_details(runs: Sequence[RunRecord]) -> str:
    blocks = []
    for record in reversed(list(runs)):
        body = []
        if record.error:
            body.append(f"<p><strong>error:</strong> {_esc(record.error)}</p>")
        if record.failures:
            items = "".join(
                f"<li>{_esc(f.get('kind'))} <code>{_esc(f.get('name'))}"
                f"[{_esc(f.get('index'))}]</code>: {_esc(f.get('error_type'))}: "
                f"{_esc(f.get('message'))}</li>"
                for f in record.failures
            )
            body.append(f"<p><strong>quarantined:</strong></p><ul>{items}</ul>")
        if record.artifacts:
            items = "".join(
                f"<li><code>{_esc(a)}</code></li>" for a in record.artifacts
            )
            body.append(f"<p><strong>artifacts:</strong></p><ul>{items}</ul>")
        deterministic = (record.metrics or {}).get("deterministic", {})
        counters = deterministic.get("counters", {})
        if counters:
            body.append(
                "<p><strong>deterministic counters:</strong></p><pre>"
                + _esc(json.dumps(counters, indent=1, sort_keys=True))
                + "</pre>"
            )
        for label in sorted(record.timelines):
            body.append(
                f"<p><strong>timeline &mdash; {_esc(label)}:</strong></p>"
                f"<pre>{_esc(record.timelines[label])}</pre>"
            )
        if not body:
            body.append('<p class="empty">no extra detail recorded</p>')
        blocks.append(
            f'<details id="run-{_esc(record.run_id)}">'
            f'<summary><span class="mono">{_esc(record.run_id)}</span> '
            f"&mdash; {_esc(record.command)} {_outcome_chip(record.outcome)} "
            f"({record.wall_s:.3f}s)</summary>{''.join(body)}</details>"
        )
    return "".join(blocks)


def walkthrough_timelines(n: int = 8) -> dict[str, str]:
    """The Fig. 4 walkthrough's timelines, generated fresh.

    Keys: ``"sync (list scheduler)"`` / ``"sync (sync-aware scheduler)"``
    (ASCII, :func:`repro.sched.sync_timeline`), ``"execution"`` (ASCII,
    :func:`repro.sched.execution_timeline` for the sync-aware schedule)
    and ``"execution_svg"`` (an inline ``<svg>`` fragment).  Imported at
    function level: ``obs`` must not pull the pipeline in at module
    import time.
    """
    from repro.obs.regress import _FIG1A_SOURCE
    from repro.options import EvalOptions
    from repro.pipeline import compile_loop, evaluate_loop
    from repro.sched import (
        execution_timeline,
        figure4_machine,
        sync_timeline,
        timeline_svg,
    )

    options = EvalOptions()
    compiled = compile_loop(_FIG1A_SOURCE, options)
    evaluation = evaluate_loop(compiled, figure4_machine(), n=100, options=options)
    return {
        "sync (list scheduler)": sync_timeline(evaluation.schedule_list),
        "sync (sync-aware scheduler)": sync_timeline(evaluation.schedule_new),
        "execution": execution_timeline(evaluation.schedule_new, n=n),
        "execution_svg": timeline_svg(evaluation.schedule_new, n=n),
    }


def _walkthrough_section(timelines: dict[str, str] | None) -> str:
    if not timelines:
        return ""
    parts = ['<h2>Fig. 4 walkthrough (generated at dashboard build time)</h2>']
    svg = timelines.get("execution_svg")
    if svg:
        parts.append(
            '<div class="chart"><div class="t">cross-iteration execution '
            "(sync-aware scheduler)</div>" + svg + "</div>"
        )
    for label in sorted(k for k in timelines if k != "execution_svg"):
        parts.append(
            f"<details open><summary>{_esc(label)}</summary>"
            f"<pre>{_esc(timelines[label])}</pre></details>"
        )
    return "".join(parts)


def _profile_section(profiles: Sequence[Profile]) -> str:
    """The latest recorded CPU profile as an inline flame graph, plus
    its stage attribution; empty string when no profile was recorded."""
    if not profiles:
        return ""
    latest = max(profiles, key=lambda p: p.timestamp)
    stage_rows = "".join(
        f'<tr><td>{_esc(stage)}</td><td class="mono">{count}</td>'
        f'<td class="mono">{100.0 * count / max(latest.samples, 1):.1f}%</td></tr>'
        for stage, count in sorted(
            latest.stages.items(), key=lambda item: -item[1]
        )
    )
    stage_table = (
        '<table class="runs"><tr><th>stage</th><th>samples</th><th>share</th>'
        "</tr>" + stage_rows + "</table>"
        if stage_rows
        else '<p class="empty">no stage attribution recorded</p>'
    )
    return (
        "<h2>CPU profile (latest recorded)</h2>"
        f'<p class="sub">profile <code>{_esc(latest.profile_id)}</code>'
        f" &middot; suite {_esc(latest.suite or '-')}"
        f" &middot; {latest.samples} sample(s) at {latest.hz:g} hz</p>"
        f'<div class="chart">{flamegraph_svg(latest)}</div>'
        "<h3>Stage attribution</h3>" + stage_table
    )


def build_dashboard(
    runs: Iterable[RunRecord],
    bench_runs: Iterable[BenchRun] = (),
    walkthrough: dict[str, str] | None = None,
    title: str = "repro dashboard",
    profiles: Sequence[Profile] = (),
) -> str:
    """Render the dashboard; returns the complete HTML document."""
    runs = list(runs)
    bench_runs = list(bench_runs)
    built = time.strftime("%Y-%m-%d %H:%M:%S")
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{_CSS}</style></head>
<body>
<h1>{_esc(title)}</h1>
<p class="sub">built {_esc(built)} &middot; {len(runs)} ledger run(s) &middot;
{len(bench_runs)} bench run(s) &middot; self-contained: no external resources</p>
{_stat_tiles(runs, bench_runs)}
<h2>Regression gate</h2>
{_regression_banner(bench_runs)}
<h2>Bench trends</h2>
{_trend_charts(bench_runs)}
<h2>Run ledger</h2>
{_run_table(runs)}
<h2>Run details</h2>
{_run_details(runs) or '<p class="empty">no runs recorded</p>'}
{_profile_section(profiles)}
{_walkthrough_section(walkthrough)}
<script>{_JS}</script>
</body></html>
"""


# -- the live service dashboard (repro dash --live URL) -------------------------

# Client-side renderer: polls GET /v1/metrics (the server sends
# Access-Control-Allow-Origin so a file:// page may read it), repaints
# the tiles / histograms / flight table, and accumulates a rolling
# latency sparkline from successive polls.  Everything the script
# renders is also rendered server-side into the initial document, so
# the file is a faithful snapshot even with JS disabled (CI artifact).
_LIVE_JS = """
const HISTORY = {p50: [], p95: [], p99: []};
const MAX_POINTS = 120;

function fmtMs(s) { return (s * 1000).toFixed(2) + ' ms'; }

function setTile(id, value) {
  const el = document.getElementById(id);
  if (el) el.textContent = value;
}

function sparkline(values, width, height) {
  if (values.length < 2) return '';
  const hi = Math.max.apply(null, values) || 1;
  const pts = values.map(function (v, i) {
    const x = width * i / (values.length - 1);
    const y = height - 2 - (height - 4) * (v / hi);
    return x.toFixed(1) + ',' + y.toFixed(1);
  }).join(' ');
  return '<svg width="' + width + '" height="' + height + '">' +
    '<polyline points="' + pts + '" fill="none" ' +
    'stroke="var(--series-1)" stroke-width="1.5"/></svg>';
}

function histRows(dist) {
  if (!dist) return '<p class="empty">no samples yet</p>';
  const buckets = dist.buckets || {};
  const keys = Object.keys(buckets);
  const total = dist.count || 1;
  return '<table class="runs">' + keys.map(function (k) {
    const n = buckets[k];
    const pct = 100 * n / total;
    return '<tr><td class="mono">&le; ' + k + '</td>' +
      '<td style="width:60%"><div class="bar" style="width:' +
      pct.toFixed(1) + '%"></div></td><td class="mono">' + n + '</td></tr>';
  }).join('') + '</table>';
}

function flightRows(flight) {
  const recent = (flight && flight.recent) || [];
  if (!recent.length) return '<p class="empty">no requests retained yet</p>';
  let rows = '<tr><th>request</th><th>op</th><th>status</th><th>outcome</th>' +
    '<th>latency</th><th>coalesced</th><th>spans</th><th>error</th></tr>';
  recent.slice().reverse().forEach(function (t) {
    const cls = t.status < 400 ? 'ok' : 'notok';
    rows += '<tr><td class="mono"><a href="' + SOURCE + '/v1/trace/' +
      t.request_id + '">' + t.request_id + '</a></td>' +
      '<td>' + t.op + '</td>' +
      '<td><span class="outcome ' + cls + '">' + t.status + '</span></td>' +
      '<td>' + t.outcome + '</td><td class="mono">' + t.wall_ms + ' ms</td>' +
      '<td>' + t.coalesced + '</td><td>' + t.spans + '</td>' +
      '<td>' + (t.error || '&mdash;') + '</td></tr>';
  });
  return '<table class="runs">' + rows + '</table>';
}

function render(s) {
  const counters = (s.metrics && s.metrics.counters) || {};
  const dists = (s.metrics && s.metrics.distributions) || {};
  const gauges = (s.metrics && s.metrics.gauges) || {};
  const lat = s.latency || {};
  setTile('t-uptime', (s.uptime_s || 0).toFixed(0) + 's');
  setTile('t-requests', counters['service.request.count'] || 0);
  setTile('t-errors', counters['service.request.errors'] || 0);
  setTile('t-inflight', s.inflight || 0);
  const queue = gauges['service.queue.depth'];
  setTile('t-queue', queue ? queue.value : 0);
  setTile('t-shed', counters['service.request.shed'] || 0);
  const breaker = gauges['service.breaker.state'];
  setTile('t-breaker',
    ['closed', 'half-open', 'open'][breaker ? breaker.value : 0] || 'closed');
  setTile('t-p50', fmtMs(lat.p50 || 0));
  setTile('t-p95', fmtMs(lat.p95 || 0));
  setTile('t-p99', fmtMs(lat.p99 || 0));
  ['p50', 'p95', 'p99'].forEach(function (q) {
    HISTORY[q].push((lat[q] || 0) * 1000);
    if (HISTORY[q].length > MAX_POINTS) HISTORY[q].shift();
  });
  document.getElementById('spark-p95').innerHTML =
    sparkline(HISTORY.p95, 220, 36);
  document.getElementById('latency-hist').innerHTML =
    histRows(dists['service.request.latency']);
  document.getElementById('coalesce-hist').innerHTML =
    histRows(dists['service.batch.coalesce_window_occupancy']);
  document.getElementById('flight-table').innerHTML = flightRows(s.flight);
}

async function pollFlame() {
  try {
    const response = await fetch(SOURCE + '/v1/profile?format=svg');
    if (response.ok) {
      document.getElementById('flame').innerHTML = await response.text();
    }
  } catch (err) {
    /* profiling off or service unreachable: keep the static render */
  }
}

async function poll() {
  const status = document.getElementById('live-status');
  try {
    const response = await fetch(SOURCE + '/v1/metrics');
    render(await response.json());
    status.textContent = 'live \\u00b7 polling every ' +
      (REFRESH_MS / 1000) + 's';
    status.className = 'outcome ok';
    pollFlame();
  } catch (err) {
    status.textContent = 'offline: ' + err;
    status.className = 'outcome notok';
  }
}
poll();
setInterval(poll, REFRESH_MS);
""".strip()

_LIVE_CSS = """
.bar { background: var(--series-1); height: 0.8rem; border-radius: 2px;
       min-width: 1px; }
#live-status { margin-left: 0.5rem; }
""".strip()


def _live_hist_table(dist: dict[str, Any] | None) -> str:
    """Server-side render of one fixed-bucket distribution (the JS
    repaints the same structure on every poll)."""
    if not dist:
        return '<p class="empty">no samples yet</p>'
    buckets: dict[str, int] = dist.get("buckets", {})
    total = dist.get("count") or 1
    rows = []
    for key, count in buckets.items():
        pct = 100.0 * count / total
        rows.append(
            f'<tr><td class="mono">&le; {_esc(key)}</td>'
            f'<td style="width:60%"><div class="bar" '
            f'style="width:{pct:.1f}%"></div></td>'
            f'<td class="mono">{count}</td></tr>'
        )
    return '<table class="runs">' + "".join(rows) + "</table>"


def _live_flight_table(flight: dict[str, Any] | None) -> str:
    recent = (flight or {}).get("recent") or []
    if not recent:
        return '<p class="empty">no requests retained yet</p>'
    rows = [
        "<tr><th>request</th><th>op</th><th>status</th><th>outcome</th>"
        "<th>latency</th><th>coalesced</th><th>spans</th><th>error</th></tr>"
    ]
    for trace in reversed(recent):  # newest first
        cls = "ok" if trace.get("status", 0) < 400 else "notok"
        rows.append(
            f'<tr><td class="mono">{_esc(trace.get("request_id"))}</td>'
            f"<td>{_esc(trace.get('op'))}</td>"
            f'<td><span class="outcome {cls}">{_esc(trace.get("status"))}</span></td>'
            f"<td>{_esc(trace.get('outcome'))}</td>"
            f'<td class="mono">{_esc(trace.get("wall_ms"))} ms</td>'
            f"<td>{_esc(trace.get('coalesced'))}</td>"
            f"<td>{_esc(trace.get('spans'))}</td>"
            f"<td>{_esc(trace.get('error') or '&mdash;')}</td></tr>"
        )
    return '<table class="runs">' + "".join(rows) + "</table>"


def build_live_dashboard(
    snapshot: dict[str, Any],
    source: str = "",
    refresh_s: float = 2.0,
    title: str = "repro live service",
    profile_svg: str | None = None,
) -> str:
    """Render the live-service dashboard from one ``/v1/metrics`` snapshot.

    The document is a faithful static render of ``snapshot`` (so the
    file doubles as a point-in-time CI artifact), plus a polling script
    that repaints it from ``source + /v1/metrics`` every ``refresh_s``
    seconds and accumulates a p95 latency sparkline across polls.
    ``source`` is the service base URL (e.g. ``http://127.0.0.1:8757``);
    empty means same-origin.
    """
    counters = snapshot.get("metrics", {}).get("counters", {})
    dists = snapshot.get("metrics", {}).get("distributions", {})
    gauges = snapshot.get("metrics", {}).get("gauges", {})
    latency = snapshot.get("latency", {})
    queue = gauges.get("service.queue.depth", {}).get("value", 0)
    breaker_state = int(gauges.get("service.breaker.state", {}).get("value", 0))
    breaker_names = {0: "closed", 1: "half-open", 2: "open"}
    tiles = [
        ("t-uptime", f"{snapshot.get('uptime_s', 0):.0f}s", "uptime"),
        ("t-requests", str(counters.get("service.request.count", 0)), "workload requests"),
        ("t-errors", str(counters.get("service.request.errors", 0)), "errors"),
        ("t-inflight", str(snapshot.get("inflight", 0)), "in flight"),
        ("t-queue", str(queue), "queue depth"),
        ("t-shed", str(counters.get("service.request.shed", 0)), "shed (429)"),
        ("t-breaker", breaker_names.get(breaker_state, "closed"), "breaker"),
        ("t-p50", f"{latency.get('p50', 0.0) * 1000:.2f} ms", "latency p50"),
        ("t-p95", f"{latency.get('p95', 0.0) * 1000:.2f} ms", "latency p95"),
        ("t-p99", f"{latency.get('p99', 0.0) * 1000:.2f} ms", "latency p99"),
    ]
    tiles_html = '<div class="tiles">' + "".join(
        f'<div class="tile"><div class="v" id="{tile_id}">{_esc(value)}</div>'
        f'<div class="k">{_esc(label)}</div></div>'
        for tile_id, value, label in tiles
    ) + "</div>"
    built = time.strftime("%Y-%m-%d %H:%M:%S")
    config = (
        f"const SOURCE = {json.dumps(source.rstrip('/'))};\n"
        f"const REFRESH_MS = {max(int(refresh_s * 1000), 250)};\n"
    )
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{_CSS}
{_LIVE_CSS}</style></head>
<body>
<h1>{_esc(title)}
<span class="outcome" id="live-status">snapshot of {_esc(built)}</span></h1>
<p class="sub">source {_esc(source or "same origin")} &middot;
schema v{_esc(snapshot.get("schema_version", "?"))} &middot;
polls <code>/v1/metrics</code> every {refresh_s:g}s when served live</p>
{tiles_html}
<h2>Latency p95 over polls</h2>
<div class="chart" id="spark-p95"><span class="empty">collecting&hellip;</span></div>
<h2>Request latency distribution</h2>
<div id="latency-hist">{_live_hist_table(dists.get("service.request.latency"))}</div>
<h2>Coalesce window occupancy</h2>
<div id="coalesce-hist">{_live_hist_table(dists.get("service.batch.coalesce_window_occupancy"))}</div>
<h2>Flight recorder (most recent requests)</h2>
<div id="flight-table">{_live_flight_table(snapshot.get("flight"))}</div>
<h2>CPU flame graph</h2>
<div class="chart" id="flame">{profile_svg if profile_svg else
    '<p class="empty">profiling off &mdash; start the service with '
    '<code>repro serve --profile-hz 97</code> to light this up</p>'}</div>
<script>{config}{_LIVE_JS}</script>
</body></html>
"""
