"""The run ledger: an append-only record of every invocation.

The paper's claims are comparative — Table 2/3 speedups and the
Fig. 4a→4b span reduction only mean something *across* runs — yet until
PR 5 every observability artifact (trace, journal, metrics snapshot,
bench record) was per-invocation.  The ledger is the persistent layer:
one schema-versioned JSONL line (``kind: "run"``, v5) per
``compile``/``simulate``/``sweep``/``fuzz``/``bench`` invocation,
recording

* identity — ``run_id``, timestamp, the command and its argv;
* provenance — :meth:`repro.options.EvalOptions.stable_hash`, git SHA
  and machine fingerprint (both reused from :mod:`repro.obs.regress`);
* outcome — wall time, ``ok`` / ``exit N`` / ``quarantined`` /
  ``deadlock`` / ``error``, the quarantined
  :class:`~repro.robust.harden.FailureRecord`\\ s, and the parallel
  mode actually used (pool vs serial, with the fallback reason and the
  ``min_pool_work`` threshold in force);
* results — the final metrics snapshot (deterministic ``sim.*`` /
  ``sched.*`` aggregates first, so two runs of the same options are
  byte-comparable) plus the paths of emitted artifacts and any embedded
  ASCII timelines.

``repro runs list/show/diff`` query the store; ``repro dash`` aggregates
it with the bench history into a self-contained HTML dashboard
(:mod:`repro.obs.dash`).  Recording is **driver-level and default-off**:
nothing in :mod:`repro.pipeline` writes the ledger implicitly, so the
disabled path costs nothing and report output is byte-identical with or
without a ledger configured.  The CLI arms it with ``--ledger FILE``;
library code uses :func:`record_run`::

    with record_run("sweep", options=EvalOptions(ledger=".repro/ledger.jsonl")) as run:
        evaluate_corpus(...)
        run.add_artifact("results/table2.json")
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from repro.obs.export import metrics_snapshot
from repro.obs.metrics import (
    MetricsRegistry,
    active_metrics,
    count,
    disable_metrics,
    enable_metrics,
)
from repro.obs.regress import git_sha, machine_fingerprint
from repro.schema import dump_line, parse_line, stamped

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.options import EvalOptions
    from repro.robust.harden import FailureRecord

__all__ = [
    "DEFAULT_LEDGER",
    "RunLedger",
    "RunMetricsDiff",
    "RunRecord",
    "RunRecorder",
    "active_recorder",
    "diff_run_metrics",
    "format_run_diff",
    "record_run",
    "unfinished_inflight",
]

#: Where the ledger lives unless ``--ledger`` / ``EvalOptions.ledger``
#: say otherwise.  ``.repro/`` is the repository-local scratch directory
#: (gitignored, like ``.pytest_cache``).
DEFAULT_LEDGER = os.path.join(".repro", "ledger.jsonl")


@dataclass(frozen=True)
class RunRecord:
    """One recorded invocation (a ``kind: "run"`` JSONL line, schema v5)."""

    run_id: str
    timestamp: float
    command: str
    argv: tuple[str, ...]
    options_hash: str | None
    git_sha: str
    machine: dict[str, str]
    wall_s: float
    outcome: str
    error: str | None = None
    mode: str | None = None
    calibration: dict[str, Any] | None = None
    """How the run's ``min_pool_work`` threshold was chosen (source,
    per-eval probe cost, resulting threshold); ``None`` for runs that
    never resolved one.  Recorded by
    :meth:`repro.perf.parallel.ParallelEvaluator._note_mode`."""
    failures: tuple[dict[str, Any], ...] = ()
    metrics: dict[str, Any] | None = None
    artifacts: tuple[str, ...] = ()
    timelines: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    def as_dict(self) -> dict[str, Any]:
        return stamped(
            "run",
            {
                "run_id": self.run_id,
                "timestamp": self.timestamp,
                "command": self.command,
                "argv": list(self.argv),
                "options_hash": self.options_hash,
                "git_sha": self.git_sha,
                "machine": self.machine,
                "wall_s": self.wall_s,
                "outcome": self.outcome,
                "error": self.error,
                "mode": self.mode,
                "calibration": self.calibration,
                "failures": [dict(f) for f in self.failures],
                "metrics": self.metrics,
                "artifacts": list(self.artifacts),
                "timelines": dict(self.timelines),
            },
        )

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunRecord":
        return cls(
            run_id=data["run_id"],
            timestamp=data["timestamp"],
            command=data["command"],
            argv=tuple(data.get("argv", ())),
            options_hash=data.get("options_hash"),
            git_sha=data.get("git_sha", "unknown"),
            machine=dict(data.get("machine", {})),
            wall_s=data.get("wall_s", 0.0),
            outcome=data.get("outcome", "ok"),
            error=data.get("error"),
            mode=data.get("mode"),
            calibration=data.get("calibration"),
            failures=tuple(dict(f) for f in data.get("failures", ())),
            metrics=data.get("metrics"),
            artifacts=tuple(data.get("artifacts", ())),
            timelines=dict(data.get("timelines", {})),
        )

    def summary(self) -> str:
        when = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(self.timestamp))
        opts = self.options_hash or "-"
        return (
            f"{self.run_id}  {when}  {self.command:<9s} {self.outcome:<12s} "
            f"wall={self.wall_s:.3f}s opts={opts} sha={self.git_sha[:12]}"
        )

    def describe(self) -> str:
        """Multi-line detail view (``repro runs show``)."""
        lines = [self.summary()]
        if self.argv:
            lines.append(f"  argv: {' '.join(self.argv)}")
        if self.mode:
            lines.append(f"  mode: {self.mode}")
        if self.calibration:
            parts = ", ".join(f"{k}={v}" for k, v in sorted(self.calibration.items()))
            lines.append(f"  calibration: {parts}")
        if self.error:
            lines.append(f"  error: {self.error}")
        for failure in self.failures:
            lines.append(
                f"  quarantined: {failure.get('kind')} {failure.get('name')!r}"
                f"[{failure.get('index')}] {failure.get('error_type')}: "
                f"{failure.get('message')}"
            )
        for artifact in self.artifacts:
            lines.append(f"  artifact: {artifact}")
        deterministic = (self.metrics or {}).get("deterministic", {})
        counters = deterministic.get("counters", {})
        if counters:
            lines.append(f"  deterministic counters ({len(counters)}):")
            for name in sorted(counters):
                lines.append(f"    {name:<40s} {counters[name]:>12}")
        for label in sorted(self.timelines):
            lines.append(f"  timeline [{label}]:")
            lines.extend("    " + row for row in self.timelines[label].splitlines())
        return "\n".join(lines)


#: Process-level guard for ledger appends.  Concurrent
#: ``ThreadingHTTPServer`` handlers (and any other threads recording
#: runs) all append to JSONL files; serializing the write keeps every
#: line whole — a torn line would be silently dropped by ``load()``.
#: One lock for all ledgers: appends are rare and short, and a per-path
#: registry would itself need a lock.
_APPEND_LOCK = threading.Lock()


class RunLedger:
    """The append-only JSONL store behind ``repro runs`` / ``repro dash``.

    ``durable=True`` fsyncs every append (``--ledger-durable``): the
    record survives a process kill — or a power cut — the moment
    ``append`` returns, at the cost of a disk flush per record.  The
    default stays buffered: a kill can tear the final line, which
    ``load`` recovers from (skip-and-count, ``torn_tail``).
    """

    def __init__(self, path: str = DEFAULT_LEDGER, durable: bool = False) -> None:
        self.path = path
        self.durable = durable
        #: Torn final lines seen by the most recent :meth:`load` — a
        #: process killed mid-append leaves at most one, and exactly the
        #: last one.  Also counted as ``robust.ledger.torn_tail``.
        self.torn_tail = 0

    def append(self, record: RunRecord) -> None:
        line = dump_line(record.as_dict()) + "\n"
        with _APPEND_LOCK:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
                if self.durable:
                    handle.flush()
                    os.fsync(handle.fileno())

    def load(self) -> list[RunRecord]:
        """Every ``run`` record, oldest first; unreadable lines are skipped
        (an append-only log torn mid-write must not sink its readers).

        A torn *tail* — the final line unreadable, the signature of a
        process killed mid-append — is additionally counted in
        :attr:`torn_tail` and the ``robust.ledger.torn_tail`` metric, so
        ``repro serve --recover`` and ``repro runs list`` can say the
        log lost its last write instead of silently shrugging.
        """
        self.torn_tail = 0
        if not os.path.exists(self.path):
            return []
        records: list[RunRecord] = []
        last_was_torn = False
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = parse_line(line)
                except ValueError:
                    last_was_torn = True
                    continue
                last_was_torn = False
                if data.get("kind") == "run":
                    records.append(RunRecord.from_dict(data))
        if last_was_torn:
            self.torn_tail = 1
            count("robust.ledger.torn_tail")
        return records

    def get(self, run_id: str) -> RunRecord:
        """Look a run up by id (unambiguous prefixes accepted)."""
        matches = [r for r in self.load() if r.run_id.startswith(run_id)]
        if not matches:
            raise KeyError(f"no run {run_id!r} in {self.path}")
        if len({r.run_id for r in matches}) > 1:
            raise KeyError(f"run id prefix {run_id!r} is ambiguous in {self.path}")
        return matches[-1]

    def latest(self, command: str | None = None) -> RunRecord | None:
        records = [
            r for r in self.load() if command is None or r.command == command
        ]
        return records[-1] if records else None


def unfinished_inflight(records: Iterable[RunRecord]) -> list[RunRecord]:
    """The ``outcome: "inflight"`` service records never finalized.

    The service journals every admitted submission before evaluation and
    appends a terminal record (sharing the request id in ``argv[-1]``)
    after; an inflight record with no later terminal twin is work a
    killed process accepted but never answered.  ``repro serve
    --recover`` appends ``outcome: "lost"`` finalizers for these;
    ``repro runs list --inflight`` shows them.
    """
    records = list(records)
    finalized: set[str] = set()
    for record in records:
        if (
            record.command.startswith("service")
            and record.outcome != "inflight"
            and record.argv
        ):
            finalized.add(record.argv[-1])
    return [
        record
        for record in records
        if record.outcome == "inflight"
        and record.command.startswith("service")
        and record.argv
        and record.argv[-1] not in finalized
    ]


class RunRecorder:
    """Collects one invocation's provenance and appends it on ``finish``.

    Created by the CLI when ``--ledger`` is passed (or by
    :func:`record_run`).  While the run executes, commands enrich the
    record through :func:`active_recorder` — options hash, parallel mode,
    quarantined failures, artifact paths, ASCII timelines.  If no metrics
    registry is active when the recorder starts, it installs a fresh one
    so the final snapshot is always captured; an already-active registry
    is observed, not replaced.
    """

    def __init__(
        self,
        command: str,
        path: str,
        argv: Iterable[str] = (),
        options: "EvalOptions | None" = None,
    ) -> None:
        self.command = command
        self.path = path
        self.argv = tuple(argv)
        self._options_hash: str | None = None
        self._mode: str | None = None
        self._calibration: dict[str, Any] | None = None
        self._outcome: str | None = None
        self._error: str | None = None
        self._failures: list[dict[str, Any]] = []
        self._artifacts: list[str] = []
        self._timelines: dict[str, str] = {}
        self._timestamp = time.time()
        self._started = time.perf_counter()
        self._finished: RunRecord | None = None
        self._own_registry: MetricsRegistry | None = None
        if active_metrics() is None:
            self._own_registry = enable_metrics()
        if options is not None:
            self.note_options(options)

    # -- enrichment (called by commands mid-run) -----------------------------

    def note_options(self, options: "EvalOptions") -> None:
        self._options_hash = options.stable_hash()

    def note_mode(self, mode: str) -> None:
        self._mode = mode

    def note_calibration(self, calibration: dict[str, Any]) -> None:
        """Record how the run's ``min_pool_work`` threshold was chosen
        (source, per-eval probe cost, resulting threshold)."""
        self._calibration = dict(calibration)

    def note_error(self, outcome: str, error: str) -> None:
        """Pin the outcome (e.g. ``"deadlock"``) with its diagnosis."""
        self._outcome = outcome
        self._error = error

    def note_failures(self, failures: Iterable["FailureRecord"]) -> None:
        self._failures.extend(f.as_dict() for f in failures)

    def add_artifact(self, path: str) -> None:
        self._artifacts.append(path)

    def add_timeline(self, label: str, text: str) -> None:
        self._timelines[label] = text

    # -- completion ----------------------------------------------------------

    def _resolve_outcome(self, outcome: str | None) -> str:
        if self._outcome is not None:  # a command pinned it (e.g. deadlock)
            return self._outcome
        if outcome is not None and outcome != "ok":
            return outcome
        if self._failures:
            return "quarantined"
        return outcome or "ok"

    def finish(self, outcome: str | None = None, error: str | None = None) -> RunRecord:
        """Snapshot metrics, build the record, append it to the ledger.

        Idempotent: a second ``finish`` returns the first record without
        appending again (the CLI's exception path and its normal path
        may both reach it).
        """
        if self._finished is not None:
            return self._finished
        wall = time.perf_counter() - self._started
        registry = (
            self._own_registry if self._own_registry is not None else active_metrics()
        )
        if self._own_registry is not None and active_metrics() is self._own_registry:
            disable_metrics()
        snapshot = metrics_snapshot(registry) if registry is not None else None
        payload = {
            "command": self.command,
            "argv": list(self.argv),
            "timestamp": self._timestamp,
            "options_hash": self._options_hash,
            "outcome": self._resolve_outcome(outcome),
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()
        record = RunRecord(
            run_id=digest[:12],
            timestamp=self._timestamp,
            command=self.command,
            argv=self.argv,
            options_hash=self._options_hash,
            git_sha=git_sha(),
            machine=machine_fingerprint(),
            wall_s=wall,
            outcome=self._resolve_outcome(outcome),
            error=self._error if self._error is not None else error,
            mode=self._mode,
            calibration=self._calibration,
            failures=tuple(self._failures),
            metrics=snapshot,
            artifacts=tuple(self._artifacts),
            timelines=dict(self._timelines),
        )
        RunLedger(self.path).append(record)
        self._finished = record
        return record


# The recorder of the invocation in flight, if any — commands enrich it
# without threading it through every signature.
_ACTIVE_RECORDER: RunRecorder | None = None


def active_recorder() -> RunRecorder | None:
    return _ACTIVE_RECORDER


def _set_recorder(recorder: RunRecorder | None) -> None:
    global _ACTIVE_RECORDER
    _ACTIVE_RECORDER = recorder


@contextmanager
def record_run(
    command: str,
    options: "EvalOptions | None" = None,
    path: str | None = None,
    argv: Iterable[str] = (),
) -> Iterator[RunRecorder | None]:
    """Record one invocation when a ledger is configured; no-op otherwise.

    ``path`` (or ``options.ledger``) selects the store — when both are
    ``None`` the scope yields ``None`` and records nothing, which is the
    zero-overhead default.  An exception inside the scope is recorded
    (``outcome: "error"`` with the exception text) and re-raised.
    """
    ledger_path = path if path is not None else (options.ledger if options else None)
    if not ledger_path:
        yield None
        return
    recorder = RunRecorder(command, ledger_path, argv=argv, options=options)
    _set_recorder(recorder)
    try:
        yield recorder
    except BaseException as err:
        recorder.finish("error", f"{type(err).__name__}: {err}")
        raise
    else:
        recorder.finish()
    finally:
        _set_recorder(None)


# -- run-to-run metrics diff (repro runs diff) ---------------------------------


@dataclass
class RunMetricsDiff:
    """Two runs' metrics snapshots compared name by name."""

    old: RunRecord
    new: RunRecord
    deterministic_only: bool = True
    counter_deltas: dict[str, tuple[Any, Any]] = field(default_factory=dict)
    histogram_deltas: dict[str, tuple[Any, Any]] = field(default_factory=dict)
    compared: int = 0

    @property
    def identical(self) -> bool:
        return not self.counter_deltas and not self.histogram_deltas

    @property
    def comparable(self) -> bool:
        return self.old.metrics is not None and self.new.metrics is not None


def _metrics_block(record: RunRecord, deterministic_only: bool) -> dict[str, Any]:
    snapshot = record.metrics or {}
    return snapshot.get("deterministic" if deterministic_only else "all", {}) or {}


def diff_run_metrics(
    old: RunRecord, new: RunRecord, deterministic_only: bool = True
) -> RunMetricsDiff:
    """Compare two runs' final metrics snapshots.

    By default only the deterministic ``sim.*``/``sched.*`` namespaces
    are compared — those are pure functions of (corpus, machine,
    options), so two runs with the same
    :meth:`~repro.options.EvalOptions.stable_hash` must match exactly;
    any delta is a behaviour change.  ``deterministic_only=False``
    widens the diff to every namespace (cache warmth, pool partitioning,
    robustness counters — legitimately run-dependent).
    """
    diff = RunMetricsDiff(old=old, new=new, deterministic_only=deterministic_only)
    if not diff.comparable:
        return diff
    block_a = _metrics_block(old, deterministic_only)
    block_b = _metrics_block(new, deterministic_only)
    for store in ("counters", "histograms"):
        a = block_a.get(store, {})
        b = block_b.get(store, {})
        deltas = (
            diff.counter_deltas if store == "counters" else diff.histogram_deltas
        )
        for name in sorted(set(a) | set(b)):
            diff.compared += 1
            if a.get(name) != b.get(name):
                deltas[name] = (a.get(name), b.get(name))
    return diff


def format_run_diff(diff: RunMetricsDiff) -> str:
    """Side-by-side rendering of a :class:`RunMetricsDiff`."""
    lines = [f"old: {diff.old.summary()}", f"new: {diff.new.summary()}"]
    same_options = (
        diff.old.options_hash is not None
        and diff.old.options_hash == diff.new.options_hash
    )
    scope = "deterministic" if diff.deterministic_only else "all"
    if not diff.comparable:
        missing = [r.run_id for r in (diff.old, diff.new) if r.metrics is None]
        lines.append(f"metrics: not recorded for run(s) {', '.join(missing)}")
        return "\n".join(lines)
    if diff.identical:
        lines.append(
            f"{scope} metrics: identical across {diff.compared} name(s)"
            + (" (same options hash, as required)" if same_options else "")
        )
    else:
        if same_options:
            lines.append(
                f"{scope} metrics: DRIFT despite identical options hash "
                f"{diff.old.options_hash} — a behaviour change:"
            )
        else:
            lines.append(f"{scope} metrics: {len(diff.counter_deltas) + len(diff.histogram_deltas)} name(s) differ:")
        width = max(
            (len(n) for n in (*diff.counter_deltas, *diff.histogram_deltas)),
            default=0,
        )
        for name, (a, b) in sorted(diff.counter_deltas.items()):
            lines.append(f"  {name:<{width}}  {a!r:>14} -> {b!r}")
        for name, (a, b) in sorted(diff.histogram_deltas.items()):
            a_sum = (a or {}).get("sum") if isinstance(a, dict) else a
            b_sum = (b or {}).get("sum") if isinstance(b, dict) else b
            lines.append(f"  {name:<{width}}  sum {a_sum!r} -> {b_sum!r}")
    if diff.old.wall_s > 0:
        lines.append(
            f"wall-clock: {diff.old.wall_s:.3f}s -> {diff.new.wall_s:.3f}s "
            f"({diff.new.wall_s / diff.old.wall_s:.2f}x)"
        )
    return "\n".join(lines)
