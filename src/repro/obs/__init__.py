"""Pipeline-wide observability: trace spans, metrics, exporters.

The pipeline is instrumented with two kinds of markers, both free when
disabled (one module-global read):

* :func:`span` — hierarchical trace spans (``compile`` → ``schedule`` →
  ...) emitted by :mod:`repro.pipeline`, both schedulers, the simulator
  and the :mod:`repro.perf` layer.  Any number of :class:`Tracer`\\ s can
  subscribe; :class:`RecordingTracer` collects :class:`TraceEvent`\\ s for
  the exporters, and :class:`repro.perf.StageProfiler` (PR 1's profiler)
  is now just another pluggable tracer.
* :func:`count` / :func:`observe` — counters and histograms on the
  active :class:`MetricsRegistry`: wait-stall cycles per sync pair,
  Wait→Send spans ``i − j``, run-time LBD vs LFD pair counts, ready-list
  lengths, cache hit/miss, fast-path vs event-walk dispatch.  Registries
  merge deterministically across :class:`~repro.perf.parallel.
  ParallelEvaluator` workers.

Exporters (:mod:`repro.obs.export`): Chrome ``chrome://tracing`` trace
files (``repro --trace-out FILE``), a JSON-lines event journal
(``repro --journal-out FILE``) and the metrics snapshot embedded in
:mod:`repro.report` records and printed by ``repro metrics``.  See
``docs/observability.md`` for the guided tour.
"""

from repro.obs.export import (
    chrome_trace,
    journal_lines,
    metrics_snapshot,
    write_chrome_trace,
    write_journal,
)
from repro.obs.metrics import (
    DETERMINISTIC_NAMESPACES,
    MetricsRegistry,
    active_metrics,
    count,
    disable_metrics,
    enable_metrics,
    observe,
)
from repro.obs.trace import (
    RecordingTracer,
    TraceEvent,
    Tracer,
    active_tracers,
    add_tracer,
    disable_tracing,
    enable_tracing,
    ingest_events,
    remove_tracer,
    span,
)

__all__ = [
    "DETERMINISTIC_NAMESPACES",
    "MetricsRegistry",
    "RecordingTracer",
    "TraceEvent",
    "Tracer",
    "active_metrics",
    "active_tracers",
    "add_tracer",
    "chrome_trace",
    "count",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "ingest_events",
    "journal_lines",
    "metrics_snapshot",
    "observe",
    "remove_tracer",
    "span",
    "write_chrome_trace",
    "write_journal",
]
