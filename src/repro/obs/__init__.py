"""Pipeline-wide observability: trace spans, metrics, exporters.

The pipeline is instrumented with two kinds of markers, both free when
disabled (one module-global read):

* :func:`span` — hierarchical trace spans (``compile`` → ``schedule`` →
  ...) emitted by :mod:`repro.pipeline`, both schedulers, the simulator
  and the :mod:`repro.perf` layer.  Any number of :class:`Tracer`\\ s can
  subscribe; :class:`RecordingTracer` collects :class:`TraceEvent`\\ s for
  the exporters, and :class:`repro.perf.StageProfiler` (PR 1's profiler)
  is now just another pluggable tracer.
* :func:`count` / :func:`observe` — counters and histograms on the
  active :class:`MetricsRegistry`: wait-stall cycles per sync pair,
  Wait→Send spans ``i − j``, run-time LBD vs LFD pair counts, ready-list
  lengths, cache hit/miss, fast-path vs event-walk dispatch.  Registries
  merge deterministically across :class:`~repro.perf.parallel.
  ParallelEvaluator` workers.

Both seams also have **context-local scopes** (:func:`tracer_scope`,
:func:`metrics_scope`, built on ``contextvars``) so concurrent threads —
the service's handler threads, its batcher — can each collect their own
request's spans and metrics without sharing one global collector; the
disabled cost stays two module-global reads.

Exporters (:mod:`repro.obs.export`): Chrome ``chrome://tracing`` trace
files (``repro --trace-out FILE``), a JSON-lines event journal
(``repro --journal-out FILE``) and the metrics snapshot embedded in
:mod:`repro.report` records and printed by ``repro metrics``.  See
``docs/observability.md`` for the guided tour.

Two sibling subsystems build on this foundation:

* :mod:`repro.obs.explain` — decision provenance: a
  :class:`DecisionJournal` records *why* each instruction was placed
  where it was and *which* producer send each stalled iteration waited
  on; ``repro explain`` renders the answers.
* :mod:`repro.obs.regress` — the benchmark-regression tracker behind
  ``repro bench record / diff / check``: an append-only JSONL history
  with an exact gate on cycle counts and a threshold gate on wall-clock.
* :mod:`repro.obs.ledger` — the run ledger behind ``repro runs`` and
  ``--ledger``: one schema-versioned JSONL record per invocation
  (options hash, git SHA, machine, wall time, outcome, quarantined
  failures, final metrics snapshot, artifacts).
* :mod:`repro.obs.dash` — ``repro dash``: the ledger plus the bench
  history rendered as one self-contained HTML dashboard.
* :mod:`repro.obs.prof` — the continuous sampling profiler behind
  ``repro prof record / top / diff`` and ``repro serve --profile-hz``:
  a daemon thread samples every thread's stack, aggregates collapsed
  stacks into schema-stamped profiles, attributes samples to pipeline
  stages via the span seam, and renders inline SVG flame graphs.

Live progress rides the same module-global seam as tracing: the
pipeline calls :func:`emit_progress`, and an installed
:class:`ProgressSink` (in-place TTY status line, plain log lines, or the
recording sink that feeds ``--journal-out``) renders the heartbeat.
"""

from repro.obs.dash import build_dashboard, build_live_dashboard, walkthrough_timelines
from repro.obs.explain import (
    Decision,
    DecisionJournal,
    StallLink,
    active_journal,
    disable_journal,
    enable_journal,
    explain_op,
    explain_pair,
    explain_summary,
    journal_scope,
    pair_span_bound,
)
from repro.obs.export import (
    chrome_trace,
    journal_lines,
    metrics_snapshot,
    prometheus_text,
    write_chrome_trace,
    write_journal,
)
from repro.obs.ledger import (
    DEFAULT_LEDGER,
    RunLedger,
    RunRecord,
    RunRecorder,
    active_recorder,
    diff_run_metrics,
    format_run_diff,
    record_run,
)
from repro.obs.prof import (
    FrameDelta,
    FrameStat,
    Profile,
    ProfileStore,
    Profiler,
    active_sampler,
    busy_samples,
    diff_profiles,
    flamegraph_svg,
    folded_lines,
    format_profile_diff,
    frame_stats,
    profile_top_table,
    start_sampler,
    stop_sampler,
)
from repro.obs.regress import (
    BenchHistory,
    BenchPoint,
    BenchRun,
    check_run,
    collect_run,
    diff_runs,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    DETERMINISTIC_NAMESPACES,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_metrics,
    context_metrics,
    count,
    disable_metrics,
    enable_metrics,
    metrics_scope,
    observe,
    percentile,
    record_value,
    set_gauge,
)
from repro.obs.trace import (
    LogProgressSink,
    ProgressEvent,
    ProgressSink,
    RecordingProgressSink,
    RecordingTracer,
    TTYProgressSink,
    TraceEvent,
    Tracer,
    active_progress_sinks,
    active_tracers,
    add_progress_sink,
    add_tracer,
    context_tracers,
    disable_tracing,
    emit_progress,
    enable_tracing,
    ingest_events,
    progress_sink_for,
    remove_progress_sink,
    remove_tracer,
    span,
    tracer_scope,
)

__all__ = [
    "BenchHistory",
    "BenchPoint",
    "BenchRun",
    "DEFAULT_LATENCY_BOUNDS",
    "DEFAULT_LEDGER",
    "DETERMINISTIC_NAMESPACES",
    "Decision",
    "DecisionJournal",
    "FrameDelta",
    "FrameStat",
    "Gauge",
    "Histogram",
    "LogProgressSink",
    "MetricsRegistry",
    "Profile",
    "ProfileStore",
    "Profiler",
    "ProgressEvent",
    "ProgressSink",
    "RecordingProgressSink",
    "RecordingTracer",
    "RunLedger",
    "RunRecord",
    "RunRecorder",
    "StallLink",
    "TTYProgressSink",
    "TraceEvent",
    "Tracer",
    "active_journal",
    "active_metrics",
    "active_progress_sinks",
    "active_recorder",
    "active_sampler",
    "active_tracers",
    "add_progress_sink",
    "add_tracer",
    "build_dashboard",
    "build_live_dashboard",
    "busy_samples",
    "check_run",
    "chrome_trace",
    "collect_run",
    "context_metrics",
    "context_tracers",
    "count",
    "diff_profiles",
    "diff_run_metrics",
    "diff_runs",
    "disable_journal",
    "disable_metrics",
    "disable_tracing",
    "emit_progress",
    "enable_journal",
    "enable_metrics",
    "enable_tracing",
    "explain_op",
    "explain_pair",
    "explain_summary",
    "flamegraph_svg",
    "folded_lines",
    "format_profile_diff",
    "format_run_diff",
    "frame_stats",
    "ingest_events",
    "journal_lines",
    "journal_scope",
    "metrics_scope",
    "metrics_snapshot",
    "observe",
    "pair_span_bound",
    "percentile",
    "profile_top_table",
    "progress_sink_for",
    "prometheus_text",
    "record_run",
    "record_value",
    "remove_progress_sink",
    "remove_tracer",
    "set_gauge",
    "span",
    "start_sampler",
    "stop_sampler",
    "tracer_scope",
    "walkthrough_timelines",
    "write_chrome_trace",
    "write_journal",
]
