"""Pipeline-wide observability: trace spans, metrics, exporters.

The pipeline is instrumented with two kinds of markers, both free when
disabled (one module-global read):

* :func:`span` — hierarchical trace spans (``compile`` → ``schedule`` →
  ...) emitted by :mod:`repro.pipeline`, both schedulers, the simulator
  and the :mod:`repro.perf` layer.  Any number of :class:`Tracer`\\ s can
  subscribe; :class:`RecordingTracer` collects :class:`TraceEvent`\\ s for
  the exporters, and :class:`repro.perf.StageProfiler` (PR 1's profiler)
  is now just another pluggable tracer.
* :func:`count` / :func:`observe` — counters and histograms on the
  active :class:`MetricsRegistry`: wait-stall cycles per sync pair,
  Wait→Send spans ``i − j``, run-time LBD vs LFD pair counts, ready-list
  lengths, cache hit/miss, fast-path vs event-walk dispatch.  Registries
  merge deterministically across :class:`~repro.perf.parallel.
  ParallelEvaluator` workers.

Exporters (:mod:`repro.obs.export`): Chrome ``chrome://tracing`` trace
files (``repro --trace-out FILE``), a JSON-lines event journal
(``repro --journal-out FILE``) and the metrics snapshot embedded in
:mod:`repro.report` records and printed by ``repro metrics``.  See
``docs/observability.md`` for the guided tour.

Two sibling subsystems build on this foundation:

* :mod:`repro.obs.explain` — decision provenance: a
  :class:`DecisionJournal` records *why* each instruction was placed
  where it was and *which* producer send each stalled iteration waited
  on; ``repro explain`` renders the answers.
* :mod:`repro.obs.regress` — the benchmark-regression tracker behind
  ``repro bench record / diff / check``: an append-only JSONL history
  with an exact gate on cycle counts and a threshold gate on wall-clock.
"""

from repro.obs.explain import (
    Decision,
    DecisionJournal,
    StallLink,
    active_journal,
    disable_journal,
    enable_journal,
    explain_op,
    explain_pair,
    explain_summary,
    journal_scope,
    pair_span_bound,
)
from repro.obs.export import (
    chrome_trace,
    journal_lines,
    metrics_snapshot,
    write_chrome_trace,
    write_journal,
)
from repro.obs.regress import (
    BenchHistory,
    BenchPoint,
    BenchRun,
    check_run,
    collect_run,
    diff_runs,
)
from repro.obs.metrics import (
    DETERMINISTIC_NAMESPACES,
    MetricsRegistry,
    active_metrics,
    count,
    disable_metrics,
    enable_metrics,
    observe,
)
from repro.obs.trace import (
    RecordingTracer,
    TraceEvent,
    Tracer,
    active_tracers,
    add_tracer,
    disable_tracing,
    enable_tracing,
    ingest_events,
    remove_tracer,
    span,
)

__all__ = [
    "BenchHistory",
    "BenchPoint",
    "BenchRun",
    "DETERMINISTIC_NAMESPACES",
    "Decision",
    "DecisionJournal",
    "MetricsRegistry",
    "RecordingTracer",
    "StallLink",
    "TraceEvent",
    "Tracer",
    "active_journal",
    "active_metrics",
    "active_tracers",
    "add_tracer",
    "check_run",
    "chrome_trace",
    "collect_run",
    "count",
    "diff_runs",
    "disable_journal",
    "disable_metrics",
    "disable_tracing",
    "enable_journal",
    "enable_metrics",
    "enable_tracing",
    "explain_op",
    "explain_pair",
    "explain_summary",
    "ingest_events",
    "journal_lines",
    "journal_scope",
    "metrics_snapshot",
    "observe",
    "pair_span_bound",
    "remove_tracer",
    "span",
    "write_chrome_trace",
    "write_journal",
]
