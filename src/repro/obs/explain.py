"""Decision provenance: *why* every instruction sits where it does.

PR 2's metrics say *what* happened (a Wait→Send span of 12, 1188 stall
cycles on pair 1); this module records *why*.  Three record kinds:

* :class:`Decision` — one per placed instruction, emitted by both
  schedulers: the cycle chosen, the dependence-ready cycle, the
  scheduler phase and placement rule that chose it, the critical
  predecessor that gated it, the resource delay it absorbed, the sync
  rule bound that constrained it, and (for the list scheduler) the
  competing candidates it was prioritized against.
* :class:`StallLink` — one per stalled Wait in the DOACROSS simulation:
  iteration ``k`` stalled ``s`` cycles at pair ``p``'s wait because
  iteration ``k − d`` issued the paired send at absolute cycle ``a``.
  Both the event walk and the analytic fast path emit **identical**
  chains (the closed form materializes the same links), so explain
  output never depends on the dispatch strategy.
* :class:`DecisionJournal` — the append-only collector.  Like tracers
  and metrics registries, recording costs **one module-global read when
  no journal is installed**, so instrumented schedulers and simulators
  are exactly as fast as before in production.

The query half (:func:`explain_op`, :func:`explain_pair`,
:func:`explain_summary`) walks a journal back to the source statements
and renders the answers ``repro explain`` prints — e.g. for the paper's
Fig. 4(a) it names the greedy list-scheduler decision that hoisted
``Wait_Signal`` 12 cycles ahead of its send, and for Fig. 4(b) it shows
the span restored to the synchronization-path dependence bound.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.schema import SCHEMA_VERSION

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.dfg.graph import DataFlowGraph
    from repro.sched.schedule import Schedule
    from repro.sim.multiproc import SimulationResult

__all__ = [
    "Decision",
    "DecisionJournal",
    "StallLink",
    "active_journal",
    "disable_journal",
    "enable_journal",
    "explain_op",
    "explain_pair",
    "explain_summary",
    "journal_scope",
    "pair_span_bound",
]


@dataclass(frozen=True)
class Decision:
    """Why one instruction was placed at one cycle.

    ``ready_cycle`` is the earliest dependence-legal issue cycle at
    placement time; ``min_cycle`` is the synchronization-rule lower bound
    actually applied (e.g. "a wait goes after its already-placed send");
    ``resource_delay`` is how many cycles busy resources pushed the
    instruction past ``max(ready_cycle, min_cycle)``.  ``rule`` names the
    placement rule (``greedy``, ``sp_contiguous``, ``sp_ancestor_alap``,
    ``send_deadline``, ``wait_after_send``, ``lfd_send_hoist``,
    ``asap``); ``phase`` names the scheduler phase that ran it.
    """

    scheduler: str
    iid: int
    cycle: int
    phase: str
    rule: str
    ready_cycle: int
    min_cycle: int = 1
    resource_delay: int = 0
    critical_pred: int | None = None
    pair_id: int | None = None
    competing: tuple[int, ...] = ()
    note: str = ""

    def as_dict(self) -> dict[str, Any]:
        return {
            "scheduler": self.scheduler,
            "iid": self.iid,
            "cycle": self.cycle,
            "phase": self.phase,
            "rule": self.rule,
            "ready_cycle": self.ready_cycle,
            "min_cycle": self.min_cycle,
            "resource_delay": self.resource_delay,
            "critical_pred": self.critical_pred,
            "pair_id": self.pair_id,
            "competing": list(self.competing),
            "note": self.note,
        }


@dataclass(frozen=True)
class StallLink:
    """One link of a cross-iteration stall chain: iteration ``iteration``
    stalled ``stall`` cycles at pair ``pair_id``'s wait (local cycle
    ``wait_cycle``) until ``producer_iteration``'s send, issued at
    absolute cycle ``send_abs``, became visible."""

    pair_id: int
    iteration: int
    producer_iteration: int
    wait_cycle: int
    send_abs: int
    stall: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "pair_id": self.pair_id,
            "iteration": self.iteration,
            "producer_iteration": self.producer_iteration,
            "wait_cycle": self.wait_cycle,
            "send_abs": self.send_abs,
            "stall": self.stall,
        }


class DecisionJournal:
    """Append-only collector of :class:`Decision` and :class:`StallLink`
    records for one or more scheduling/simulation runs."""

    def __init__(self) -> None:
        self.decisions: list[Decision] = []
        self.stalls: list[StallLink] = []

    # -- recording -----------------------------------------------------------

    def record_decision(self, decision: Decision) -> None:
        self.decisions.append(decision)

    def record_stall(self, link: StallLink) -> None:
        self.stalls.append(link)

    # -- queries -------------------------------------------------------------

    def decision_for(self, iid: int, scheduler: str | None = None) -> Decision | None:
        """The last recorded decision for ``iid`` (optionally restricted
        to one scheduler's run — journals may hold several)."""
        for decision in reversed(self.decisions):
            if decision.iid == iid and (
                scheduler is None or decision.scheduler == scheduler
            ):
                return decision
        return None

    def decisions_for(self, scheduler: str) -> list[Decision]:
        return [d for d in self.decisions if d.scheduler == scheduler]

    def stalls_for(self, pair_id: int) -> list[StallLink]:
        return [s for s in self.stalls if s.pair_id == pair_id]

    # -- lifecycle / export --------------------------------------------------

    def clear(self) -> None:
        self.decisions.clear()
        self.stalls.clear()

    def __bool__(self) -> bool:
        return bool(self.decisions or self.stalls)

    def __len__(self) -> int:
        return len(self.decisions) + len(self.stalls)

    def as_dict(self) -> dict[str, Any]:
        """Stable-ordered snapshot (the report's ``explain`` block)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "decisions": [d.as_dict() for d in self.decisions],
            "stalls": [s.as_dict() for s in self.stalls],
        }


# The active journal.  One module-global read when disabled — the same
# discipline as repro.obs.trace / repro.obs.metrics.
_ACTIVE: DecisionJournal | None = None


def enable_journal(journal: DecisionJournal | None = None) -> DecisionJournal:
    """Install ``journal`` (or a fresh one) as the active collector."""
    global _ACTIVE
    _ACTIVE = journal if journal is not None else DecisionJournal()
    return _ACTIVE


def disable_journal() -> DecisionJournal | None:
    """Deactivate and return the previously active journal, if any."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, None
    return previous


def active_journal() -> DecisionJournal | None:
    return _ACTIVE


@contextmanager
def journal_scope(journal: DecisionJournal | None) -> Iterator[None]:
    """Install ``journal`` for the duration of a block, restoring the
    previously active journal afterwards.  ``None`` is a no-op scope."""
    if journal is None:
        yield
        return
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = journal
    try:
        yield
    finally:
        _ACTIVE = previous


# -- query engine ---------------------------------------------------------


def pair_span_bound(schedule: "Schedule", graph: "DataFlowGraph", pair_id: int) -> int | None:
    """The dependence lower bound on pair ``pair_id``'s inclusive
    Wait→Send span: the longest latency-weighted path from the wait to
    its send, plus one (the :meth:`~repro.sched.schedule.Schedule.span`
    convention).  ``None`` when the send is not reachable from the wait —
    the pair has no synchronization path and a scheduler may issue the
    send first (span ``<= 0``, run-time LFD)."""
    lowered = schedule.lowered
    machine = schedule.machine
    wait = lowered.wait_iids[pair_id]
    send = lowered.send_iids[pair_id]
    dist: dict[int, int] = {wait: 0}
    for node in graph.topological_order():
        if node not in dist:
            continue
        latency = machine.latency(lowered.instruction(node).fu)
        for edge in graph.succ[node]:
            candidate = dist[node] + latency
            if candidate > dist.get(edge.dst, -1):
                dist[edge.dst] = candidate
    if send not in dist:
        return None
    return dist[send] + 1


def _render(schedule: "Schedule", iid: int) -> str:
    from repro.codegen.isa import render_instruction

    return render_instruction(schedule.lowered.instruction(iid))


def _source_line(schedule: "Schedule", iid: int) -> str | None:
    """The synchronized-body source statement ``iid`` was lowered from."""
    instr = schedule.lowered.instruction(iid)
    if instr.stmt_pos is None:
        return None
    from repro.ir.printer import format_stmt

    body = schedule.lowered.synced.loop.body
    if not (0 <= instr.stmt_pos < len(body)):
        return None
    return f"stmt {instr.stmt_pos}: {format_stmt(body[instr.stmt_pos])}"


def _ready_chain(
    schedule: "Schedule", journal: DecisionJournal, decision: Decision, limit: int = 12
) -> list[str]:
    """Walk critical predecessors back toward the cycle-1 frontier."""
    lines: list[str] = []
    seen: set[int] = {decision.iid}
    current = decision
    while current.critical_pred is not None and len(lines) < limit:
        pred = current.critical_pred
        pred_decision = journal.decision_for(pred, current.scheduler)
        pred_cycle = schedule.cycle_of.get(pred)
        lines.append(
            f"ready-gated by op {pred} "
            f"({_render(schedule, pred)}) issued c{pred_cycle}"
        )
        if pred in seen or pred_decision is None:
            break
        seen.add(pred)
        current = pred_decision
    return lines


def explain_op(
    schedule: "Schedule", journal: DecisionJournal, iid: int
) -> str:
    """Answer "why is op ``iid`` at cycle ``c``" from the journal."""
    lowered = schedule.lowered
    if iid not in schedule.cycle_of:
        return f"op {iid}: not in this schedule"
    cycle = schedule.cycle_of[iid]
    lines = [f"op {iid}: {_render(schedule, iid)}   [cycle {cycle}]"]
    source = _source_line(schedule, iid)
    if source is not None:
        lines.append(f"  source: {source}")
    decision = journal.decision_for(iid, schedule.scheduler_name)
    if decision is None:
        lines.append(
            f"  no decision recorded by {schedule.scheduler_name or 'the scheduler'}"
            " (was the journal installed during scheduling?)"
        )
        return "\n".join(lines)
    lines.append(
        f"  placed by {decision.scheduler} in phase '{decision.phase}' "
        f"(rule: {decision.rule})"
    )
    lines.append(f"  dependence-ready at c{decision.ready_cycle}")
    for chain_line in _ready_chain(schedule, journal, decision):
        lines.append(f"    {chain_line}")
    if decision.min_cycle > decision.ready_cycle:
        pair = f" (pair {decision.pair_id})" if decision.pair_id is not None else ""
        lines.append(
            f"  sync rule raised the floor to c{decision.min_cycle}{pair}"
        )
    if decision.resource_delay > 0:
        fu = lowered.instruction(iid).fu.value
        lines.append(
            f"  delayed {decision.resource_delay} cycle(s) past its floor "
            f"waiting for a free slot/{fu} unit"
        )
    if decision.competing:
        shown = ", ".join(str(c) for c in decision.competing[:8])
        more = "" if len(decision.competing) <= 8 else ", ..."
        lines.append(f"  competed with ready ops: {shown}{more}")
    if decision.note:
        lines.append(f"  note: {decision.note}")
    return "\n".join(lines)


def _pair_verdict(
    schedule: "Schedule",
    journal: DecisionJournal,
    pair_id: int,
    span: int,
    bound: int | None,
) -> list[str]:
    """The one human sentence the paper's argument turns on."""
    lowered = schedule.lowered
    wait_iid = lowered.wait_iids[pair_id]
    wait_decision = journal.decision_for(wait_iid, schedule.scheduler_name)
    if span <= 0:
        return [
            "  verdict: send issues before the wait (run-time LFD) — "
            "this pair never stalls any iteration."
        ]
    if bound is not None and span <= bound:
        rule = wait_decision.rule if wait_decision is not None else "?"
        return [
            f"  verdict: span {span} equals the dependence bound {bound} — the "
            f"synchronization path is packed to its minimum (rule: {rule}); "
            "no schedule can do better for this pair."
        ]
    stretch = span - (bound if bound is not None else 0)
    lines = []
    if wait_decision is not None and wait_decision.rule == "greedy":
        lines.append(
            f"  verdict: the {wait_decision.scheduler} scheduler's greedy "
            f"decision placed Wait_Signal (op {wait_iid}) at "
            f"c{wait_decision.cycle} — its dependence-ready cycle — ignoring "
            "where the paired send could issue; the wait was hoisted "
            f"{stretch} cycle(s) beyond the pair's "
            + (f"dependence bound {bound}" if bound is not None else "LFD placement")
            + ", and every cross-iteration hop pays that stretch."
        )
    else:
        rule = wait_decision.rule if wait_decision is not None else "?"
        lines.append(
            f"  verdict: span {span} exceeds the "
            + (f"dependence bound {bound}" if bound is not None else "LFD bound 0")
            + f" by {stretch} cycle(s) (wait placed by rule: {rule})."
        )
    return lines


def explain_pair(
    schedule: "Schedule",
    journal: DecisionJournal,
    graph: "DataFlowGraph",
    pair_id: int,
    sim: "SimulationResult | None" = None,
) -> str:
    """Answer "why is the Wait→Send span for pair ``pair_id`` equal to
    ``k``" — and what that span costs at run time."""
    lowered = schedule.lowered
    pair = lowered.synced.pair(pair_id)
    wait_iid = lowered.wait_iids[pair_id]
    send_iid = lowered.send_iids[pair_id]
    span = schedule.span(pair_id)
    bound = pair_span_bound(schedule, graph, pair_id)
    kind = "LBD" if pair.is_lexically_backward else "LFD"
    lines = [
        f"pair {pair_id}: {pair.source_label}@{pair.source_pos} -> "
        f"S@{pair.sink_pos} (d={pair.distance}, lexically {kind})  "
        f"[{schedule.scheduler_name}]",
        f"  wait  op {wait_iid:>3} at c{schedule.wait_cycle(pair_id):<3} "
        f"{_render(schedule, wait_iid)}",
        f"  send  op {send_iid:>3} at c{schedule.send_cycle(pair_id):<3} "
        f"{_render(schedule, send_iid)}",
        f"  span (inclusive wait->send) = {span}"
        + (
            f"; dependence bound along the synchronization path = {bound}"
            if bound is not None
            else "; no dependence path wait->send (LFD placement possible)"
        ),
    ]
    for iid, role in ((wait_iid, "wait"), (send_iid, "send")):
        decision = journal.decision_for(iid, schedule.scheduler_name)
        if decision is None:
            continue
        delay = (
            f", +{decision.resource_delay} resource"
            if decision.resource_delay
            else ""
        )
        floor = (
            f", sync floor c{decision.min_cycle}"
            if decision.min_cycle > decision.ready_cycle
            else ""
        )
        lines.append(
            f"  {role} decision: phase '{decision.phase}', rule {decision.rule} "
            f"(ready c{decision.ready_cycle}{floor}{delay})"
        )
    lines.extend(_pair_verdict(schedule, journal, pair_id, span, bound))

    # Run-time cost: the Section 2 closed form plus the observed chain.
    if span > 0:
        from repro.sim.analytic import lbd_hops, lbd_parallel_time

        n = sim.n if sim is not None else 100
        latency = sim.signal_latency if sim is not None else 1
        per_hop = span - 1 + latency
        hops = lbd_hops(n, pair.distance)
        lines.append(
            f"  cost model (n={n}): per-hop penalty i-j+{latency} = {per_hop}, "
            f"hops floor((n-1)/{pair.distance}) = {hops}, "
            f"T = {hops}*{per_hop} + {schedule.length} = "
            f"{lbd_parallel_time(n, pair.distance, span, schedule.length, latency)}"
        )
    if sim is not None:
        stalled = sim.stall_by_pair.get(pair_id, 0)
        lines.append(
            f"  simulated: {stalled} stall cycle(s) attributed to this pair "
            f"(of {sim.total_stall} total, dispatch: {sim.dispatch})"
        )
    chain = journal.stalls_for(pair_id)
    if chain:
        lines.append("  stall chain (first links):")
        for link in chain[:4]:
            lines.append(
                f"    iter {link.iteration} stalled {link.stall} cycle(s) at "
                f"wait c{link.wait_cycle} until iter {link.producer_iteration}'s "
                f"send (issued abs c{link.send_abs}) became visible"
            )
        if len(chain) > 4:
            lines.append(f"    ... {len(chain) - 4} more link(s)")
    return "\n".join(lines)


def explain_summary(
    schedule: "Schedule",
    journal: DecisionJournal,
    graph: "DataFlowGraph",
    sim: "SimulationResult | None" = None,
) -> str:
    """Per-pair overview: spans, bounds, stalls, and the dominant pair."""
    lowered = schedule.lowered
    lines = [
        f"schedule: {schedule.scheduler_name} on {schedule.machine.name}, "
        f"length l = {schedule.length}"
    ]
    if sim is not None:
        lines.append(
            f"simulated: n={sim.n}, parallel time {sim.parallel_time}, "
            f"total stall {sim.total_stall} (dispatch: {sim.dispatch})"
        )
    worst: tuple[int, int] | None = None
    for pair in lowered.synced.pairs:
        span = schedule.span(pair.pair_id)
        bound = pair_span_bound(schedule, graph, pair.pair_id)
        stall = sim.stall_by_pair.get(pair.pair_id, 0) if sim is not None else 0
        status = (
            "runtime LFD (never stalls)"
            if span <= 0
            else (
                "at dependence bound"
                if bound is not None and span <= bound
                else f"stretched +{span - (bound or 0)} over bound "
                f"{bound if bound is not None else 0}"
            )
        )
        lines.append(
            f"  pair {pair.pair_id}: d={pair.distance}, span {span:>3}, "
            f"stall {stall:>5}  -- {status}"
        )
        if span > 0 and (worst is None or stall > worst[1]):
            worst = (pair.pair_id, stall)
    if worst is not None and worst[1] > 0:
        lines.append(
            f"dominant stall source: pair {worst[0]} "
            f"(run `repro explain ... --pair {worst[0]}` for the provenance)"
        )
    recorded = len(journal.decisions_for(schedule.scheduler_name))
    lines.append(f"decisions journaled: {recorded} of {len(schedule.cycle_of)} placements")
    return "\n".join(lines)
