"""Exporters for trace events and metrics snapshots.

Three output formats (see ``docs/observability.md``):

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event JSON format: load the file at ``chrome://tracing`` (or
  https://ui.perfetto.dev) to see the pipeline's span hierarchy on a
  timeline.  Spans become ``"ph": "X"`` *complete* events with
  microsecond ``ts``/``dur``; nesting is inferred from the timestamps.
* :func:`journal_lines` / :func:`write_journal` — a JSON-lines event
  journal: one ``{"kind": "span", ...}`` object per line, interleaved
  with the ``{"kind": "progress", ...}`` heartbeats a
  :class:`~repro.obs.trace.RecordingProgressSink` collected (schema v5),
  terminated by a single ``{"kind": "metrics", ...}`` snapshot when
  metrics were collected.  Grep-able, stream-able, stable key order.
* :func:`metrics_snapshot` — the dict embedded in :mod:`repro.report`
  records (schema v2) and printed by ``repro metrics``.
* :func:`prometheus_text` — the Prometheus text exposition (format
  0.0.4) of a registry, served by ``GET /v1/metrics?format=prom``
  (:mod:`repro.service.server`).
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Iterator

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import ProgressEvent, TraceEvent
from repro.schema import SCHEMA_VERSION, dump_line, stamped

__all__ = [
    "chrome_trace",
    "journal_lines",
    "metrics_snapshot",
    "prometheus_text",
    "write_chrome_trace",
    "write_journal",
]


def chrome_trace(events: Iterable[TraceEvent]) -> dict[str, Any]:
    """Trace events in the Chrome trace-event format (JSON object form).

    Every span becomes a complete ("ph": "X") event; ``ts`` and ``dur``
    are microseconds as the format requires.  The nesting ``depth`` rides
    along in ``args`` (Chrome itself infers nesting from timestamps).
    """
    trace_events = [
        {
            "name": event.name,
            "cat": "repro",
            "ph": "X",
            "ts": event.start_ns / 1000.0,
            "dur": event.duration_ns / 1000.0,
            "pid": event.pid,
            "tid": event.pid,
            "args": {"depth": event.depth, **event.attrs},
        }
        for event in events
    ]
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metadata": {"schema_version": SCHEMA_VERSION},
    }


def write_chrome_trace(path: str, events: Iterable[TraceEvent]) -> None:
    """Write :func:`chrome_trace` JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(events), handle, indent=1, sort_keys=True)
        handle.write("\n")


def metrics_snapshot(registry: MetricsRegistry) -> dict[str, Any]:
    """The metrics snapshot embedded in report records and journals."""
    return {
        "schema_version": SCHEMA_VERSION,
        "deterministic": registry.deterministic_subset().as_dict(),
        "all": registry.as_dict(),
    }


def _prom_name(name: str) -> str:
    """Dotted metric name → Prometheus metric name (dots/dashes → ``_``)."""
    return "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format (0.0.4).

    Counters map to ``counter`` samples, gauges to ``gauge``,
    fixed-bucket distributions to full ``histogram`` families
    (cumulative ``_bucket{le=...}`` plus ``_sum``/``_count``), and the
    exact value→count histograms to their ``_count``/``_sum`` summaries
    (their exact buckets are a JSON-side concept).  Deterministic: one
    line order for one registry state.
    """
    lines: list[str] = []
    for name in sorted(registry.counters):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {registry.counters[name]}")
    for name in sorted(registry.gauges):
        prom = _prom_name(name)
        summary = registry.gauges[name].summary()
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {summary['value']}")
    for name in sorted(registry.distributions):
        prom = _prom_name(name)
        histogram = registry.distributions[name]
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, occurrences in zip(histogram.bounds, histogram.bucket_counts):
            cumulative += occurrences
            lines.append(f'{prom}_bucket{{le="{bound!r}"}} {cumulative}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} {histogram.total}')
        lines.append(f"{prom}_sum {round(histogram.value_sum, 9)}")
        lines.append(f"{prom}_count {histogram.total}")
    for name in sorted(registry.histograms):
        prom = _prom_name(name)
        summary = registry.histogram_summary(name)
        lines.append(f"# TYPE {prom} summary")
        lines.append(f"{prom}_sum {summary['sum']}")
        lines.append(f"{prom}_count {summary['count']}")
    return "\n".join(lines) + "\n"


def journal_lines(
    events: Iterable[TraceEvent],
    registry: MetricsRegistry | None = None,
    progress: Iterable[ProgressEvent] | None = None,
) -> Iterator[str]:
    """JSON-lines journal: span lines, then progress heartbeats, then a
    final metrics snapshot.

    Every line carries a top-level ``schema_version`` (the v3 contract;
    ``progress`` lines are v5) so a journal can be consumed without
    out-of-band format knowledge."""
    for event in events:
        yield dump_line(stamped("span", event.as_dict()))
    for heartbeat in progress or ():
        yield dump_line(heartbeat.as_dict())
    if registry is not None and registry:
        yield dump_line(stamped("metrics", metrics_snapshot(registry)))


def write_journal(
    path: str,
    events: Iterable[TraceEvent],
    registry: MetricsRegistry | None = None,
    progress: Iterable[ProgressEvent] | None = None,
) -> None:
    """Write the JSON-lines journal to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        for line in journal_lines(events, registry, progress):
            handle.write(line + "\n")
