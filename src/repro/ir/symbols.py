"""Symbol table: classify every name in a loop as scalar/array, INT/REAL.

Typing matters downstream because the DLX code generator assigns function
units by operand type: integer index arithmetic goes to the integer adder,
REAL array-value arithmetic to the floating-point adder/multiplier/divider.

Defaults (matching the paper's Fortran kernels): arrays are ``REAL`` unless
declared ``INTEGER``; scalars are ``INTEGER`` (loop indexes, bounds,
induction temporaries) unless declared ``REAL``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ir.ast_nodes import ArrayRef, Assign, Loop, Program, VarRef, walk_expr


class SymbolKind(enum.Enum):
    """Whether a name is a scalar variable or a (singly-subscripted) array."""

    SCALAR = "scalar"
    ARRAY = "array"


class VarType(enum.Enum):
    """Declared or inferred value type (FORTRAN INTEGER / REAL)."""

    INT = "INTEGER"
    REAL = "REAL"


@dataclass
class SymbolInfo:
    name: str
    kind: SymbolKind
    var_type: VarType
    extent: int | None = None


@dataclass
class SymbolTable:
    """Maps names to :class:`SymbolInfo`; built from a loop (or program)."""

    symbols: dict[str, SymbolInfo] = field(default_factory=dict)

    def __contains__(self, name: str) -> bool:
        return name in self.symbols

    def __getitem__(self, name: str) -> SymbolInfo:
        return self.symbols[name]

    def add(self, info: SymbolInfo) -> None:
        existing = self.symbols.get(info.name)
        if existing is not None and existing.kind is not info.kind:
            raise ValueError(
                f"{info.name!r} used both as {existing.kind.value} and {info.kind.value}"
            )
        self.symbols[info.name] = info

    def is_array(self, name: str) -> bool:
        return name in self.symbols and self.symbols[name].kind is SymbolKind.ARRAY

    def var_type(self, name: str) -> VarType:
        return self.symbols[name].var_type

    def arrays(self) -> list[str]:
        return sorted(n for n, s in self.symbols.items() if s.kind is SymbolKind.ARRAY)

    def scalars(self) -> list[str]:
        return sorted(n for n, s in self.symbols.items() if s.kind is SymbolKind.SCALAR)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_loop(
        cls,
        loop: Loop,
        declarations: dict[str, tuple[str, int | None]] | None = None,
    ) -> "SymbolTable":
        """Infer the symbol table of ``loop``.

        ``declarations`` (from :class:`repro.ir.Program`) override the
        defaults.  Conflicting usage (a name appearing both subscripted and
        bare) raises ``ValueError``.
        """
        table = cls()
        declarations = declarations or {}

        def declared_type(name: str, default: VarType) -> VarType:
            if name in declarations:
                return VarType.INT if declarations[name][0] == "INTEGER" else VarType.REAL
            return default

        def declared_extent(name: str) -> int | None:
            if name in declarations:
                return declarations[name][1]
            return None

        def note(name: str, kind: SymbolKind) -> None:
            default = VarType.REAL if kind is SymbolKind.ARRAY else VarType.INT
            info = SymbolInfo(
                name=name,
                kind=kind,
                var_type=declared_type(name, default),
                extent=declared_extent(name),
            )
            table.add(info)

        note(loop.index, SymbolKind.SCALAR)
        exprs = [loop.lower, loop.upper]
        for stmt in loop.body:
            if isinstance(stmt, Assign):
                exprs.append(stmt.expr)
                exprs.extend(stmt.guard_exprs())
                if isinstance(stmt.target, ArrayRef):
                    note(stmt.target.name, SymbolKind.ARRAY)
                    exprs.append(stmt.target.subscript)
                else:
                    note(stmt.target.name, SymbolKind.SCALAR)
        for expr in exprs:
            for node in walk_expr(expr):
                if isinstance(node, ArrayRef):
                    note(node.name, SymbolKind.ARRAY)
                elif isinstance(node, VarRef):
                    note(node.name, SymbolKind.SCALAR)
        return table

    @classmethod
    def from_program(cls, program: Program, loop_index: int = 0) -> "SymbolTable":
        return cls.from_loop(program.loops[loop_index], program.declarations)
