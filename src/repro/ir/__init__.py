"""Loop intermediate representation and mini-Fortran frontend.

This package provides the source-level representation the rest of the
reproduction operates on: a small expression/statement/loop AST
(:mod:`repro.ir.ast_nodes`), a tokenizer and recursive-descent parser for a
mini-Fortran surface syntax (:mod:`repro.ir.lexer`, :mod:`repro.ir.parser`),
a pretty-printer that round-trips with the parser (:mod:`repro.ir.printer`),
and a symbol table (:mod:`repro.ir.symbols`).

The surface language is exactly rich enough to express the DOACROSS kernels
the paper evaluates: ``DO``/``DOACROSS`` loops over a single index, labelled
assignment statements whose operands are scalars and affinely-subscripted
array references, the four arithmetic operators, and explicit
``WAIT_SIGNAL``/``SEND_SIGNAL`` statements (so pre-synchronized loops such as
the paper's Fig. 1(b) can be written down directly).
"""

from repro.ir.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Comparison,
    Const,
    Loop,
    Program,
    SendSignal,
    Stmt,
    UnaryOp,
    VarRef,
    WaitSignal,
    walk_expr,
)
from repro.ir.parser import ParseError, parse_loop, parse_program
from repro.ir.printer import format_expr, format_loop, format_program, format_stmt
from repro.ir.symbols import SymbolKind, SymbolTable, VarType

__all__ = [
    "ArrayRef",
    "Assign",
    "BinOp",
    "Comparison",
    "Const",
    "Loop",
    "ParseError",
    "Program",
    "SendSignal",
    "Stmt",
    "SymbolKind",
    "SymbolTable",
    "UnaryOp",
    "VarRef",
    "VarType",
    "WaitSignal",
    "format_expr",
    "format_loop",
    "format_program",
    "format_stmt",
    "parse_loop",
    "parse_program",
    "walk_expr",
]
