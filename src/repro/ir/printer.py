"""Pretty-printer for the loop IR.

``parse_loop(format_loop(loop))`` reproduces ``loop`` up to expression
identity (the printer emits minimal parentheses; the round-trip property is
tested in ``tests/ir/test_printer.py``).
"""

from __future__ import annotations

from repro.ir.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Const,
    Expr,
    Loop,
    Program,
    SendSignal,
    Stmt,
    UnaryOp,
    VarRef,
    WaitSignal,
)

_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2}


def format_expr(expr: Expr, parent_prec: int = 0, right_side: bool = False) -> str:
    """Render ``expr`` with minimal parentheses.

    ``parent_prec`` is the precedence of the enclosing operator and
    ``right_side`` notes whether ``expr`` is its right operand (needed
    because ``-`` and ``/`` are left-associative: ``a - (b + c)`` must keep
    its parentheses).
    """
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, ArrayRef):
        return f"{expr.name}({format_expr(expr.subscript)})"
    if isinstance(expr, UnaryOp):
        inner = format_expr(expr.operand, parent_prec=3)
        text = f"-{inner}"
        return f"({text})" if parent_prec >= 2 else text
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        left = format_expr(expr.left, parent_prec=prec)
        # The right operand of a same-precedence '-' or '/' needs parens.
        right_prec = prec + 1 if expr.op in ("-", "/") else prec
        right = format_expr(expr.right, parent_prec=right_prec, right_side=True)
        text = f"{left} {expr.op} {right}"
        needs = prec < parent_prec or (prec == parent_prec and right_side)
        return f"({text})" if needs else text
    raise TypeError(f"not an expression: {expr!r}")


def format_comparison(cmp) -> str:
    return f"{format_expr(cmp.left)} {cmp.op} {format_expr(cmp.right)}"


def format_stmt(stmt: Stmt) -> str:
    """Render a single statement (no indentation, no newline)."""
    if isinstance(stmt, Assign):
        prefix = f"{stmt.label}: " if stmt.label else ""
        if stmt.guard is not None:
            prefix += f"IF ({format_comparison(stmt.guard)}) "
        if isinstance(stmt.target, ArrayRef):
            lhs = f"{stmt.target.name}({format_expr(stmt.target.subscript)})"
        else:
            lhs = stmt.target.name
        return f"{prefix}{lhs} = {format_expr(stmt.expr)}"
    if isinstance(stmt, WaitSignal):
        return f"WAIT_SIGNAL({stmt.source_label}, {format_expr(stmt.iteration)})"
    if isinstance(stmt, SendSignal):
        return f"SEND_SIGNAL({stmt.source_label})"
    raise TypeError(f"not a statement: {stmt!r}")


def format_loop(loop: Loop, indent: str = "  ") -> str:
    """Render a loop, one statement per line."""
    opener = "DOACROSS" if loop.is_doacross else "DO"
    closer = "END_DOACROSS" if loop.is_doacross else "ENDDO"
    header = f"{opener} {loop.index} = {format_expr(loop.lower)}, {format_expr(loop.upper)}"
    lines = [header]
    lines.extend(indent + format_stmt(s) for s in loop.body)
    lines.append(closer)
    return "\n".join(lines)


def format_program(program: Program, indent: str = "  ") -> str:
    """Render a full compilation unit."""
    lines: list[str] = []
    if program.name:
        lines.append(f"PROGRAM {program.name}")
    for name, (type_name, extent) in program.declarations.items():
        suffix = f"({extent})" if extent is not None else ""
        lines.append(f"{type_name} {name}{suffix}")
    for loop in program.loops:
        lines.append(format_loop(loop, indent=indent))
    if program.name:
        lines.append("END")
    return "\n".join(lines)
