"""Recursive-descent parser for the mini-Fortran loop language.

Grammar (newline-terminated statements)::

    program   ::= [ "PROGRAM" IDENT ] { declaration } { loop } [ "END" ]
    declaration ::= ("REAL" | "INTEGER") decl_item { "," decl_item }
    decl_item ::= IDENT [ "(" INT ")" ]
    loop      ::= ("DO" | "DOACROSS") IDENT "=" expr "," expr NEWLINE
                    { statement } ("ENDDO" | "END_DOACROSS")
    statement ::= [ IDENT ":" ] assign | wait | send
    assign    ::= lvalue "=" expr
    lvalue    ::= IDENT [ "(" expr ")" ]
    wait      ::= "WAIT_SIGNAL" "(" IDENT "," expr ")"
    send      ::= "SEND_SIGNAL" "(" IDENT ")"
    expr      ::= term { ("+"|"-") term }
    term      ::= factor { ("*"|"/") factor }
    factor    ::= [ "-" ] ( NUMBER | IDENT [ "(" expr ")" ] | "(" expr ")" )

An ``IDENT (`` in expression position is an array reference; bare ``IDENT``
is a scalar.  Square brackets are accepted wherever parentheses delimit a
subscript.
"""

from __future__ import annotations

from repro.ir.ast_nodes import (
    COMPARISON_OPS,
    ArrayRef,
    Assign,
    BinOp,
    Comparison,
    Const,
    Expr,
    Loop,
    Program,
    SendSignal,
    Stmt,
    UnaryOp,
    VarRef,
    WaitSignal,
)
from repro.ir.lexer import Token, tokenize


class ParseError(ValueError):
    """Raised on a syntax error, with line/column context."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"line {token.line}, col {token.col}: {message} (got {token})")
        self.token = token


_OPEN = {"(": ")", "[": "]"}


class _Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def at(self, kind: str, text: str | None = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def expect(self, kind: str, text: str | None = None) -> Token:
        if not self.at(kind, text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}", self.peek())
        return self.advance()

    def skip_newlines(self) -> None:
        while self.at("NEWLINE"):
            self.advance()

    def end_statement(self) -> None:
        if self.at("EOF"):
            return
        self.expect("NEWLINE")
        self.skip_newlines()

    # -- expressions --------------------------------------------------------

    def parse_expr(self) -> Expr:
        left = self.parse_term()
        while self.at("PUNCT", "+") or self.at("PUNCT", "-"):
            op = self.advance().text
            right = self.parse_term()
            left = BinOp(op, left, right)
        return left

    def parse_term(self) -> Expr:
        left = self.parse_factor()
        while self.at("PUNCT", "*") or self.at("PUNCT", "/"):
            op = self.advance().text
            right = self.parse_factor()
            left = BinOp(op, left, right)
        return left

    def parse_factor(self) -> Expr:
        if self.at("PUNCT", "-"):
            self.advance()
            return UnaryOp("-", self.parse_factor())
        tok = self.peek()
        if tok.kind == "INT":
            self.advance()
            return Const(int(tok.text))
        if tok.kind == "FLOAT":
            self.advance()
            return Const(float(tok.text))
        if tok.kind == "IDENT":
            self.advance()
            if self.peek().kind == "PUNCT" and self.peek().text in _OPEN:
                close = _OPEN[self.advance().text]
                subscript = self.parse_expr()
                self.expect("PUNCT", close)
                return ArrayRef(tok.text, subscript)
            return VarRef(tok.text)
        if tok.kind == "PUNCT" and tok.text in _OPEN:
            close = _OPEN[self.advance().text]
            inner = self.parse_expr()
            self.expect("PUNCT", close)
            return inner
        raise ParseError("expected an expression", tok)

    # -- statements ---------------------------------------------------------

    def parse_statement(self) -> Stmt:
        if self.at("KEYWORD", "WAIT_SIGNAL"):
            return self.parse_wait()
        if self.at("KEYWORD", "SEND_SIGNAL"):
            return self.parse_send()
        label: str | None = None
        if (
            self.peek().kind == "IDENT"
            and self.tokens[self.pos + 1].kind == "PUNCT"
            and self.tokens[self.pos + 1].text == ":"
        ):
            label = self.advance().text
            self.advance()  # ':'
        guard: Comparison | None = None
        if self.at("KEYWORD", "IF"):
            self.advance()
            close = _OPEN[self._open()]
            guard = self.parse_comparison()
            self.expect("PUNCT", close)
        name_tok = self.expect("IDENT")
        target: VarRef | ArrayRef
        if self.peek().kind == "PUNCT" and self.peek().text in _OPEN:
            close = _OPEN[self.advance().text]
            subscript = self.parse_expr()
            self.expect("PUNCT", close)
            target = ArrayRef(name_tok.text, subscript)
        else:
            target = VarRef(name_tok.text)
        self.expect("PUNCT", "=")
        expr = self.parse_expr()
        return Assign(target=target, expr=expr, label=label, guard=guard)

    def parse_comparison(self) -> Comparison:
        left = self.parse_expr()
        tok = self.peek()
        if tok.kind != "PUNCT" or tok.text not in COMPARISON_OPS:
            raise ParseError("expected a comparison operator", tok)
        self.advance()
        right = self.parse_expr()
        return Comparison(tok.text, left, right)

    def parse_wait(self) -> WaitSignal:
        self.expect("KEYWORD", "WAIT_SIGNAL")
        close = _OPEN[self._open()]
        label = self.expect("IDENT").text
        self.expect("PUNCT", ",")
        iteration = self.parse_expr()
        self.expect("PUNCT", close)
        return WaitSignal(source_label=label, iteration=iteration)

    def parse_send(self) -> SendSignal:
        self.expect("KEYWORD", "SEND_SIGNAL")
        close = _OPEN[self._open()]
        label = self.expect("IDENT").text
        self.expect("PUNCT", close)
        return SendSignal(source_label=label)

    def _open(self) -> str:
        tok = self.peek()
        if tok.kind == "PUNCT" and tok.text in _OPEN:
            return self.advance().text
        raise ParseError("expected '(' or '['", tok)

    # -- loops and programs -------------------------------------------------

    def parse_loop(self) -> Loop:
        self.skip_newlines()
        if self.at("KEYWORD", "DOACROSS"):
            is_doacross = True
            self.advance()
        else:
            self.expect("KEYWORD", "DO")
            is_doacross = False
        index = self.expect("IDENT").text
        self.expect("PUNCT", "=")
        lower = self.parse_expr()
        self.expect("PUNCT", ",")
        upper = self.parse_expr()
        self.end_statement()
        body: list[Stmt] = []
        while not (self.at("KEYWORD", "ENDDO") or self.at("KEYWORD", "END_DOACROSS")):
            if self.at("EOF"):
                raise ParseError("unterminated loop", self.peek())
            body.append(self.parse_statement())
            self.end_statement()
        end_tok = self.advance()
        if is_doacross and end_tok.text == "ENDDO":
            # tolerated: DOACROSS ... ENDDO
            pass
        if not is_doacross and end_tok.text == "END_DOACROSS":
            raise ParseError("END_DOACROSS closing a DO loop", end_tok)
        return Loop(index=index, lower=lower, upper=upper, body=body, is_doacross=is_doacross)

    def parse_declaration(self, decls: dict[str, tuple[str, int | None]]) -> None:
        type_tok = self.advance()  # REAL or INTEGER
        while True:
            name = self.expect("IDENT").text
            extent: int | None = None
            if self.peek().kind == "PUNCT" and self.peek().text in _OPEN:
                close = _OPEN[self.advance().text]
                extent = int(self.expect("INT").text)
                self.expect("PUNCT", close)
            decls[name] = (type_tok.text, extent)
            if self.at("PUNCT", ","):
                self.advance()
                continue
            break
        self.end_statement()

    def parse_program(self) -> Program:
        self.skip_newlines()
        name: str | None = None
        if self.at("KEYWORD", "PROGRAM"):
            self.advance()
            name = self.expect("IDENT").text
            self.end_statement()
        decls: dict[str, tuple[str, int | None]] = {}
        while self.at("KEYWORD", "REAL") or self.at("KEYWORD", "INTEGER"):
            self.parse_declaration(decls)
        loops: list[Loop] = []
        while self.at("KEYWORD", "DO") or self.at("KEYWORD", "DOACROSS"):
            loops.append(self.parse_loop())
            self.skip_newlines()
        if self.at("KEYWORD", "END"):
            self.advance()
            self.skip_newlines()
        if not self.at("EOF"):
            raise ParseError("unexpected trailing input", self.peek())
        return Program(loops=loops, name=name, declarations=decls)


def parse_program(source: str) -> Program:
    """Parse a full mini-Fortran compilation unit."""
    return _Parser(source).parse_program()


def parse_loop(source: str) -> Loop:
    """Parse a single ``DO``/``DOACROSS`` loop (the common test entry point)."""
    parser = _Parser(source)
    loop = parser.parse_loop()
    parser.skip_newlines()
    if not parser.at("EOF"):
        raise ParseError("unexpected trailing input", parser.peek())
    return loop
