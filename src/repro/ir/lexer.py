"""Tokenizer for the mini-Fortran surface syntax.

The lexer is case-insensitive for keywords (``DO``, ``ENDDO``, ...), keeps
identifier case as written, and treats both ``( )`` and ``[ ]`` as subscript
delimiters (the paper mixes C-style ``A[I-2]`` and Fortran-style ``A(I-2)``
notation; we accept both).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

KEYWORDS = frozenset(
    {
        "DO",
        "DOACROSS",
        "ENDDO",
        "END_DOACROSS",
        "PROGRAM",
        "END",
        "IF",
        "INTEGER",
        "REAL",
        "WAIT_SIGNAL",
        "SEND_SIGNAL",
    }
)

# Single-character punctuation.  '=' is assignment; ':' ends a statement
# label; ',' separates loop bounds and declaration items; '<'/'>' are
# relational (guard) operators.
PUNCT = frozenset({"=", ":", ",", "+", "-", "*", "/", "(", ")", "[", "]", "<", ">", "!"})

# Two-character relational operators, matched before single characters.
TWO_CHAR = ("<=", ">=", "==", "!=")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``"KEYWORD"``, ``"IDENT"``, ``"INT"``, ``"FLOAT"``,
    ``"PUNCT"``, ``"NEWLINE"`` or ``"EOF"``.  ``text`` is the raw lexeme
    (uppercased for keywords).  ``line``/``col`` are 1-based positions for
    error messages.
    """

    kind: str
    text: str
    line: int
    col: int

    def __str__(self) -> str:  # pragma: no cover - diagnostics only
        if self.kind in ("NEWLINE", "EOF"):
            return self.kind
        return f"{self.text!r}"


class LexError(ValueError):
    """Raised on an unrecognized character."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"line {line}, col {col}: {message}")
        self.line = line
        self.col = col


def _scan_number(text: str, i: int) -> int:
    """Return the end index of the number starting at ``text[i]``."""
    n = len(text)
    j = i
    while j < n and text[j].isdigit():
        j += 1
    if j < n and text[j] == "." and j + 1 < n and text[j + 1].isdigit():
        j += 1
        while j < n and text[j].isdigit():
            j += 1
    return j


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` into a list ending with an ``EOF`` token.

    Newlines are significant (they terminate statements) and are emitted as
    ``NEWLINE`` tokens; consecutive blank lines collapse to one.  ``!`` and
    ``#`` start comments running to end of line.
    """
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def emit(kind: str, text: str, start_col: int) -> None:
        tokens.append(Token(kind, text, line, start_col))

    while i < n:
        ch = source[i]
        if source[i : i + 2] in TWO_CHAR:
            emit("PUNCT", source[i : i + 2], col)
            i += 2
            col += 2
            continue
        if ch in ("!", "#"):
            # '!' not followed by '=' starts a comment (handled above).
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "\n":
            if tokens and tokens[-1].kind != "NEWLINE":
                emit("NEWLINE", "\n", col)
            i += 1
            line += 1
            col = 1
            continue
        if ch in (" ", "\t", "\r", ";"):
            # ';' also separates statements on one line, as a NEWLINE would.
            if ch == ";" and tokens and tokens[-1].kind != "NEWLINE":
                emit("NEWLINE", ";", col)
            i += 1
            col += 1
            continue
        if ch.isdigit():
            j = _scan_number(source, i)
            lexeme = source[i:j]
            emit("FLOAT" if "." in lexeme else "INT", lexeme, col)
            col += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            lexeme = source[i:j]
            upper = lexeme.upper()
            if upper in KEYWORDS:
                emit("KEYWORD", upper, col)
            else:
                emit("IDENT", lexeme, col)
            col += j - i
            i = j
            continue
        if ch in PUNCT:
            emit("PUNCT", ch, col)
            i += 1
            col += 1
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)

    if tokens and tokens[-1].kind != "NEWLINE":
        tokens.append(Token("NEWLINE", "\n", line, col))
    tokens.append(Token("EOF", "", line, col))
    return tokens


def token_stream(source: str) -> Iterator[Token]:
    """Iterator form of :func:`tokenize` (used by the parser)."""
    return iter(tokenize(source))
