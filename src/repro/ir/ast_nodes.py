"""AST node definitions for the mini-Fortran loop language.

Expressions are immutable (frozen dataclasses) so they can be hashed, shared
and used as dictionary keys by the value-numbering pass in the code
generator.  Statements and loops are mutable because the restructuring
transforms (:mod:`repro.transforms`) and synchronization insertion
(:mod:`repro.sync`) rewrite them in place-ish style (they build new bodies
but reuse expression trees).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Const:
    """A numeric literal.  ``value`` is an ``int`` or ``float``."""

    value: Union[int, float]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return str(self.value)


@dataclass(frozen=True)
class VarRef:
    """A reference to a scalar variable (including the loop index)."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.name


@dataclass(frozen=True)
class ArrayRef:
    """A singly-subscripted array reference, e.g. ``A(I-2)``."""

    name: str
    subscript: "Expr"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"{self.name}({self.subscript})"


@dataclass(frozen=True)
class BinOp:
    """A binary arithmetic operation; ``op`` is one of ``+ - * /``."""

    op: str
    left: "Expr"
    right: "Expr"

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*", "/"):
            raise ValueError(f"unsupported binary operator: {self.op!r}")


@dataclass(frozen=True)
class UnaryOp:
    """A unary operation; ``op`` is ``-`` (negation)."""

    op: str
    operand: "Expr"

    def __post_init__(self) -> None:
        if self.op != "-":
            raise ValueError(f"unsupported unary operator: {self.op!r}")


Expr = Union[Const, VarRef, ArrayRef, BinOp, UnaryOp]

EXPR_TYPES = (Const, VarRef, ArrayRef, BinOp, UnaryOp)

COMPARISON_OPS = ("<", ">", "<=", ">=", "==", "!=")


@dataclass(frozen=True)
class Comparison:
    """A relational guard expression, e.g. ``X(I) < M``.

    Comparisons appear only as statement guards (``IF (cond) stmt``); the
    expression language itself stays arithmetic.
    """

    op: str
    left: "Expr"
    right: "Expr"

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator: {self.op!r}")


def clone_expr(expr: Expr) -> Expr:
    """Structure-preserving deep copy with all-new node objects.

    Passes that splice one expression into several places must clone it
    per occurrence: the dependence machinery anchors events to node
    *object identity*, and :func:`repro.sync.insert_synchronization`
    rejects bodies with shared nodes.
    """
    if isinstance(expr, VarRef):
        return VarRef(expr.name)
    if isinstance(expr, Const):
        return Const(expr.value)
    if isinstance(expr, BinOp):
        return BinOp(expr.op, clone_expr(expr.left), clone_expr(expr.right))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, clone_expr(expr.operand))
    if isinstance(expr, ArrayRef):
        return ArrayRef(expr.name, clone_expr(expr.subscript))
    raise TypeError(f"not an expression: {expr!r}")


def walk_expr(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every sub-expression, depth-first, pre-order."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, ArrayRef):
        yield from walk_expr(expr.subscript)


def array_refs(expr: Expr) -> Iterator[ArrayRef]:
    """Yield every :class:`ArrayRef` in ``expr`` in textual (left-to-right) order."""
    for node in walk_expr(expr):
        if isinstance(node, ArrayRef):
            yield node


def scalar_refs(expr: Expr) -> Iterator[VarRef]:
    """Yield every :class:`VarRef` in ``expr`` (including inside subscripts)."""
    for node in walk_expr(expr):
        if isinstance(node, VarRef):
            yield node


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Assign:
    """An assignment statement ``target = expr`` with an optional label.

    ``label`` is the paper-style statement name (``S1``, ``S2``, ...); the
    dependence analyzer and synchronization inserter refer to statements by
    label when one exists and by body position otherwise.

    ``guard`` makes it a Fortran logical-IF statement
    (``IF (guard) target = expr``): the write happens only when the guard
    holds — a *may*-write to the analyses, a predicated store to the code
    generator, and the taxonomy's control-dependence type when a carried
    dependence runs through it.
    """

    target: Union[VarRef, ArrayRef]
    expr: Expr
    label: str | None = None
    guard: Comparison | None = None

    def is_array_assign(self) -> bool:
        return isinstance(self.target, ArrayRef)

    def guard_exprs(self) -> tuple[Expr, ...]:
        """The guard's operand expressions (empty when unguarded)."""
        if self.guard is None:
            return ()
        return (self.guard.left, self.guard.right)


@dataclass
class WaitSignal:
    """``WAIT_SIGNAL(S, I-d)``: block until the signal for statement ``S``
    of iteration ``I-d`` has been produced.

    ``source_label`` names the dependence-source statement, ``iteration`` is
    the (affine) iteration expression, and ``pair_id`` ties this wait to its
    matching :class:`SendSignal` (assigned by :mod:`repro.sync.insertion`).
    """

    source_label: str
    iteration: Expr
    pair_id: int | None = None


@dataclass
class SendSignal:
    """``SEND_SIGNAL(S)``: publish the signal for statement ``S`` of the
    current iteration.  ``pair_ids`` lists every synchronization pair this
    send serves (one send can satisfy several waits on the same source)."""

    source_label: str
    pair_ids: tuple[int, ...] = ()


Stmt = Union[Assign, WaitSignal, SendSignal]

STMT_TYPES = (Assign, WaitSignal, SendSignal)


# ---------------------------------------------------------------------------
# Loops and programs
# ---------------------------------------------------------------------------


@dataclass
class Loop:
    """A single-index counted loop.

    ``is_doacross`` distinguishes a plain ``DO`` from a ``DOACROSS`` (the
    synchronized parallel form).  Bounds are expressions so symbolic trip
    counts (``N``) can be carried through the pipeline; ``step`` is a
    positive integer constant, 1 in every kernel the paper considers.
    """

    index: str
    lower: Expr
    upper: Expr
    body: list[Stmt] = field(default_factory=list)
    step: int = 1
    is_doacross: bool = False
    name: str | None = None

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ValueError("loop step must be a positive integer")

    def assignments(self) -> list[Assign]:
        """The assignment statements of the body, in textual order."""
        return [s for s in self.body if isinstance(s, Assign)]

    def sync_ops(self) -> list[Union[WaitSignal, SendSignal]]:
        """The synchronization statements of the body, in textual order."""
        return [s for s in self.body if isinstance(s, (WaitSignal, SendSignal))]

    def stmt_position(self, stmt: Stmt) -> int:
        """Textual position of ``stmt`` within the body (identity match)."""
        for i, s in enumerate(self.body):
            if s is stmt:
                return i
        raise ValueError("statement is not part of this loop body")

    def labelled(self, label: str) -> Assign:
        """Look up an assignment by its statement label."""
        for s in self.body:
            if isinstance(s, Assign) and s.label == label:
                return s
        raise KeyError(f"no statement labelled {label!r}")


@dataclass
class Program:
    """A compilation unit: optional name, declarations, and top-level loops.

    Declarations map a variable name to a declared type string (``"REAL"``
    or ``"INTEGER"``) and, for arrays, an extent.  They are optional in the
    surface syntax; undeclared arrays default to ``REAL`` and undeclared
    scalars to ``INTEGER`` (loop indexes and bounds are integers in every
    paper kernel).
    """

    loops: list[Loop] = field(default_factory=list)
    name: str | None = None
    declarations: dict[str, tuple[str, int | None]] = field(default_factory=dict)

    def loop(self, i: int = 0) -> Loop:
        return self.loops[i]
