"""Compilation-as-a-service: the typed op layer and the HTTP server.

``repro.service.ops`` holds every operation as a typed entrypoint
returning an :class:`~repro.service.ops.OpResult`; :data:`OP_REGISTRY`
is the single source of truth both clients are generated from.  The
command line (:mod:`repro.cli`) is one thin client; the long-lived HTTP
server (:mod:`repro.service.server`, ``repro serve``) is the second,
sharing one process-wide compile cache and coalescing concurrent
submissions into single batch-engine grids.  See ``docs/service.md``.
"""

from repro.service.ops import (
    OP_REGISTRY,
    OpResult,
    OpSpec,
    compile_op,
    evaluate_op,
    explain_op,
    fuzz_op,
    metrics_op,
    modulo_op,
    op_epilog,
    schedule_op,
    simulate_op,
    sweep_op,
    sweep_results,
)

__all__ = [
    "OP_REGISTRY",
    "OpResult",
    "OpSpec",
    "ReproService",
    "compile_op",
    "evaluate_op",
    "explain_op",
    "fuzz_op",
    "metrics_op",
    "modulo_op",
    "op_epilog",
    "schedule_op",
    "simulate_op",
    "sweep_op",
    "sweep_results",
]


def __getattr__(name: str):
    # The server pulls in http.server and the coalescing batcher; load it
    # lazily so `import repro.service` stays cheap for CLI startup.
    if name == "ReproService":
        from repro.service.server import ReproService

        return ReproService
    raise AttributeError(f"module 'repro.service' has no attribute {name!r}")
