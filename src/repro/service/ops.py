"""The service-op layer: every CLI subcommand as a typed entrypoint.

PR 7's api_redesign splits the monolithic ``cli.py`` driver into this
reusable registry of **operations**.  Each op is a plain function taking
typed arguments (never an ``argparse.Namespace``) and returning an
:class:`OpResult` — the exact text the one-shot CLI prints plus an
optional structured payload — so the command line
(:mod:`repro.cli`) and the long-lived HTTP service
(:mod:`repro.service.server`) are two thin clients of the same layer.

The :data:`OP_REGISTRY` is the single source of truth for the supported
operations: the CLI's subparsers *and* ``--help`` epilogue are generated
from it, and the server's error bodies list it, so the two surfaces can
never drift.

Output discipline: ops accumulate their stdout/stderr into buffers and
never touch ``sys.stdout``/``sys.stderr`` directly (live progress still
streams through the :class:`~repro.obs.trace.ProgressSink` seam).  That
keeps ops thread-safe for the service and keeps the CLI's output
byte-identical to the pre-split driver — enforced by
``tests/integration/test_cli_parity.py``.
"""

from __future__ import annotations

import argparse
import io
import json
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.codegen import format_listing
from repro.dfg import find_sync_paths, partition, to_dot
from repro.ir import format_loop
from repro.pipeline import compile_loop
from repro.sched import (
    Schedule,
    assert_valid,
    list_schedule,
    marker_schedule,
    paper_machine,
    schedule_stats,
    sync_schedule,
)
from repro.sim import simulate_doacross
from repro.sim.metrics import improvement_percent
from repro.workloads import PERFECT_BENCHMARKS, perfect_suite

__all__ = [
    "OP_REGISTRY",
    "OpResult",
    "OpSpec",
    "SCHEDULERS",
    "bench_check_op",
    "bench_diff_op",
    "bench_list_op",
    "bench_record_op",
    "compile_op",
    "dash_op",
    "dot_op",
    "evaluate_op",
    "explain_op",
    "fuzz_op",
    "metrics_op",
    "modulo_op",
    "op_epilog",
    "prof_diff_op",
    "prof_record_op",
    "prof_top_op",
    "read_source",
    "runs_diff_op",
    "runs_list_op",
    "runs_show_op",
    "schedule_op",
    "simulate_op",
    "sweep_op",
    "sweep_results",
]

SCHEDULERS = {
    "list": list_schedule,
    "marker": marker_schedule,
    "sync": sync_schedule,
}


@dataclass
class OpResult:
    """One operation's outcome: exit code, exact CLI text, structured data.

    ``stdout``/``stderr`` hold exactly what the one-shot CLI prints (the
    CLI writes them verbatim; the HTTP service returns them in the
    response body).  ``data`` is the optional machine-readable payload
    (schema-stamped records for ops that build one).
    """

    exit_code: int = 0
    stdout: str = ""
    stderr: str = ""
    data: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        return self.exit_code == 0


class _Buffers:
    """The op-local print targets (thread-safe, unlike redirect_stdout)."""

    def __init__(self) -> None:
        self._out = io.StringIO()
        self._err = io.StringIO()

    def out(self, *args: Any, **kwargs: Any) -> None:
        print(*args, file=self._out, **kwargs)

    def err(self, *args: Any, **kwargs: Any) -> None:
        print(*args, file=self._err, **kwargs)

    def result(
        self, exit_code: int = 0, data: dict[str, Any] | None = None
    ) -> OpResult:
        return OpResult(
            exit_code=exit_code,
            stdout=self._out.getvalue(),
            stderr=self._err.getvalue(),
            data=data,
        )


def read_source(path: str) -> str:
    """Read a loop source file (``-`` = stdin) — the CLI's file argument."""
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


# -- the operations ------------------------------------------------------------


def compile_op(source: str) -> OpResult:
    """Parse + analyze + synchronize + lower a loop; print the artifacts."""
    b = _Buffers()
    compiled = compile_loop(source)
    b.out("== synchronized loop ==")
    b.out(format_loop(compiled.synced.loop))
    b.out("\n== three-address code ==")
    b.out(format_listing(compiled.lowered))
    b.out("\n== synchronization pairs ==")
    for pair in compiled.synced.pairs:
        b.out(f"  {pair}")
    components = partition(compiled.graph, compiled.lowered)
    b.out("\n== DFG partition ==")
    for component in components:
        b.out(f"  {component.kind.value:7s}: {sorted(component.nodes)}")
    for path in find_sync_paths(compiled.graph, compiled.lowered, components):
        b.out(f"  SP(pair {path.pair_id}) = {list(path.nodes)}")
    return b.result()


def schedule_op(
    source: str,
    scheduler: str = "all",
    issue: int = 4,
    fu: int = 1,
    n: int = 100,
    gantt: bool = False,
    pressure: bool = False,
) -> OpResult:
    """Run one or all schedulers on a machine; print tables and times."""
    b = _Buffers()
    compiled = compile_loop(source)
    machine = paper_machine(issue, fu)
    names = list(SCHEDULERS) if scheduler == "all" else [scheduler]
    results: list[tuple[str, Schedule, int]] = []
    from repro.perf import profiled

    for name in names:
        with profiled("schedule"):
            schedule = SCHEDULERS[name](compiled.lowered, compiled.graph, machine)
        with profiled("verify"):
            assert_valid(schedule, compiled.graph)
        with profiled("simulate"):
            sim = simulate_doacross(schedule, n)
        results.append((name, schedule, sim.parallel_time))
        b.out(f"== {name} scheduling on {machine.name} ==")
        b.out(schedule.format())
        spans = {p.pair_id: schedule.span(p.pair_id) for p in compiled.synced.pairs}
        b.out(f"length = {schedule.length}  spans = {spans}")
        b.out(schedule_stats(schedule).format())
        if gantt:
            from repro.sched.gantt import gantt as render_gantt

            b.out(render_gantt(schedule))
        if pressure:
            from repro.sched import register_pressure

            profile = register_pressure(schedule)
            b.out(
                f"register pressure: peak {profile.max_pressure} at cycle "
                f"{profile.cycle_of_peak()} ({profile.temporaries} temporaries)"
            )
        b.out(f"parallel time (n={n}) = {sim.parallel_time}\n")
    if len(results) > 1:
        base = results[0][2]
        for name, _, t in results[1:]:
            b.out(
                f"{name} vs {results[0][0]}: {improvement_percent(base, t):+.1f}% improvement"
            )
    return b.result()


def modulo_op(source: str, issue: int = 4, fu: int = 1, n: int = 100) -> OpResult:
    """Software-pipeline the loop (extension): kernel, II, times."""
    from repro.ir.parser import parse_loop
    from repro.sched.modulo import modulo_schedule, verify_modulo

    b = _Buffers()
    loop = parse_loop(source)
    machine = paper_machine(issue, fu)
    kernel = modulo_schedule(loop, machine)
    violations = verify_modulo(kernel)
    b.out(
        f"II = {kernel.ii} (ResMII {kernel.mii_resource}, RecMII "
        f"{kernel.mii_recurrence}), makespan {kernel.makespan}"
    )
    for iid, cycle in sorted(kernel.cycle_of.items(), key=lambda kv: (kv[1], kv[0])):
        instr = kernel.lowered.instruction(iid)
        b.out(f"  cycle {cycle:>3} (slot {cycle % kernel.ii}): {iid:>3}: {instr}")
    b.out(f"pipelined time (1 processor, n={n}) = {kernel.parallel_time(n)}")
    if violations:
        b.out("VIOLATIONS:", *violations, sep="\n  ")
        return b.result(exit_code=1)
    return b.result()


def simulate_op(
    source: str,
    scheduler: str = "sync",
    issue: int = 4,
    fu: int = 1,
    n: int = 100,
    inject: Sequence[str] | None = None,
    exact_sim: bool = False,
    executor: bool = False,
    max_cycles: int | None = None,
) -> OpResult:
    """Simulate one scheduled loop, optionally under an injected fault plan."""
    from repro.robust import DeadlockError, FaultPlan
    from repro.sim import MemoryImage, execute_parallel

    b = _Buffers()
    compiled = compile_loop(source)
    machine = paper_machine(issue, fu)
    schedule = SCHEDULERS[scheduler](compiled.lowered, compiled.graph, machine)
    assert_valid(schedule, compiled.graph)
    try:
        plan = FaultPlan.parse(inject) if inject else None
    except ValueError as err:
        b.err(f"bad --inject spec: {err}")
        return b.result(exit_code=1)
    if plan:
        b.out(f"fault plan: {plan.describe()}")
    from repro.obs.ledger import active_recorder

    run_recorder = active_recorder()
    try:
        sim = simulate_doacross(schedule, n, exact_simulation=exact_sim, faults=plan)
    except DeadlockError as err:
        if run_recorder is not None:
            run_recorder.note_error("deadlock", f"DeadlockError: {err}")
            from repro.sched.gantt import sync_timeline

            run_recorder.add_timeline("sync", sync_timeline(schedule))
        b.out(err.render(schedule))
        return b.result(exit_code=2)
    if run_recorder is not None:
        from repro.sched.gantt import sync_timeline

        run_recorder.add_timeline("sync", sync_timeline(schedule))
    b.out(f"== {scheduler} scheduling on {machine.name} ==")
    b.out(f"schedule length = {schedule.length}, dispatch = {sim.dispatch}")
    if sim.fallback_reason:
        b.out(f"fast path declined: {sim.fallback_reason}")
    b.out(f"parallel time (n={n}) = {sim.parallel_time}")
    if sim.stall_by_pair:
        for pair_id, stall in sorted(sim.stall_by_pair.items()):
            b.out(f"  pair {pair_id}: total stall {stall} cycle(s)")
    if executor:
        try:
            result = execute_parallel(
                schedule,
                MemoryImage(),
                n,
                max_cycles=max_cycles,
                faults=plan,
                graph=compiled.graph,
            )
        except DeadlockError as err:
            b.out(err.render(schedule))
            return b.result(exit_code=2)
        agree = "agrees" if result.parallel_time == sim.parallel_time else "DISAGREES"
        b.out(f"semantic executor: {result.parallel_time} cycles ({agree})")
    return b.result()


def fuzz_op(cases: int = 200, seed: int = 0, executor_every: int = 1) -> OpResult:
    """The seeded differential fuzz harness (:mod:`repro.robust.fuzz`)."""
    from repro.robust.fuzz import run_fuzz

    b = _Buffers()
    report = run_fuzz(cases=cases, seed=seed, executor_every=executor_every)
    b.out(report.summary())
    return b.result(exit_code=0 if report.ok else 1)


def sweep_results(
    names,
    n,
    workers,
    exact_sim,
    no_cache=False,
    cache_file=None,
    min_pool_work=None,
    progress=False,
    batch=False,
):
    """Run the Perfect sweep and return evaluations, one per sweep point."""
    from repro.obs.ledger import active_recorder
    from repro.options import EvalOptions

    suite = perfect_suite()
    cases = [(2, 1), (2, 2), (4, 1), (4, 2)]
    jobs = [
        (name, suite[name], paper_machine(*case)) for name in names for case in cases
    ]
    options = EvalOptions(
        exact_simulation=exact_sim, min_pool_work=min_pool_work, progress=progress,
        batch=batch,
    )
    run_recorder = active_recorder()
    if run_recorder is not None:
        run_recorder.note_options(options)
    notes: list[str] = []
    if workers > 1:
        from repro.perf import ParallelEvaluator

        evaluator = ParallelEvaluator(max_workers=workers)
        results = evaluator.evaluate_corpora(jobs, n=n, options=options)
        benign = evaluator.fallback_reason in (None, "max_workers=1", "single job") or (
            evaluator.fallback_reason or ""
        ).startswith("below min-work threshold")
        if not evaluator.used_pool and not benign:
            notes.append(
                f"note: process pool unavailable, ran serially "
                f"({evaluator.fallback_reason})"
            )
    else:
        from repro.perf import CompileCache
        from repro.pipeline import evaluate_corpus

        if run_recorder is not None:
            run_recorder.note_mode(
                "batch (whole-grid vectorized, no pool requested)"
                if batch
                else "serial (no pool requested)"
            )
        cache = None
        if cache_file:
            cache = CompileCache.load(cache_file)
        elif not no_cache:
            cache = CompileCache()
        if cache is not None:
            options = options.replace(cache=cache)
        if batch:
            # The whole grid goes through one vectorized dispatch instead
            # of a per-corpus loop (CLI sweeps never carry the options the
            # batch engine declines, so there is no fallback leg here).
            from repro.perf import BatchEvaluator, shared_batch_evaluator

            engine = BatchEvaluator() if no_cache else shared_batch_evaluator()
            results = engine.evaluate_corpora(jobs, n=n, options=options)
        else:
            results = [
                evaluate_corpus(name, loops, machine, n, options)
                for name, loops, machine in jobs
            ]
        if cache_file and cache is not None:
            cache.save(cache_file)
    if run_recorder is not None:
        for corpus in results:
            run_recorder.note_failures(corpus.failures)
    return results, cases, notes


def sweep_op(
    benchmarks: Sequence[str] = (),
    n: int = 100,
    jobs: int = 1,
    no_cache: bool = False,
    cache_file: str | None = None,
    exact_sim: bool = False,
    batch: bool = False,
    min_pool_work: int | None = None,
    progress: bool = False,
    structured: bool = False,
) -> OpResult:
    """Regenerate Tables 2/3 over the Perfect corpora.

    With ``structured=True`` the result carries the per-corpus records
    (:func:`repro.report.corpus_record`) the HTTP service returns.
    """
    b = _Buffers()
    names = list(benchmarks) or list(PERFECT_BENCHMARKS)
    if no_cache and jobs > 1:
        b.err(
            "note: --no-cache has no effect with --jobs > 1 "
            "(workers keep their own caches)"
        )
    if cache_file and jobs > 1:
        b.err(
            "note: --cache-file has no effect with --jobs > 1 "
            "(workers keep their own caches)"
        )
    results, cases, notes = sweep_results(
        names, n, jobs, exact_sim, no_cache, cache_file,
        min_pool_work=min_pool_work, progress=progress, batch=batch,
    )
    for note in notes:
        b.err(note)
    by_point = {(ev.name, ev.machine.name): ev for ev in results}
    b.out(f"{'bench':8s}" + "".join(f"{f'{w}i/{f}fu':>16s}" for w, f in cases))
    for name in names:
        cells = []
        for case in cases:
            ev = by_point[(name, paper_machine(*case).name)]
            cells.append(f"{ev.t_list}/{ev.t_new} {ev.improvement:4.0f}%")
        b.out(f"{name:8s}" + "".join(f"{c:>16s}" for c in cells))
    data = None
    if structured:
        from repro.report import corpus_record

        data = {
            "benchmarks": names,
            "cases": [list(case) for case in cases],
            "corpora": [corpus_record(ev) for ev in results],
        }
    return b.result(data=data)


def metrics_op(
    benchmarks: Sequence[str] = (),
    n: int = 100,
    jobs: int = 1,
    exact_sim: bool = False,
    as_json: bool = False,
) -> OpResult:
    """Run the Perfect sweep with the metrics registry enabled."""
    import json as _json

    from repro.obs import enable_metrics, disable_metrics, metrics_snapshot

    b = _Buffers()
    names = list(benchmarks) or list(PERFECT_BENCHMARKS)
    registry = enable_metrics()
    notes: Sequence[str] = ()
    try:
        _, _, notes = sweep_results(names, n, jobs, exact_sim)
    finally:
        disable_metrics()
        for note in notes:
            b.err(note)
    if as_json:
        b.out(_json.dumps(metrics_snapshot(registry), indent=2, sort_keys=True))
    else:
        b.out(registry.format())
    return b.result()


def explain_op(
    source: str,
    scheduler: str = "sync",
    issue: int = 4,
    fu: int = 1,
    fig4: bool = False,
    n: int = 100,
    op: int | None = None,
    pair: int | None = None,
    timeline: bool = False,
    timeline_n: int = 6,
    html: str | None = None,
) -> OpResult:
    """Why is op X at cycle c / why is pair S's span k (decision journal)."""
    from repro.obs.explain import (
        DecisionJournal,
        explain_op as _explain_op,
        explain_pair as _explain_pair,
        explain_summary as _explain_summary,
        journal_scope,
    )
    from repro.sched import figure4_machine

    b = _Buffers()
    compiled = compile_loop(source)
    machine = figure4_machine() if fig4 else paper_machine(issue, fu)
    scheduler_fn = SCHEDULERS[scheduler]
    journal = DecisionJournal()
    with journal_scope(journal):
        schedule = scheduler_fn(compiled.lowered, compiled.graph, machine)
        assert_valid(schedule, compiled.graph)
        sim = simulate_doacross(schedule, n)
    printed = False
    if op is not None:
        b.out(_explain_op(schedule, journal, op))
        printed = True
    if pair is not None:
        if printed:
            b.out()
        b.out(_explain_pair(schedule, journal, compiled.graph, pair, sim=sim))
        printed = True
    if not printed:
        b.out(_explain_summary(schedule, journal, compiled.graph, sim=sim))
    from repro.obs.ledger import active_recorder

    run_recorder = active_recorder()
    if run_recorder is not None:
        from repro.sched.gantt import sync_timeline

        run_recorder.add_timeline("sync", sync_timeline(schedule))
    if timeline:
        from repro.sched.gantt import execution_timeline, sync_timeline

        b.out()
        b.out(sync_timeline(schedule))
        b.out()
        b.out(execution_timeline(schedule, n=min(n, timeline_n)))
    if html:
        from repro.sched.gantt import timeline_html

        with open(html, "w", encoding="utf-8") as handle:
            handle.write(timeline_html(schedule, n=min(n, timeline_n)))
        b.err(f"wrote timeline to {html}")
        if run_recorder is not None:
            run_recorder.add_artifact(html)
    return b.result()


def evaluate_op(
    source: str,
    issue: int = 4,
    fu: int = 1,
    n: int = 100,
    exact_sim: bool = False,
    as_json: bool = False,
) -> OpResult:
    """Evaluate one loop with both schedulers; structured v7 record.

    The service-first entrypoint behind ``POST /v1/evaluate``: compile,
    schedule with both algorithms, simulate, and return the
    :func:`repro.report.evaluation_record` as ``data`` (printed as JSON
    with ``as_json``, as a one-line summary otherwise).
    """
    from repro.options import EvalOptions
    from repro.pipeline import evaluate_loop
    from repro.report import evaluation_record, to_json

    b = _Buffers()
    compiled = compile_loop(source)
    machine = paper_machine(issue, fu)
    evaluation = evaluate_loop(
        compiled, machine, n, options=EvalOptions(exact_simulation=exact_sim)
    )
    record = evaluation_record(evaluation)
    if as_json:
        b.out(to_json(record))
    else:
        b.out(
            f"{machine.name}: t_list={evaluation.t_list} t_new={evaluation.t_new} "
            f"({evaluation.improvement:+.1f}% improvement, n={evaluation.n})"
        )
    return b.result(data=record)


def _bench_history(history: str):
    from repro.obs.regress import BenchHistory

    return BenchHistory(history)


def bench_record_op(history: str, suite: str = "all", n: int = 100) -> OpResult:
    """Run bench suites and append them to the JSONL history."""
    from repro.obs.regress import collect_run, suites

    b = _Buffers()
    store = _bench_history(history)
    from repro.obs.ledger import active_recorder

    run_recorder = active_recorder()
    for name in suites(suite):
        run = collect_run(name, n=n)
        store.append(run)
        b.out(f"recorded {run.summary()}")
    if run_recorder is not None:
        run_recorder.add_artifact(store.path)
    b.err(f"history: {store.path}")
    return b.result()


def bench_list_op(history: str) -> OpResult:
    """Show recorded bench runs."""
    b = _Buffers()
    store = _bench_history(history)
    runs = store.load()
    if not runs:
        b.out(f"no runs recorded in {store.path}")
        return b.result()
    for run in runs:
        b.out(run.summary())
    return b.result()


def bench_diff_op(history: str, run_a: str, run_b: str) -> OpResult:
    """Compare two recorded bench runs."""
    from repro.obs.regress import diff_runs, format_diff

    b = _Buffers()
    store = _bench_history(history)
    diff = diff_runs(store.get(run_a), store.get(run_b))
    b.out(format_diff(diff))
    return b.result(exit_code=1 if diff.cycle_drift else 0)


#: Timed repeats per suite in ``repro bench check`` — the wall gate takes
#: the median, so one scheduler hiccup on a loaded CI host is not a
#: regression (the repeat count lands on the candidate's bench record).
DEFAULT_CHECK_REPEATS = 3


def bench_check_op(
    history: str,
    suite: str = "all",
    baseline: str | None = None,
    wall_tolerance: float | None = None,
    repeats: int = DEFAULT_CHECK_REPEATS,
    profiles: str | None = None,
) -> OpResult:
    """Re-run bench suites and fail on drift vs the recorded baseline.

    The candidate's wall clock is the **median of** ``repeats`` timed
    executions.  When the wall-clock gate trips, the regressed suite is
    re-run once more under the sampling profiler and diffed against the
    most recent profile recorded for that suite (``profiles`` store, see
    ``repro prof``), so the report names the regressed frame, not just
    the regressed second.
    """
    from repro.obs.regress import (
        DEFAULT_WALL_TOLERANCE,
        BenchHistory,
        check_run,
        collect_run,
        suites,
    )

    b = _Buffers()
    if wall_tolerance is None:
        wall_tolerance = DEFAULT_WALL_TOLERANCE
    baseline_store = BenchHistory(baseline) if baseline else _bench_history(history)
    failed = False
    checked = 0
    for name in suites(suite):
        base = baseline_store.latest(name)
        if base is None:
            b.err(
                f"{name}: no baseline recorded in {baseline_store.path} "
                "(run `repro bench record` first)"
            )
            failed = True
            continue
        candidate = collect_run(name, n=base.n, repeats=repeats)
        violations = check_run(base, candidate, wall_tolerance=wall_tolerance)
        checked += 1
        if violations:
            failed = True
            b.out(f"{name}: REGRESSION vs baseline {base.run_id}:")
            for violation in violations:
                b.out(f"  {violation}")
            if any(v.startswith("wall-clock regressed") for v in violations):
                b.out(
                    f"  profile attribution (median of {repeats} repeat(s) "
                    "regressed; re-running under the sampler):"
                )
                for line in _bench_wall_attribution(name, base.n, profiles):
                    b.out(f"    {line}")
        else:
            b.out(
                f"{name}: OK — {len(candidate.points)} point(s) match baseline "
                f"{base.run_id} exactly"
            )
    return b.result(exit_code=1 if failed or checked == 0 else 0)


def _profile_suite(
    suite: str,
    n: int,
    hz: float,
    min_seconds: float,
    label: str = "",
) -> tuple["Any", int]:
    """Run a bench suite under a local sampling profiler.

    Loops the suite until ``min_seconds`` of wall clock have accrued so
    even a millisecond-fast suite yields a meaningful sample count.
    Returns ``(profile, rounds)``.
    """
    from repro.obs.prof import Profiler
    from repro.obs.regress import _suite_points
    from repro.obs.trace import add_tracer, remove_tracer
    from repro.options import EvalOptions

    options = EvalOptions()
    profiler = Profiler(hz)
    add_tracer(profiler)  # stage attribution via the span seam
    profiler.start_sampling()
    rounds = 0
    started = time.perf_counter()
    try:
        # Loop the suite body itself (not collect_run, whose per-call git
        # fingerprint subprocess would drown a fast suite in spawn frames).
        while True:
            _suite_points(suite, n, options)
            rounds += 1
            if time.perf_counter() - started >= min_seconds:
                break
    finally:
        remove_tracer(profiler)
        profiler.stop_sampling()
    return profiler.snapshot(label=label, suite=suite), rounds


def _bench_wall_attribution(
    suite: str, n: int, profiles: str | None
) -> list[str]:
    """Differential-profile lines for one wall-regressed suite.

    Profiles a fresh run, appends it to the profile store, and diffs it
    against the store's previous profile for the suite.  Attribution is
    best-effort: a sampling failure reports itself instead of masking
    the wall-clock violation it annotates.
    """
    from repro.obs.prof import (
        DEFAULT_HZ,
        DEFAULT_PROFILES,
        ProfileStore,
        format_profile_diff,
        frame_stats,
    )

    try:
        store = ProfileStore(profiles or DEFAULT_PROFILES)
        previous = store.latest(suite)
        profile, _rounds = _profile_suite(
            suite, n, hz=DEFAULT_HZ, min_seconds=1.0, label="bench-check"
        )
        store.append(profile)
        if previous is None:
            lines = [
                f"no earlier profile for suite {suite!r} in {store.path}; "
                "hottest frames of the regressed run:"
            ]
            stats = sorted(
                frame_stats(profile).values(),
                key=lambda s: (-s.self_samples, s.name),
            )[:5]
            total = max(profile.samples, 1)
            lines.extend(
                f"{stat.name}: {stat.self_samples} self sample(s) "
                f"({100.0 * stat.self_samples / total:.1f}%)"
                for stat in stats
            )
        else:
            lines = format_profile_diff(previous, profile, limit=5)
        lines.append(f"recorded profile {profile.profile_id} in {store.path}")
        return lines
    except Exception as err:  # noqa: BLE001 — annotate, never mask
        return [f"profile attribution unavailable: {type(err).__name__}: {err}"]


def prof_record_op(
    profiles: str,
    suite: str = "fig",
    n: int = 100,
    hz: float | None = None,
    min_seconds: float = 1.0,
    svg: str | None = None,
    label: str = "",
) -> OpResult:
    """``repro prof record``: profile a bench suite, append the record."""
    from repro.obs.ledger import active_recorder
    from repro.obs.prof import (
        DEFAULT_HZ,
        ProfileStore,
        flamegraph_svg,
        profile_top_table,
    )

    b = _Buffers()
    store = ProfileStore(profiles)
    profile, rounds = _profile_suite(
        suite, n, hz=hz or DEFAULT_HZ, min_seconds=min_seconds, label=label
    )
    store.append(profile)
    b.out(
        f"recorded profile {profile.profile_id} suite={suite} "
        f"samples={profile.samples} rounds={rounds} "
        f"wall={profile.duration_s:.2f}s hz={profile.hz:g}"
    )
    b.out(profile_top_table(profile, limit=5))
    run_recorder = active_recorder()
    if run_recorder is not None:
        run_recorder.add_artifact(store.path)
    if svg:
        with open(svg, "w", encoding="utf-8") as handle:
            handle.write(flamegraph_svg(profile))
        b.err(f"wrote flame graph to {svg}")
        if run_recorder is not None:
            run_recorder.add_artifact(svg)
    b.err(f"profiles: {store.path}")
    return b.result(data=profile.as_dict())


def prof_top_op(
    profiles: str, profile_id: str | None = None, limit: int = 15
) -> OpResult:
    """``repro prof top``: hottest frames of one recorded profile."""
    from repro.obs.prof import ProfileStore, profile_top_table

    b = _Buffers()
    store = ProfileStore(profiles)
    try:
        if profile_id is None:
            profile = store.latest()
            if profile is None:
                raise KeyError(
                    f"no profiles recorded in {store.path} "
                    "(run `repro prof record` first)"
                )
        else:
            profile = store.get(profile_id)
    except KeyError as err:
        b.err(str(err.args[0]) if err.args else str(err))
        return b.result(exit_code=1)
    b.out(profile_top_table(profile, limit=limit))
    return b.result()


def prof_diff_op(
    profiles: str, profile_a: str, profile_b: str, limit: int = 10
) -> OpResult:
    """``repro prof diff``: per-frame deltas between two profiles,
    naming the top regressed frames."""
    from repro.obs.prof import ProfileStore, format_profile_diff

    b = _Buffers()
    store = ProfileStore(profiles)
    try:
        old = store.get(profile_a)
        new = store.get(profile_b)
    except KeyError as err:
        b.err(str(err.args[0]) if err.args else str(err))
        return b.result(exit_code=1)
    for line in format_profile_diff(old, new, limit=limit):
        b.out(line)
    return b.result()


def dot_op(source: str, title: str | None = None) -> OpResult:
    """Emit the DFG as Graphviz DOT."""
    b = _Buffers()
    compiled = compile_loop(source)
    b.out(to_dot(compiled.graph, compiled.lowered, title=title))
    return b.result()


def _run_ledger(ledger: str):
    from repro.obs.ledger import RunLedger

    return RunLedger(ledger)


def runs_list_op(ledger: str, inflight: bool = False) -> OpResult:
    """Show runs recorded in the ledger.

    ``inflight=True`` shows only unfinished in-flight service records —
    requests a (possibly killed) process admitted but never finalized.
    """
    from repro.obs.ledger import unfinished_inflight

    b = _Buffers()
    store = _run_ledger(ledger)
    records = store.load()
    if store.torn_tail:
        b.err(
            f"warning: the final line of {store.path} was torn (a process "
            "died mid-append); skipped"
        )
    if inflight:
        records = unfinished_inflight(records)
        if not records:
            b.out(f"no unfinished in-flight requests in {store.path}")
            return b.result()
        for record in records:
            request_id = record.argv[-1] if record.argv else "?"
            b.out(f"{record.summary()}  request_id={request_id}")
        b.out(
            f"{len(records)} in-flight request(s) were never finalized; "
            "run `repro serve --recover` to mark them lost"
        )
        return b.result()
    if not records:
        b.out(f"no runs recorded in {store.path}")
        return b.result()
    for record in records:
        b.out(record.summary())
    return b.result()


def runs_show_op(ledger: str, run_id: str) -> OpResult:
    """Full detail for one recorded run."""
    b = _Buffers()
    store = _run_ledger(ledger)
    try:
        record = store.get(run_id)
    except KeyError as err:
        b.err(err.args[0])
        return b.result(exit_code=1)
    b.out(record.describe())
    return b.result(data=record.as_dict())


def runs_diff_op(
    ledger: str, run_a: str, run_b: str, all_metrics: bool = False
) -> OpResult:
    """Compare two runs' final metrics snapshots."""
    from repro.obs.ledger import diff_run_metrics, format_run_diff

    b = _Buffers()
    store = _run_ledger(ledger)
    try:
        old, new = store.get(run_a), store.get(run_b)
    except KeyError as err:
        b.err(err.args[0])
        return b.result(exit_code=1)
    diff = diff_run_metrics(old, new, deterministic_only=not all_metrics)
    b.out(format_run_diff(diff))
    return b.result(exit_code=1 if diff.comparable and not diff.identical else 0)


def dash_op(
    out: str = "dashboard.html",
    history: str | None = None,
    no_walkthrough: bool = False,
    ledger: str | None = None,
    live: str | None = None,
    refresh: float = 2.0,
    profiles: str | None = None,
) -> OpResult:
    """Build the self-contained HTML dashboard.

    With ``live=URL`` the dashboard is built from one ``GET /v1/metrics``
    snapshot of a running service instead of the ledger/history stores,
    and carries a polling script that repaints itself every ``refresh``
    seconds (stat tiles, latency sparkline, flight-recorder table).

    Either way the dashboard embeds a CPU flame graph when one is
    available: the latest record of the ``profiles`` store (static), or
    a ``GET /v1/profile?format=svg`` snapshot when the live service has
    profiling armed.
    """
    from repro.obs.ledger import DEFAULT_LEDGER, RunLedger, active_recorder
    from repro.obs.prof import DEFAULT_PROFILES, ProfileStore
    from repro.obs.regress import DEFAULT_HISTORY, BenchHistory

    b = _Buffers()
    if live is not None:
        from repro.obs.dash import build_live_dashboard

        snapshot = _service_snapshot(live, "/v1/metrics")
        try:
            profile_svg = _service_text(live, "/v1/profile?format=svg")
        except (OSError, RuntimeError, ValueError):
            profile_svg = None  # profiling off: the section says so
        html = build_live_dashboard(
            snapshot, source=live, refresh_s=refresh, profile_svg=profile_svg
        )
        detail = (
            f"live dashboard ({snapshot.get('latency', {}).get('count', 0)} "
            f"workload request(s) observed at {live})"
        )
    else:
        from repro.obs.dash import build_dashboard, walkthrough_timelines

        runs = RunLedger(ledger if ledger is not None else DEFAULT_LEDGER).load()
        bench_runs = BenchHistory(
            history if history is not None else DEFAULT_HISTORY
        ).load()
        profile_records = ProfileStore(
            profiles if profiles is not None else DEFAULT_PROFILES
        ).load()
        walkthrough = None if no_walkthrough else walkthrough_timelines()
        html = build_dashboard(
            runs, bench_runs, walkthrough=walkthrough, profiles=profile_records
        )
        detail = (
            f"dashboard ({len(runs)} ledger run(s), {len(bench_runs)} bench "
            "run(s))"
        )
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(html)
    run_recorder = active_recorder()
    if run_recorder is not None:
        run_recorder.add_artifact(out)
    b.err(f"wrote {detail} to {out}")
    return b.result()


def _service_text(url: str, path: str) -> str:
    """One GET against a running service, returned as raw text (the SVG
    flame graph of ``/v1/profile?format=svg``).  Raises on non-200."""
    from http.client import HTTPConnection
    from urllib.parse import urlsplit

    parts = urlsplit(url if "//" in url else f"http://{url}")
    connection = HTTPConnection(
        parts.hostname or "127.0.0.1", parts.port or 8757, timeout=10
    )
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        body = response.read().decode("utf-8")
    finally:
        connection.close()
    if response.status != 200:
        raise RuntimeError(f"GET {url}{path} returned {response.status}")
    return body


def _service_snapshot(url: str, path: str) -> dict[str, Any]:
    """One GET against a running service, parsed as JSON (stdlib only)."""
    from http.client import HTTPConnection
    from urllib.parse import urlsplit

    parts = urlsplit(url if "//" in url else f"http://{url}")
    connection = HTTPConnection(
        parts.hostname or "127.0.0.1", parts.port or 8757, timeout=10
    )
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        payload = json.loads(response.read())
    finally:
        connection.close()
    if response.status != 200:
        raise RuntimeError(
            f"GET {url}{path} returned {response.status}: "
            f"{payload.get('error', payload)}"
        )
    return payload


def top_op(url: str, interval: float = 2.0, count: int = 0) -> OpResult:
    """``repro top``: a one-line live view of a running service.

    Polls ``GET /v1/metrics`` every ``interval`` seconds and renders one
    status line — on a TTY it repaints in place (the
    :class:`~repro.obs.trace.TTYProgressSink` convention: ``\\r``, no
    newline until done); otherwise one line per poll.  ``count`` bounds
    the number of polls (0 = until Ctrl-C).
    """
    import sys

    from repro.obs.prof import busy_samples

    stream = sys.stderr
    is_tty = getattr(stream, "isatty", lambda: False)()
    polls = 0
    # CPU% comes from GET /v1/profile when the server has profiling
    # armed (`repro serve --profile-hz N`): the *busy* sample-count
    # delta between two polls divided by hz x elapsed.  The sampler is
    # wall-clock — it sees parked handler threads too — so samples whose
    # leaf is a blocking primitive (IDLE_LEAVES) are excluded here; an
    # idle service reads ~0%, not thread-count x 100%.  A dash when
    # profiling is off, unreachable, or on the first poll (no delta).
    prev_cpu: tuple[int, float] | None = None
    try:
        while True:
            cpu = "-"
            try:
                snapshot = _service_snapshot(url, "/v1/metrics")
            except (OSError, RuntimeError, ValueError) as err:
                line = f"repro top: {url} unreachable ({err})"
            else:
                try:
                    prof = _service_snapshot(url, "/v1/profile")
                except (OSError, RuntimeError, ValueError):
                    prev_cpu = None
                else:
                    record = prof.get("profile", {})
                    folded = record.get("folded")
                    samples = (
                        busy_samples(folded)
                        if folded is not None
                        else record.get("samples", 0)
                    )
                    hz = prof.get("hz", 0) or 0
                    now = time.monotonic()
                    if prev_cpu is not None and hz > 0:
                        delta_s, delta_t = samples - prev_cpu[0], now - prev_cpu[1]
                        if delta_t > 0:
                            cpu = f"{100.0 * delta_s / (hz * delta_t):.0f}%"
                    prev_cpu = (samples, now)
                counters = snapshot.get("metrics", {}).get("counters", {})
                gauges = snapshot.get("metrics", {}).get("gauges", {})
                latency = snapshot.get("latency", {})
                uptime = snapshot.get("uptime_s", 0.0)
                requests = counters.get("service.request.count", 0)
                rate = requests / uptime if uptime > 0 else 0.0
                occupancy = (
                    snapshot.get("metrics", {})
                    .get("distributions", {})
                    .get("service.batch.coalesce_window_occupancy", {})
                )
                line = (
                    f"up {uptime:.0f}s · req {requests} ({rate:.1f}/s) · "
                    f"err {counters.get('service.request.errors', 0)} · "
                    f"p50 {latency.get('p50', 0.0) * 1e3:.1f}ms "
                    f"p95 {latency.get('p95', 0.0) * 1e3:.1f}ms "
                    f"p99 {latency.get('p99', 0.0) * 1e3:.1f}ms · "
                    f"inflight {snapshot.get('inflight', 0)} · "
                    f"queue {gauges.get('service.queue.depth', {}).get('value', 0)} · "
                    f"coalesce≤{occupancy.get('max', 0) or 0:g} · "
                    f"cpu {cpu}"
                )
            if is_tty:
                stream.write("\r\x1b[2K" + line)
            else:
                stream.write(line + "\n")
            stream.flush()
            polls += 1
            if count and polls >= count:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    finally:
        if is_tty:
            stream.write("\n")
            stream.flush()
    return OpResult()


# -- the registry --------------------------------------------------------------


@dataclass(frozen=True)
class OpSpec:
    """One operation: its CLI wiring and its service exposure.

    ``configure`` adds the subparser (and sets ``spec`` on its defaults);
    ``run`` adapts a parsed ``argparse.Namespace`` onto the typed op;
    ``call`` is the typed op itself, exposed by the HTTP service at
    ``POST /v1/op/<name>`` when ``http`` is true.  ``records`` marks ops
    whose invocation lands in the run ledger when ``--ledger`` is armed
    (query ops read the ledger instead of writing it).
    """

    name: str
    help: str
    configure: Callable[[Any, Callable[[Any], None]], None]
    run: Callable[[argparse.Namespace], OpResult]
    call: Callable[..., OpResult] | None = None
    http: bool = True
    records: bool = True


def _cfg_compile(sub, ledger_flag) -> None:
    p = sub.add_parser("compile", help="compile a loop and print artifacts")
    p.add_argument("loop", help="loop source file, or - for stdin")
    ledger_flag(p)
    p.set_defaults(spec=OP_REGISTRY["compile"])


def _cfg_schedule(sub, ledger_flag) -> None:
    p = sub.add_parser("schedule", help="schedule a loop and simulate")
    p.add_argument("loop", help="loop source file, or - for stdin")
    p.add_argument("--scheduler", choices=[*SCHEDULERS, "all"], default="all")
    p.add_argument("--issue", type=int, default=4, help="issue width")
    p.add_argument("--fu", type=int, default=1, help="units per class")
    p.add_argument("--n", type=int, default=100, help="iterations")
    p.add_argument("--gantt", action="store_true", help="occupancy chart")
    p.add_argument("--pressure", action="store_true", help="register pressure")
    ledger_flag(p)
    p.set_defaults(spec=OP_REGISTRY["schedule"])


def _cfg_modulo(sub, ledger_flag) -> None:
    p = sub.add_parser("modulo", help="software-pipeline a loop (extension)")
    p.add_argument("loop", help="loop source file, or - for stdin")
    p.add_argument("--issue", type=int, default=4)
    p.add_argument("--fu", type=int, default=1)
    p.add_argument("--n", type=int, default=100)
    p.set_defaults(spec=OP_REGISTRY["modulo"])


def _cfg_simulate(sub, ledger_flag) -> None:
    p = sub.add_parser(
        "simulate", help="simulate one loop, optionally under injected faults"
    )
    p.add_argument("loop", help="loop source file, or - for stdin")
    p.add_argument("--scheduler", choices=list(SCHEDULERS), default="sync")
    p.add_argument("--issue", type=int, default=4, help="issue width")
    p.add_argument("--fu", type=int, default=1, help="units per class")
    p.add_argument("--n", type=int, default=100, help="iterations")
    p.add_argument(
        "--inject",
        action="append",
        metavar="SPEC",
        default=None,
        help="fault spec, repeatable: drop[:pair=P][,iter=K] | "
        "delay:extra=E[,pair=P][,iter=K] | stall:iter=K,at=C,cycles=S | "
        "jitter:seed=S[,max=M][,prob=F]",
    )
    p.add_argument(
        "--exact-sim",
        action="store_true",
        help="force the full event walk (skip the analytic fast path)",
    )
    p.add_argument(
        "--executor",
        action="store_true",
        help="also run the semantic executor and cross-check the timing",
    )
    p.add_argument(
        "--max-cycles",
        type=int,
        default=None,
        help="executor cycle budget (default: derived from the schedule)",
    )
    ledger_flag(p)
    p.set_defaults(spec=OP_REGISTRY["simulate"])


def _cfg_evaluate(sub, ledger_flag) -> None:
    p = sub.add_parser(
        "evaluate", help="evaluate one loop with both schedulers (v7 record)"
    )
    p.add_argument("loop", help="loop source file, or - for stdin")
    p.add_argument("--issue", type=int, default=4, help="issue width")
    p.add_argument("--fu", type=int, default=1, help="units per class")
    p.add_argument("--n", type=int, default=100, help="iterations")
    p.add_argument(
        "--exact-sim",
        action="store_true",
        help="force the full event walk (skip the analytic fast path)",
    )
    p.add_argument(
        "--json", action="store_true", help="print the full evaluation record"
    )
    ledger_flag(p)
    p.set_defaults(spec=OP_REGISTRY["evaluate"])


def _cfg_fuzz(sub, ledger_flag) -> None:
    p = sub.add_parser(
        "fuzz", help="seeded differential fuzz: random loops x random fault plans"
    )
    p.add_argument("--cases", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--executor-every",
        type=int,
        default=1,
        help="run the semantic-executor oracle on every k-th case",
    )
    ledger_flag(p)
    p.set_defaults(spec=OP_REGISTRY["fuzz"])


def _cfg_sweep(sub, ledger_flag) -> None:
    p = sub.add_parser("sweep", help="Tables 2/3 over the Perfect corpora")
    p.add_argument("benchmarks", nargs="*", help="subset of corpora")
    p.add_argument("--n", type=int, default=100)
    p.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = in-process)"
    )
    p.add_argument(
        "--no-cache", action="store_true", help="disable the compile/schedule cache"
    )
    p.add_argument(
        "--cache-file",
        metavar="FILE",
        default=None,
        help="persist the compile/schedule cache to FILE across runs "
        "(corrupt or stale files are discarded, counted in robust.cache.corrupt)",
    )
    p.add_argument(
        "--exact-sim",
        action="store_true",
        help="force the full event simulation (skip the analytic fast path)",
    )
    p.add_argument(
        "--batch",
        action="store_true",
        help="answer the whole grid through the vectorized batch engine "
        "(one closed-form pass; results identical to the per-loop path)",
    )
    p.add_argument(
        "--min-pool-work",
        type=int,
        default=None,
        metavar="N",
        help="loop evaluations below which --jobs stays serial "
        "(0 forces the pool; default: the perf-layer threshold)",
    )
    p.add_argument(
        "--progress",
        action="store_true",
        help="render live progress (an in-place status line on a TTY, "
        "plain log lines otherwise)",
    )
    ledger_flag(p)
    p.set_defaults(spec=OP_REGISTRY["sweep"])


def _cfg_metrics(sub, ledger_flag) -> None:
    p = sub.add_parser(
        "metrics", help="run the Perfect sweep and print collected metrics"
    )
    p.add_argument("benchmarks", nargs="*", help="subset of corpora")
    p.add_argument("--n", type=int, default=100)
    p.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = in-process)"
    )
    p.add_argument(
        "--exact-sim",
        action="store_true",
        help="force the full event simulation (skip the analytic fast path)",
    )
    p.add_argument(
        "--json", action="store_true", help="print the metrics snapshot as JSON"
    )
    ledger_flag(p)
    p.set_defaults(spec=OP_REGISTRY["metrics"])


def _cfg_explain(sub, ledger_flag) -> None:
    p = sub.add_parser(
        "explain", help="why is op X at cycle c / why is pair S's span k"
    )
    p.add_argument("loop", help="loop source file, or - for stdin")
    p.add_argument(
        "--scheduler",
        choices=["list", "sync"],
        default="sync",
        help="which scheduler's decisions to journal and explain",
    )
    p.add_argument("--issue", type=int, default=4, help="issue width")
    p.add_argument("--fu", type=int, default=1, help="units per class")
    p.add_argument(
        "--fig4",
        action="store_true",
        help="use the paper's Fig. 4 walkthrough machine instead of --issue/--fu",
    )
    p.add_argument("--n", type=int, default=100, help="iterations")
    p.add_argument(
        "--op", type=int, default=None, help="explain this instruction's placement"
    )
    p.add_argument(
        "--pair", type=int, default=None, help="explain this sync pair's span"
    )
    p.add_argument(
        "--timeline",
        action="store_true",
        help="also print the sync and cross-iteration ASCII timelines",
    )
    p.add_argument(
        "--timeline-n",
        type=int,
        default=6,
        help="iterations shown by the cross-iteration timeline views",
    )
    p.add_argument(
        "--html",
        metavar="FILE",
        default=None,
        help="write a self-contained HTML timeline to FILE",
    )
    ledger_flag(p)
    p.set_defaults(spec=OP_REGISTRY["explain"])


def _cfg_bench(sub, ledger_flag) -> None:
    from repro.obs.regress import DEFAULT_HISTORY, DEFAULT_WALL_TOLERANCE

    p = sub.add_parser(
        "bench", help="record / diff / check benchmark-regression history"
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    def _bench_common(q) -> None:
        q.add_argument(
            "--history",
            metavar="FILE",
            default=DEFAULT_HISTORY,
            help=f"JSONL history file (default: {DEFAULT_HISTORY})",
        )

    p_record = bench_sub.add_parser("record", help="run suites and append to history")
    p_record.add_argument(
        "--suite", choices=["fig", "perfect", "batch", "all"], default="all"
    )
    p_record.add_argument("--n", type=int, default=100)
    _bench_common(p_record)
    ledger_flag(p_record)
    p_record.set_defaults(spec=OP_REGISTRY["bench"], bench_command="record")

    p_list = bench_sub.add_parser("list", help="show recorded runs")
    _bench_common(p_list)
    p_list.set_defaults(spec=OP_REGISTRY["bench"], bench_command="list")

    p_diff = bench_sub.add_parser("diff", help="compare two recorded runs")
    p_diff.add_argument("run_a", help="baseline run id (prefix ok)")
    p_diff.add_argument("run_b", help="candidate run id (prefix ok)")
    _bench_common(p_diff)
    p_diff.set_defaults(spec=OP_REGISTRY["bench"], bench_command="diff")

    p_check = bench_sub.add_parser(
        "check", help="re-run suites and fail on drift vs the baseline"
    )
    p_check.add_argument(
        "--suite", choices=["fig", "perfect", "batch", "all"], default="all"
    )
    p_check.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline history file (default: --history)",
    )
    p_check.add_argument(
        "--wall-tolerance",
        type=float,
        default=DEFAULT_WALL_TOLERANCE,
        help="allowed relative wall-clock slowdown on the same machine",
    )
    p_check.add_argument(
        "--repeats",
        type=int,
        default=DEFAULT_CHECK_REPEATS,
        metavar="N",
        help="timed repeats per suite; the wall gate takes the median "
        f"(default: {DEFAULT_CHECK_REPEATS})",
    )
    p_check.add_argument(
        "--profiles",
        metavar="FILE",
        default=None,
        help="profile store for the differential attribution a tripped "
        "wall gate records (default: .repro/profiles.jsonl)",
    )
    _bench_common(p_check)
    ledger_flag(p_check)
    p_check.set_defaults(spec=OP_REGISTRY["bench"], bench_command="check")


def _cfg_prof(sub, ledger_flag) -> None:
    from repro.obs.prof import DEFAULT_HZ, DEFAULT_PROFILES

    p = sub.add_parser(
        "prof", help="record / compare sampled CPU profiles of bench suites"
    )
    prof_sub = p.add_subparsers(dest="prof_command", required=True)

    def _prof_common(q) -> None:
        q.add_argument(
            "--profiles",
            metavar="FILE",
            default=DEFAULT_PROFILES,
            help=f"JSONL profile store (default: {DEFAULT_PROFILES})",
        )

    p_record = prof_sub.add_parser(
        "record", help="profile a bench suite and append to the store"
    )
    p_record.add_argument(
        "--suite", choices=["fig", "perfect", "batch"], default="fig"
    )
    p_record.add_argument("--n", type=int, default=100)
    p_record.add_argument(
        "--hz",
        type=float,
        default=None,
        metavar="HZ",
        help=f"sampling rate (default: {DEFAULT_HZ:g})",
    )
    p_record.add_argument(
        "--min-seconds",
        type=float,
        default=1.0,
        metavar="S",
        help="loop the suite until this much wall clock accrued (default: 1.0)",
    )
    p_record.add_argument(
        "--svg",
        metavar="FILE",
        default=None,
        help="also write a self-contained SVG flame graph",
    )
    p_record.add_argument(
        "--label", default="", help="free-form label on the profile record"
    )
    _prof_common(p_record)
    ledger_flag(p_record)
    p_record.set_defaults(spec=OP_REGISTRY["prof"], prof_command="record")

    p_top = prof_sub.add_parser("top", help="hottest frames of one profile")
    p_top.add_argument(
        "profile_id",
        nargs="?",
        default=None,
        help="profile id (prefix ok; default: latest recorded)",
    )
    p_top.add_argument("--limit", type=int, default=15)
    _prof_common(p_top)
    p_top.set_defaults(spec=OP_REGISTRY["prof"], prof_command="top")

    p_diff = prof_sub.add_parser(
        "diff", help="per-frame deltas between two profiles"
    )
    p_diff.add_argument("profile_a", help="old profile id (prefix ok)")
    p_diff.add_argument("profile_b", help="new profile id (prefix ok)")
    p_diff.add_argument("--limit", type=int, default=10)
    _prof_common(p_diff)
    p_diff.set_defaults(spec=OP_REGISTRY["prof"], prof_command="diff")


def _cfg_dot(sub, ledger_flag) -> None:
    p = sub.add_parser("dot", help="emit the DFG as Graphviz DOT")
    p.add_argument("loop", help="loop source file, or - for stdin")
    p.add_argument("--title", default=None)
    p.set_defaults(spec=OP_REGISTRY["dot"])


def _cfg_runs(sub, ledger_flag) -> None:
    from repro.obs.ledger import DEFAULT_LEDGER

    p = sub.add_parser(
        "runs", help="list / show / diff runs recorded in the ledger"
    )
    runs_sub = p.add_subparsers(dest="runs_command", required=True)

    def _runs_common(q) -> None:
        q.add_argument(
            "--ledger",
            metavar="FILE",
            default=DEFAULT_LEDGER,
            help=f"JSONL run ledger to read (default: {DEFAULT_LEDGER})",
        )

    p_list = runs_sub.add_parser("list", help="show recorded runs")
    p_list.add_argument(
        "--inflight",
        action="store_true",
        help="show only unfinished in-flight service requests (admitted "
        "but never finalized — what a killed process lost)",
    )
    _runs_common(p_list)
    p_list.set_defaults(spec=OP_REGISTRY["runs"], runs_command="list")

    p_show = runs_sub.add_parser("show", help="full detail for one run")
    p_show.add_argument("run_id", help="run id (prefix ok)")
    _runs_common(p_show)
    p_show.set_defaults(spec=OP_REGISTRY["runs"], runs_command="show")

    p_diff = runs_sub.add_parser(
        "diff", help="compare two runs' final metrics snapshots"
    )
    p_diff.add_argument("run_a", help="old run id (prefix ok)")
    p_diff.add_argument("run_b", help="new run id (prefix ok)")
    p_diff.add_argument(
        "--all-metrics",
        action="store_true",
        help="compare every metrics namespace, not just the deterministic "
        "sim.*/sched.* subset",
    )
    _runs_common(p_diff)
    p_diff.set_defaults(spec=OP_REGISTRY["runs"], runs_command="diff")


def _cfg_dash(sub, ledger_flag) -> None:
    from repro.obs.ledger import DEFAULT_LEDGER
    from repro.obs.regress import DEFAULT_HISTORY

    p = sub.add_parser("dash", help="build the self-contained HTML dashboard")
    p.add_argument(
        "--out",
        metavar="FILE",
        default="dashboard.html",
        help="output HTML file (default: dashboard.html)",
    )
    p.add_argument(
        "--history",
        metavar="FILE",
        default=DEFAULT_HISTORY,
        help=f"bench history to chart (default: {DEFAULT_HISTORY})",
    )
    p.add_argument(
        "--no-walkthrough",
        action="store_true",
        help="skip the generated Fig. 4 walkthrough timelines",
    )
    p.add_argument(
        "--ledger",
        metavar="FILE",
        default=DEFAULT_LEDGER,
        help=f"JSONL run ledger to aggregate (default: {DEFAULT_LEDGER})",
    )
    p.add_argument(
        "--live",
        metavar="URL",
        default=None,
        help="build the live service dashboard from GET /v1/metrics of a "
        "running service instead of the ledger/history stores",
    )
    p.add_argument(
        "--refresh",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="poll cadence of the live dashboard (default: 2.0)",
    )
    p.add_argument(
        "--profiles",
        metavar="FILE",
        default=None,
        help="profile store whose latest flame graph the dashboard embeds "
        "(default: .repro/profiles.jsonl)",
    )
    p.set_defaults(spec=OP_REGISTRY["dash"])


def _cfg_serve(sub, ledger_flag) -> None:
    from repro.obs.ledger import DEFAULT_LEDGER

    p = sub.add_parser(
        "serve", help="run the compilation service (HTTP, long-lived)"
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=8757, help="TCP port (0 = ephemeral)"
    )
    p.add_argument(
        "--ledger",
        metavar="FILE",
        default=DEFAULT_LEDGER,
        help=f"run ledger every request is recorded in (default: {DEFAULT_LEDGER})",
    )
    p.add_argument(
        "--coalesce-window",
        type=float,
        default=0.02,
        metavar="SECONDS",
        help="how long the batcher waits to coalesce concurrent submissions "
        "into one grid (default: 0.02)",
    )
    p.add_argument(
        "--access-log",
        metavar="FILE",
        default=None,
        help="write one schema-stamped JSONL line per request (request_id, "
        "method, path, status, latency); off by default",
    )
    p.add_argument(
        "--flight",
        type=int,
        default=256,
        metavar="N",
        help="flight-recorder capacity: retain the last N request traces "
        "for GET /v1/trace/<request_id> (default: 256)",
    )
    resilience = p.add_argument_group(
        "resilience",
        "passing any of these arms a ServicePolicy (docs/robustness.md, "
        '"Operating under failure"); with none the server runs the '
        "pre-resilience configuration",
    )
    resilience.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="shed submissions (429 + Retry-After) once N are queued",
    )
    resilience.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="shed submissions once N are admitted but unfinished",
    )
    resilience.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request deadline (requests may override with "
        "deadline_s in the body); expired submissions get a 504 with a "
        "hint naming where the budget went",
    )
    resilience.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="how long a handler waits on a possibly-wedged grid before "
        "answering 504",
    )
    resilience.add_argument(
        "--breaker-threshold",
        type=int,
        default=None,
        metavar="N",
        help="consecutive batch-grid failures before the circuit opens "
        "and the service answers from the degraded per-loop path "
        "(default when armed: 5)",
    )
    resilience.add_argument(
        "--breaker-cooldown",
        type=float,
        default=None,
        metavar="SECONDS",
        help="how long an open circuit waits before half-opening with one "
        "probe grid (default when armed: 30)",
    )
    p.add_argument(
        "--recover",
        action="store_true",
        help="before serving, finalize in-flight ledger records a killed "
        "predecessor never finished (outcome: lost)",
    )
    p.add_argument(
        "--ledger-durable",
        action="store_true",
        help="fsync the ledger on every append (crash-safe at the cost of "
        "a disk flush per record)",
    )
    p.add_argument(
        "--profile-hz",
        type=float,
        default=None,
        metavar="HZ",
        help="arm the continuous sampling profiler at HZ samples/s and "
        "serve GET /v1/profile (off by default; ~97 is a good rate)",
    )
    p.set_defaults(spec=OP_REGISTRY["serve"])


def _cfg_loadtest(sub, ledger_flag) -> None:
    p = sub.add_parser(
        "loadtest", help="fire concurrent submissions at a service and measure"
    )
    p.add_argument(
        "--requests", type=int, default=1000, help="total submissions to fire"
    )
    p.add_argument(
        "--concurrency", type=int, default=16, help="concurrent client threads"
    )
    p.add_argument(
        "--url",
        default=None,
        help="service base URL (default: start an in-process server)",
    )
    p.add_argument("--n", type=int, default=100, help="iterations per loop")
    p.add_argument(
        "--out",
        metavar="FILE",
        default="BENCH_perf.json",
        help="merge the service block into this JSON file (default: BENCH_perf.json)",
    )
    p.add_argument(
        "--chaos",
        action="append",
        default=None,
        metavar="SPEC",
        help="inject failure (repeatable): kill:every=K | "
        "slow:delay=D,every=K | corrupt:every=K | malformed:prob=F | "
        "oversize:prob=F | disconnect:prob=F.  Chaos mode boots its own "
        "resilient server and gates on zero malformed responses",
    )
    p.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for the chaos plan's client-fault draws (default: 0)",
    )
    p.set_defaults(spec=OP_REGISTRY["loadtest"])


def _cfg_top(sub, ledger_flag) -> None:
    p = sub.add_parser(
        "top", help="one-line live view of a running service (polls /v1/metrics)"
    )
    p.add_argument(
        "url", help="service base URL, e.g. http://127.0.0.1:8757"
    )
    p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="poll cadence (default: 2.0)",
    )
    p.add_argument(
        "--count",
        type=int,
        default=0,
        metavar="N",
        help="stop after N polls (default: 0 = until Ctrl-C)",
    )
    p.set_defaults(spec=OP_REGISTRY["top"])


# -- Namespace → typed-op adapters ---------------------------------------------


def _run_compile(args) -> OpResult:
    return compile_op(read_source(args.loop))


def _run_schedule(args) -> OpResult:
    return schedule_op(
        read_source(args.loop),
        scheduler=args.scheduler,
        issue=args.issue,
        fu=args.fu,
        n=args.n,
        gantt=args.gantt,
        pressure=args.pressure,
    )


def _run_modulo(args) -> OpResult:
    return modulo_op(read_source(args.loop), issue=args.issue, fu=args.fu, n=args.n)


def _run_simulate(args) -> OpResult:
    return simulate_op(
        read_source(args.loop),
        scheduler=args.scheduler,
        issue=args.issue,
        fu=args.fu,
        n=args.n,
        inject=args.inject,
        exact_sim=args.exact_sim,
        executor=args.executor,
        max_cycles=args.max_cycles,
    )


def _run_evaluate(args) -> OpResult:
    return evaluate_op(
        read_source(args.loop),
        issue=args.issue,
        fu=args.fu,
        n=args.n,
        exact_sim=args.exact_sim,
        as_json=args.json,
    )


def _run_fuzz(args) -> OpResult:
    return fuzz_op(cases=args.cases, seed=args.seed, executor_every=args.executor_every)


def _run_sweep(args) -> OpResult:
    return sweep_op(
        args.benchmarks,
        n=args.n,
        jobs=args.jobs,
        no_cache=args.no_cache,
        cache_file=args.cache_file,
        exact_sim=args.exact_sim,
        batch=args.batch,
        min_pool_work=args.min_pool_work,
        progress=args.progress,
    )


def _run_metrics(args) -> OpResult:
    return metrics_op(
        args.benchmarks,
        n=args.n,
        jobs=args.jobs,
        exact_sim=args.exact_sim,
        as_json=args.json,
    )


def _run_explain(args) -> OpResult:
    return explain_op(
        read_source(args.loop),
        scheduler=args.scheduler,
        issue=args.issue,
        fu=args.fu,
        fig4=args.fig4,
        n=args.n,
        op=args.op,
        pair=args.pair,
        timeline=args.timeline,
        timeline_n=args.timeline_n,
        html=args.html,
    )


def _run_bench(args) -> OpResult:
    command = args.bench_command
    if command == "record":
        return bench_record_op(args.history, suite=args.suite, n=args.n)
    if command == "list":
        return bench_list_op(args.history)
    if command == "diff":
        return bench_diff_op(args.history, args.run_a, args.run_b)
    return bench_check_op(
        args.history,
        suite=args.suite,
        baseline=args.baseline,
        wall_tolerance=args.wall_tolerance,
        repeats=args.repeats,
        profiles=args.profiles,
    )


def _run_prof(args) -> OpResult:
    command = args.prof_command
    if command == "record":
        return prof_record_op(
            args.profiles,
            suite=args.suite,
            n=args.n,
            hz=args.hz,
            min_seconds=args.min_seconds,
            svg=args.svg,
            label=args.label,
        )
    if command == "top":
        return prof_top_op(args.profiles, args.profile_id, limit=args.limit)
    return prof_diff_op(args.profiles, args.profile_a, args.profile_b, limit=args.limit)


def _run_dot(args) -> OpResult:
    return dot_op(read_source(args.loop), title=args.title)


def _run_runs(args) -> OpResult:
    command = args.runs_command
    if command == "list":
        return runs_list_op(args.ledger, inflight=args.inflight)
    if command == "show":
        return runs_show_op(args.ledger, args.run_id)
    return runs_diff_op(args.ledger, args.run_a, args.run_b, all_metrics=args.all_metrics)


def _run_dash(args) -> OpResult:
    return dash_op(
        out=args.out,
        history=args.history,
        no_walkthrough=args.no_walkthrough,
        ledger=args.ledger,
        live=args.live,
        refresh=args.refresh,
        profiles=args.profiles,
    )


def _run_serve(args) -> OpResult:
    from repro.service.server import serve_forever_op

    return serve_forever_op(
        host=args.host,
        port=args.port,
        ledger=args.ledger,
        coalesce_window=args.coalesce_window,
        access_log=args.access_log,
        flight_recorder=args.flight,
        max_queue_depth=args.max_queue_depth,
        max_inflight=args.max_inflight,
        deadline_s=args.deadline,
        chunk_timeout=args.chunk_timeout,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        recover=args.recover,
        ledger_durable=args.ledger_durable,
        profile_hz=args.profile_hz,
    )


def _run_loadtest(args) -> OpResult:
    from repro.service.loadtest import loadtest_op

    return loadtest_op(
        requests=args.requests,
        concurrency=args.concurrency,
        url=args.url,
        n=args.n,
        out=args.out,
        chaos=args.chaos,
        chaos_seed=args.chaos_seed,
    )


def _run_top(args) -> OpResult:
    return top_op(url=args.url, interval=args.interval, count=args.count)


#: name → :class:`OpSpec`: THE registry.  The CLI's subparsers and help
#: epilogue, the server's op endpoints and its error bodies all derive
#: from this dict — add an operation here and both surfaces grow it.
OP_REGISTRY: dict[str, OpSpec] = {}


def _register(spec: OpSpec) -> None:
    OP_REGISTRY[spec.name] = spec


_register(OpSpec("compile", "compile a loop and print artifacts",
                 _cfg_compile, _run_compile, call=compile_op))
_register(OpSpec("schedule", "schedule a loop and simulate",
                 _cfg_schedule, _run_schedule, call=schedule_op))
_register(OpSpec("modulo", "software-pipeline a loop (extension)",
                 _cfg_modulo, _run_modulo, call=modulo_op))
_register(OpSpec("simulate", "simulate one loop, optionally under injected faults",
                 _cfg_simulate, _run_simulate, call=simulate_op))
_register(OpSpec("evaluate", "evaluate one loop with both schedulers (v7 record)",
                 _cfg_evaluate, _run_evaluate, call=evaluate_op))
_register(OpSpec("fuzz", "seeded differential fuzz: random loops x random fault plans",
                 _cfg_fuzz, _run_fuzz, call=fuzz_op))
_register(OpSpec("sweep", "Tables 2/3 over the Perfect corpora",
                 _cfg_sweep, _run_sweep, call=sweep_op))
_register(OpSpec("metrics", "run the Perfect sweep and print collected metrics",
                 _cfg_metrics, _run_metrics, call=metrics_op))
_register(OpSpec("explain", "why is op X at cycle c / why is pair S's span k",
                 _cfg_explain, _run_explain, call=explain_op))
_register(OpSpec("bench", "record / diff / check benchmark-regression history",
                 _cfg_bench, _run_bench))
_register(OpSpec("prof", "record / compare sampled CPU profiles (flame graphs)",
                 _cfg_prof, _run_prof))
_register(OpSpec("dot", "emit the DFG as Graphviz DOT",
                 _cfg_dot, _run_dot, call=dot_op))
_register(OpSpec("runs", "list / show / diff runs recorded in the ledger",
                 _cfg_runs, _run_runs, records=False))
_register(OpSpec("dash", "build the self-contained HTML dashboard",
                 _cfg_dash, _run_dash, call=dash_op, records=False))
_register(OpSpec("serve", "run the compilation service (HTTP, long-lived)",
                 _cfg_serve, _run_serve, http=False, records=False))
_register(OpSpec("loadtest", "fire concurrent submissions at a service and measure",
                 _cfg_loadtest, _run_loadtest, http=False, records=False))
_register(OpSpec("top", "one-line live view of a running service",
                 _cfg_top, _run_top, http=False, records=False))


def op_epilog() -> str:
    """The ``repro --help`` epilogue, generated from the registry.

    The CLI and the HTTP service list the same operations because both
    derive them from :data:`OP_REGISTRY` — there is no hand-maintained
    glue to drift.
    """
    width = max(len(name) for name in OP_REGISTRY)
    lines = ["operations (generated from repro.service.ops.OP_REGISTRY):"]
    for name, spec in OP_REGISTRY.items():
        lines.append(f"  {name:<{width}}  {spec.help}")
    lines.append(
        "\nthe same registry backs the HTTP service: `repro serve` exposes "
        "POST /v1/evaluate,\nPOST /v1/sweep, GET /v1/runs, GET /v1/healthz and "
        "POST /v1/op/<operation> (docs/service.md)."
    )
    return "\n".join(lines)


def run_op(name: str, args: argparse.Namespace) -> OpResult:
    """Dispatch one parsed invocation through the registry (the CLI's
    single call site; also the legacy ``cmd_*`` shims' engine)."""
    return OP_REGISTRY[name].run(args)
