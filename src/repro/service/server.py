"""The long-lived compilation service: HTTP over the op registry.

``repro serve`` runs :class:`ReproService`, a zero-dependency
(stdlib ``http.server``) server whose endpoints are thin clients of the
same :data:`~repro.service.ops.OP_REGISTRY` the CLI is generated from:

* ``POST /v1/evaluate`` — one loop on one machine, both schedulers.
* ``POST /v1/sweep`` — a corpus × machine grid through the batch engine.
* ``POST /v1/op/<name>`` — any registry op as ``{exit_code, stdout,
  stderr, data}`` (the CLI surface over HTTP).
* ``GET /v1/runs`` — the run ledger, every workload request recorded.
* ``GET /v1/healthz`` — uptime, request counts, batch/cache statistics.
* ``GET /v1/metrics`` — the live telemetry snapshot (schema v8):
  ``service.*`` counters/gauges/latency distributions plus the pipeline
  metrics merged in per request; ``?format=prom`` serves the Prometheus
  text exposition instead.
* ``GET /v1/trace/<request_id>`` — the retained flight-recorder trace
  for one request: HTTP root span down through ``evaluate_loop`` /
  ``schedule`` / ``simulate`` / ``sim.*``.

Requests and responses are schema-v8 stamped JSON
(:func:`repro.schema.stamped`, kinds ``result``/``error``).  Every
request is assigned a 12-hex ``request_id``, echoed in the response
body, the ``X-Request-Id`` header, the run-ledger argv and the optional
``--access-log`` JSONL line (see :mod:`repro.service.telemetry`).  The
economics of the service are in the **coalescer**: concurrent
submissions that arrive within ``coalesce_window`` seconds and share
``(n, EvalOptions.stable_hash())`` are merged into a single
:meth:`~repro.perf.batch.BatchEvaluator.evaluate_corpora` grid, so the
flat closed-form pass and the process-wide
:class:`~repro.perf.cache.CompileCache` amortize across clients.  All
evaluation runs on the single batcher thread — handler threads only
parse, enqueue, and wait — which keeps the engine's memos free of
locks.  Per-request pipeline tracing therefore happens *on the batcher
thread*: each coalesced group runs under a context-local
:func:`~repro.obs.trace.tracer_scope` /
:func:`~repro.obs.metrics.metrics_scope`, the collected spans are
fanned back to every submission in the group, and the metrics merge
into the server-wide :class:`~repro.service.telemetry.ServiceTelemetry`
registry.  With ``"stream": true`` a submission's response is chunked
ndjson: ``progress`` lines fanned out from the
:class:`~repro.obs.trace.ProgressSink` seam, then one ``result`` line.

A :class:`~repro.robust.harden.ServicePolicy` arms the resilience layer
(all off by default — an unconfigured server behaves byte-identically to
one built before the layer existed): bounded admission with honest 429
shedding (``Retry-After`` from the live drain rate), per-request
deadlines (504 with a structured ``hint`` naming where the budget went),
a circuit breaker that routes around a failing batch grid via the
per-loop path, and crash-safe in-flight journaling that ``repro serve
--recover`` replays.  A :class:`~repro.robust.chaos.ChaosPlan` injects
failure into all of it on purpose (``repro loadtest --chaos``).  See
``docs/robustness.md``, "Operating under failure".

See ``docs/service.md`` for the wire contract.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import queue
import socket
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.obs.ledger import DEFAULT_LEDGER, RunLedger, RunRecord, unfinished_inflight
from repro.obs.metrics import MetricsRegistry, metrics_scope
from repro.obs.prof import (
    active_sampler,
    flamegraph_svg,
    folded_lines,
    start_sampler,
    stop_sampler,
)
from repro.obs.regress import git_sha, machine_fingerprint
from repro.obs.trace import (
    ProgressSink,
    RecordingTracer,
    add_progress_sink,
    remove_progress_sink,
    tracer_scope,
)
from repro.options import EvalOptions
from repro.perf.batch import BatchEvaluator, batch_incompatibility
from repro.robust.chaos import ChaosKill, ChaosPlan
from repro.robust.harden import ServicePolicy
from repro.schema import SCHEMA_VERSION, stamped
from repro.sched import paper_machine
from repro.service.ops import OP_REGISTRY, OpResult
from repro.service.telemetry import (
    AccessLog,
    RequestTrace,
    ServiceTelemetry,
    new_request_id,
)

__all__ = [
    "ALLOWED_OPTION_KEYS",
    "BREAKER_NAMES",
    "MAX_REQUEST_BYTES",
    "ReproService",
    "ServiceError",
    "service_error",
    "service_result",
    "serve_forever_op",
]

#: Largest accepted request body; anything bigger is rejected with 413
#: before it is read (the corpus grids the service exists for are far
#: smaller — a cap keeps one hostile client from ballooning the heap).
MAX_REQUEST_BYTES = 1 << 20

#: ``options`` keys a request may set: the simple JSON-serializable
#: subset of :class:`~repro.options.EvalOptions`.  Everything else
#: (caches, pools, fault plans, collectors) is owned by the server —
#: requests are keyed by ``EvalOptions.stable_hash()`` so the schema
#: stays forward-compatible as the option surface grows.
ALLOWED_OPTION_KEYS = (
    "apply_restructuring",
    "exact_simulation",
    "verify",
    "check_semantics",
    "max_cycles",
)

#: The paper's machine grid (Table 2/3 columns), shared with the sweep op.
PAPER_CASES = ((2, 1), (2, 2), (4, 1), (4, 2))


class ServiceError(ValueError):
    """A client error carrying its HTTP status (4xx).

    ``headers`` ride on the response (e.g. ``Retry-After`` on a shed
    429); ``extra`` keys land in the stamped ``error`` body (e.g.
    ``retry_after_s``, the deadline ``hint``).
    """

    def __init__(
        self,
        status: int,
        message: str,
        headers: dict[str, str] | None = None,
        **extra: Any,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}
        self.extra = extra


def _service_outcome(status: int) -> str:
    """The ledger outcome for a request refused with a 4xx/5xx status."""
    return {429: "shed", 503: "refused", 504: "deadline"}.get(status, "error")


def service_result(op: str, payload: dict[str, Any]) -> dict[str, Any]:
    """A schema-stamped ``result`` line/response body."""
    return stamped("result", {"op": op, **payload})


def service_error(status: int, message: str, **extra: Any) -> dict[str, Any]:
    """A schema-stamped ``error`` response body (always lists the
    registry-derived operations, so clients can't drift on the surface)."""
    return stamped(
        "error",
        {
            "status": status,
            "error": message,
            "operations": [n for n, s in OP_REGISTRY.items() if s.http],
            **extra,
        },
    )


# -- the coalescing batcher ----------------------------------------------------


class _Submission:
    """One client's evaluation request, waiting on the batcher."""

    def __init__(self, op, jobs, n, options, stream=False, deadline_s=None):
        self.op = op
        self.jobs = jobs  # [(name, loops, machine)], the client's slice
        self.n = n
        self.options = options
        self.results = None  # list[CorpusEvaluation], job order
        self.error: BaseException | None = None
        self.coalesced = 0  # submissions sharing the grid (self included)
        self.spans: tuple = ()  # batcher-thread span dicts, for the flight recorder
        self.done = threading.Event()
        self.progress: queue.SimpleQueue | None = (
            queue.SimpleQueue() if stream else None
        )
        # Deadline bookkeeping (None = no deadline): the original budget
        # for the 504 hint, the absolute monotonic expiry the batcher
        # checks, and when admission accepted us (queue-time attribution).
        self.deadline_s = deadline_s
        self.deadline = None if deadline_s is None else time.monotonic() + deadline_s
        self.enqueued_at = time.monotonic()

    def group_key(self) -> tuple:
        return (self.n, self.options.stable_hash())

    @property
    def failures(self):
        return [f for corpus in (self.results or ()) for f in corpus.failures]


class _FanoutSink(ProgressSink):
    """Fans batcher-thread progress events out to streaming submissions."""

    def __init__(self, queues) -> None:
        self.queues = queues

    def emit(self, event) -> None:
        for q in self.queues:
            q.put(event)


#: Breaker states, gauge values and names (``service.breaker.state``).
BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN = 0, 1, 2
BREAKER_NAMES = {
    BREAKER_CLOSED: "closed",
    BREAKER_HALF_OPEN: "half-open",
    BREAKER_OPEN: "open",
}


class _Breaker:
    """Circuit breaker over the batch-grid leg.

    Only the batcher thread mutates it (every grid runs there), so no
    lock: ``threshold`` consecutive grid failures trip it ``open`` — the
    service answers from the degraded per-loop path, which shares no
    pool/grid machinery with whatever is failing — and after
    ``cooldown_s`` it ``half-open``\\ s to let exactly one probe grid
    through; the probe's outcome closes or re-opens it.  Transitions are
    reported through ``on_transition`` (ledger record + gauge).
    """

    def __init__(self, threshold: int, cooldown_s: float, on_transition=None) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.on_transition = on_transition
        self.state = BREAKER_CLOSED
        self.failures = 0  # consecutive grid failures
        self.opened_at = 0.0
        self.transitions: list[tuple[int, int, str]] = []

    def allow_grid(self) -> bool:
        if self.state == BREAKER_OPEN:
            if time.monotonic() - self.opened_at < self.cooldown_s:
                return False
            self._transition(
                BREAKER_HALF_OPEN,
                f"cooldown of {self.cooldown_s:g}s elapsed; probing the grid",
            )
        return True

    def record_success(self) -> None:
        self.failures = 0
        if self.state != BREAKER_CLOSED:
            self._transition(BREAKER_CLOSED, "probe grid succeeded")

    def record_failure(self, error: BaseException) -> None:
        self.failures += 1
        why = f"{type(error).__name__}: {error}"
        if self.state == BREAKER_HALF_OPEN:
            self.opened_at = time.monotonic()
            self._transition(BREAKER_OPEN, f"probe grid failed ({why})")
        elif self.state == BREAKER_CLOSED and self.failures >= self.threshold:
            self.opened_at = time.monotonic()
            self._transition(
                BREAKER_OPEN,
                f"{self.failures} consecutive grid failures (last: {why})",
            )

    def _transition(self, new: int, reason: str) -> None:
        old, self.state = self.state, new
        self.transitions.append((old, new, reason))
        if self.on_transition is not None:
            self.on_transition(old, new, reason)


class _Batcher(threading.Thread):
    """The single evaluation thread: drains the queue, coalesces
    same-options submissions into one grid, runs it, slices results back.

    Serializing every evaluation through one thread is what makes the
    shared :class:`BatchEvaluator` (and its compile cache) safe without
    locks on the hot path.  With a :class:`ServicePolicy` it also runs
    the resilience layer: admission control in :meth:`submit` (handler
    threads, under ``_admission_lock``), deadline expiry and the circuit
    breaker in :meth:`_run_group` (this thread only).
    """

    def __init__(
        self,
        engine: BatchEvaluator,
        window: float,
        telemetry: ServiceTelemetry | None = None,
        policy: ServicePolicy | None = None,
        chaos: ChaosPlan | None = None,
        breaker: _Breaker | None = None,
    ) -> None:
        super().__init__(name="repro-batcher", daemon=False)
        self.engine = engine
        self.window = window
        self.telemetry = telemetry
        self.policy = policy
        self.chaos = chaos if chaos else None  # an empty plan is no plan
        self.breaker = breaker
        self.queue: queue.Queue = queue.Queue()
        self._closed = threading.Event()
        # Admission state, shared with handler threads.
        self._admission_lock = threading.Lock()
        self._inflight = 0
        # Recent drain history: (monotonic finish time, submissions
        # finished).  Sizes Retry-After on shed responses.
        self._drained: deque = deque(maxlen=64)
        self._group_sequence = 0  # 1-based, drives chaos cadences

    def submit(self, submission: _Submission) -> None:
        if self._closed.is_set():
            raise ServiceError(503, "service is shutting down")
        policy = self.policy
        if policy is not None and (
            policy.max_queue_depth is not None or policy.max_inflight is not None
        ):
            with self._admission_lock:
                depth = self.queue.qsize()
                if (
                    policy.max_queue_depth is not None
                    and depth >= policy.max_queue_depth
                ):
                    raise self._shed(
                        depth,
                        f"queue depth {depth} is at the "
                        f"max_queue_depth={policy.max_queue_depth} limit",
                    )
                if (
                    policy.max_inflight is not None
                    and self._inflight >= policy.max_inflight
                ):
                    raise self._shed(
                        depth,
                        f"{self._inflight} submission(s) in flight is at the "
                        f"max_inflight={policy.max_inflight} limit",
                    )
                self._inflight += 1
        else:
            with self._admission_lock:
                self._inflight += 1
        self.queue.put(submission)
        if self.telemetry is not None:
            self.telemetry.set_queue_depth(self.queue.qsize())

    def _shed(self, depth: int, reason: str) -> ServiceError:
        """Build the honest 429: body + ``Retry-After`` sized from the
        observed drain rate (how long until ``depth`` submissions clear)."""
        retry_after = self.retry_after_estimate(depth)
        if self.telemetry is not None:
            self.telemetry.record_shed()
        return ServiceError(
            429,
            f"submission shed by admission control: {reason}; "
            "retry after the queue drains",
            headers={"Retry-After": str(max(1, math.ceil(retry_after)))},
            retry_after_s=round(retry_after, 3),
        )

    def _note_drained(self, count: int) -> None:
        with self._admission_lock:
            self._inflight -= count
            self._drained.append((time.monotonic(), count))

    def retry_after_estimate(self, depth: int) -> float:
        """Seconds until a queue of ``depth`` clears at the recent drain
        rate, clamped to [1, 60]; 1s with no history (a cold server
        drains its first window almost immediately)."""
        now = time.monotonic()
        window = [(t, c) for t, c in self._drained if now - t <= 30.0]
        total = sum(c for _, c in window)
        if total <= 0:
            return 1.0
        elapsed = max(now - window[0][0], self.window, 0.02)
        rate = total / elapsed
        return min(max((depth + 1) / rate, 1.0), 60.0)

    def stop(self) -> None:
        """Refuse new work, drain what's queued, then stop."""
        self._closed.set()
        self.queue.put(None)  # wake the drain loop
        self.join()

    def run(self) -> None:
        while True:
            submission = self.queue.get()
            if submission is None:
                if self._closed.is_set() and self.queue.empty():
                    return
                continue
            batch = [submission]
            stop_after = False  # the coalesce loop may eat stop()'s sentinel
            deadline = time.monotonic() + self.window
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    extra = self.queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if extra is None:
                    stop_after = self._closed.is_set()
                    break
                batch.append(extra)
            if self.telemetry is not None:
                self.telemetry.set_queue_depth(self.queue.qsize())
            self._run_batch(batch)
            if stop_after and self.queue.empty():
                return

    def _run_batch(self, batch: list[_Submission]) -> None:
        groups: dict[tuple, list[_Submission]] = {}
        for submission in batch:
            groups.setdefault(submission.group_key(), []).append(submission)
        for group in groups.values():
            self._run_group(group)

    def _expire(self, submission: _Submission, now: float) -> None:
        """Abandon a submission whose deadline passed while it queued:
        504 with a hint naming where the budget went, before any
        evaluation is spent on an answer nobody is waiting for."""
        waited = now - submission.enqueued_at
        submission.error = ServiceError(
            504,
            f"deadline of {submission.deadline_s:g}s expired before "
            "evaluation started",
            hint={
                "stage": "queued",
                "queued_s": round(waited, 3),
                "deadline_s": submission.deadline_s,
            },
        )
        if self.telemetry is not None:
            self.telemetry.record_deadline()
        if submission.progress is not None:
            submission.progress.put(None)
        submission.done.set()

    def _corrupt_cache(self) -> None:
        """Chaos: reload the engine's compile cache from a garbage file.
        The tolerant :meth:`CompileCache.load` turns corruption into an
        empty cache plus a ``robust.cache.corrupt`` count — exactly what
        a bit-flipped on-disk cache does to a real server — and the swap
        is safe here because only this thread touches the engine."""
        import tempfile

        from repro.perf.cache import CompileCache

        fd, path = tempfile.mkstemp(prefix="repro-chaos-cache-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(b"\x00chaos: not a cache file\xff")
            self.engine.cache = CompileCache.load(path)
        finally:
            try:
                os.unlink(path)
            except OSError:
                pass

    def _run_group(self, group: list[_Submission]) -> None:
        self._group_sequence += 1
        sequence = self._group_sequence
        total = len(group)
        now = time.monotonic()
        live = [s for s in group if s.deadline is None or s.deadline > now]
        for submission in group:
            if submission not in live:
                self._expire(submission, now)
        if not live:
            self._note_drained(total)
            return
        group = live
        if self.chaos is not None:
            delay = self.chaos.slow_delay(sequence)
            if delay > 0:
                time.sleep(delay)
            if self.chaos.corrupts_cache(sequence):
                self._corrupt_cache()
        options = group[0].options
        n = group[0].n
        jobs = [job for submission in group for job in submission.jobs]
        sink = None
        progress_queues = [s.progress for s in group if s.progress is not None]
        if progress_queues:
            sink = add_progress_sink(_FanoutSink(progress_queues))
        # Evaluation happens on this thread, so the per-request pipeline
        # trace is collected *here* under context-local scopes (handler
        # threads never see these contextvars) and fanned back to every
        # submission the group coalesced.
        tracer = RecordingTracer()
        collected = MetricsRegistry()
        try:
            with tracer_scope(tracer), metrics_scope(collected):
                reason = batch_incompatibility(options)
                use_grid = reason is None
                degraded = False
                if (
                    use_grid
                    and self.breaker is not None
                    and not self.breaker.allow_grid()
                ):
                    use_grid = False
                    degraded = True
                results = None
                if use_grid:
                    try:
                        if self.chaos is not None and self.chaos.kills_grid(
                            sequence
                        ):
                            raise ChaosKill(
                                f"chaos plan killed batch grid #{sequence}"
                            )
                        results = self.engine.evaluate_corpora(
                            jobs, n=n, options=options
                        )
                        if self.breaker is not None:
                            self.breaker.record_success()
                    except BaseException as err:
                        # Without a breaker the failure propagates (the
                        # pre-resilience contract: clients see the 500).
                        # With one, it feeds the breaker and the group
                        # falls through to the degraded per-loop path.
                        if self.breaker is None:
                            raise
                        self.breaker.record_failure(err)
                        degraded = True
                if results is None:
                    # Per-loop leg: exactness over throughput for options
                    # the closed-form plane cannot honour, and the
                    # degraded path while the breaker routes around a
                    # failing grid — still on the shared compile cache.
                    from repro.pipeline import evaluate_corpus

                    per_loop = options.replace(cache=self.engine.cache)
                    if degraded:
                        per_loop = per_loop.replace(batch=False)
                    results = [
                        evaluate_corpus(name, loops, machine, n, per_loop)
                        for name, loops, machine in jobs
                    ]
            index = 0
            for submission in group:
                count = len(submission.jobs)
                submission.results = results[index : index + count]
                index += count
        except BaseException as err:
            for submission in group:
                submission.error = err
        finally:
            if sink is not None:
                remove_progress_sink(sink)
            spans = tuple(event.as_dict() for event in tracer.events)
            if self.telemetry is not None:
                self.telemetry.record_group(len(group), collected)
            for submission in group:
                submission.coalesced = len(group)
                submission.spans = spans
                if submission.progress is not None:
                    submission.progress.put(None)  # stream terminator
                submission.done.set()
            self._note_drained(total)


# -- the server ----------------------------------------------------------------


class ReproService:
    """The long-lived service: one shared engine, one batcher, a ledger.

    ``port=0`` binds an ephemeral port (read it back from ``.port``).
    ``start()`` returns immediately; ``shutdown()`` drains in-flight
    submissions before returning (see :meth:`shutdown` for the order).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8757,
        ledger: str = DEFAULT_LEDGER,
        coalesce_window: float = 0.02,
        access_log: str | None = None,
        flight_recorder: int = 256,
        policy: ServicePolicy | None = None,
        chaos: ChaosPlan | None = None,
        ledger_durable: bool = False,
        profile_hz: float | None = None,
    ) -> None:
        self.engine = BatchEvaluator()
        self.telemetry = ServiceTelemetry(flight_capacity=flight_recorder)
        # Continuous profiling (docs/observability.md): arm the process
        # sampler for the service's lifetime.  The sampler rides the span
        # seam for stage attribution and its worker-lane profiles merge in
        # through ParallelEvaluator; GET /v1/profile serves snapshots.
        self.profiler = start_sampler(profile_hz) if profile_hz else None
        self.access_log = AccessLog(access_log) if access_log else None
        self.policy = policy
        self.chaos = chaos if chaos else None  # an empty plan is no plan
        self.breaker: _Breaker | None = None
        if policy is not None:
            self.breaker = _Breaker(
                policy.breaker_threshold,
                policy.breaker_cooldown_s,
                self._on_breaker_transition,
            )
            self.telemetry.set_breaker_state(BREAKER_CLOSED)
        self.batcher = _Batcher(
            self.engine,
            coalesce_window,
            self.telemetry,
            policy=policy,
            chaos=self.chaos,
            breaker=self.breaker,
        )
        self.ledger = RunLedger(ledger, durable=ledger_durable)
        self.coalesce_window = coalesce_window
        self.started_at = time.time()
        self.requests: dict[str, int] = {}
        self._sequence = 0
        self._lock = threading.Lock()  # ledger + counters
        self._op_lock = threading.Lock()  # generic ops mutate global state
        self._closing = threading.Event()
        self._busy = 0
        self._busy_cond = threading.Condition()
        self._connections: set = set()
        self._conn_lock = threading.Lock()
        # Per-process provenance, captured once (git subprocess is too
        # slow to pay per request).
        self._git_sha = git_sha()
        self._machine = machine_fingerprint()
        self.httpd = _Server((host, port), _Handler, self)
        self.host, self.port = self.httpd.server_address[:2]
        self._serve_thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ReproService":
        self.batcher.start()
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-service",
            kwargs={"poll_interval": 0.05},
        )
        self._serve_thread.start()
        return self

    def shutdown(self) -> None:
        """Graceful stop, in drain order: refuse new work (late requests
        get 503), stop accepting connections, wait for in-flight requests
        to complete (the batcher keeps running so their submissions
        finish), close the now-idle keep-alive sockets so their reader
        threads unblock, join every handler thread, then stop the batcher
        after its queue is empty.  Nothing in flight is orphaned —
        handler threads are non-daemon and joined by ``server_close``."""
        self._closing.set()
        self.httpd.shutdown()
        with self._busy_cond:
            self._busy_cond.wait_for(lambda: self._busy == 0, timeout=60)
        with self._conn_lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # already closed by its handler
        self.httpd.server_close()  # joins handler threads (block_on_close)
        if self.batcher.is_alive():
            self.batcher.stop()
        if self._serve_thread is not None:
            self._serve_thread.join()
        if self.access_log is not None:
            self.access_log.close()
        if self.profiler is not None and self.profiler is active_sampler():
            stop_sampler()
            self.profiler = None

    def _begin_request(self) -> None:
        with self._busy_cond:
            self._busy += 1

    def _end_request(self) -> None:
        with self._busy_cond:
            self._busy -= 1
            self._busy_cond.notify_all()

    def __enter__(self) -> "ReproService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- request accounting --------------------------------------------------

    def count(self, key: str) -> int:
        with self._lock:
            self.requests[key] = self.requests.get(key, 0) + 1
            self._sequence += 1
            return self._sequence

    def record_request(
        self,
        op: str,
        sequence: int,
        path: str,
        options_hash: str | None,
        outcome: str,
        wall_s: float,
        mode: str | None = None,
        error: str | None = None,
        failures: tuple = (),
        request_id: str | None = None,
    ) -> RunRecord:
        """Append one workload request to the run ledger.

        Built directly (not via :class:`RunRecorder`) because the global
        active-recorder slot is not thread-safe and a per-request metrics
        snapshot would dominate service latency; ``metrics`` is ``None``
        by design on service records.  The request's ``request_id`` rides
        in ``argv`` so a ledger line can be joined back to its flight-
        recorder trace and access-log line.
        """
        timestamp = time.time()
        argv = ("POST", path, f"#{sequence}")
        if request_id is not None:
            argv += (request_id,)
        payload = {
            "command": f"service {op}",
            "argv": list(argv),
            "timestamp": timestamp,
            "options_hash": options_hash,
            "outcome": outcome,
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()
        record = RunRecord(
            run_id=digest[:12],
            timestamp=timestamp,
            command=f"service {op}",
            argv=argv,
            options_hash=options_hash,
            git_sha=self._git_sha,
            machine=self._machine,
            wall_s=wall_s,
            outcome=outcome,
            error=error,
            mode=mode,
            failures=tuple(f.as_dict() for f in failures),
            metrics=None,
        )
        with self._lock:
            self.ledger.append(record)
        return record

    def _on_breaker_transition(self, old: int, new: int, reason: str) -> None:
        """Publish one breaker transition: a ``command: "service breaker"``
        run record (the durable trail an operator greps for) and the
        ``service.breaker.state`` gauge (the live one)."""
        self.telemetry.set_breaker_state(new)
        timestamp = time.time()
        argv = (BREAKER_NAMES[old], "->", BREAKER_NAMES[new])
        payload = {
            "command": "service breaker",
            "argv": list(argv),
            "timestamp": timestamp,
            "reason": reason,
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()
        record = RunRecord(
            run_id=digest[:12],
            timestamp=timestamp,
            command="service breaker",
            argv=argv,
            options_hash=None,
            git_sha=self._git_sha,
            machine=self._machine,
            wall_s=0.0,
            outcome=BREAKER_NAMES[new],
            error=reason if new != BREAKER_CLOSED else None,
            metrics=None,
        )
        with self._lock:
            self.ledger.append(record)

    def recover_inflight(self) -> list[RunRecord]:
        """Finalize in-flight work a previous process never finished.

        Scans the ledger for ``outcome: "inflight"`` service records with
        no terminal twin (same ``request_id`` in ``argv[-1]``) and
        appends an ``outcome: "lost"`` finalizer for each, so the ledger
        names exactly what a killed process had accepted but never
        answered.  Returns the finalizers (``repro serve --recover``
        prints them).
        """
        records = self.ledger.load()
        lost: list[RunRecord] = []
        for record in unfinished_inflight(records):
            final = dataclasses.replace(
                record,
                timestamp=time.time(),
                outcome="lost",
                error=(
                    "recovered by --recover: the process serving this "
                    "request exited before it finished"
                ),
            )
            with self._lock:
                self.ledger.append(final)
            lost.append(final)
        return lost

    # -- request parsing -----------------------------------------------------

    def parse_options(self, raw: Any) -> EvalOptions:
        if raw is None:
            return EvalOptions()
        if not isinstance(raw, dict):
            raise ServiceError(400, "options must be an object")
        unknown = sorted(set(raw) - set(ALLOWED_OPTION_KEYS))
        if unknown:
            raise ServiceError(
                400,
                f"unknown option key(s): {', '.join(unknown)}",
                allowed_options=list(ALLOWED_OPTION_KEYS),
            )
        try:
            return EvalOptions(**raw)
        except (TypeError, ValueError) as err:
            raise ServiceError(400, f"bad options: {err}")

    @staticmethod
    def parse_n(body: dict[str, Any]) -> int:
        n = body.get("n", 100)
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise ServiceError(400, "n must be a positive integer")
        return n

    def parse_deadline(self, body: dict[str, Any]) -> float | None:
        """The request's deadline budget: its own ``deadline_s`` if set,
        else the :class:`ServicePolicy` default, else none."""
        raw = body.get("deadline_s")
        if raw is None:
            return self.policy.deadline_s if self.policy is not None else None
        if (
            isinstance(raw, bool)
            or not isinstance(raw, (int, float))
            or raw <= 0
        ):
            raise ServiceError(400, "deadline_s must be a positive number")
        return float(raw)

    @staticmethod
    def parse_machine(raw: Any):
        raw = raw or {}
        if not isinstance(raw, dict):
            raise ServiceError(400, "machine must be an object like {\"issue\": 4, \"fu\": 1}")
        issue, fu = raw.get("issue", 4), raw.get("fu", 1)
        for label, value in (("issue", issue), ("fu", fu)):
            if not isinstance(value, int) or isinstance(value, bool) or not 1 <= value <= 64:
                raise ServiceError(400, f"machine.{label} must be an integer in [1, 64]")
        return paper_machine(issue, fu)

    def submission_for_evaluate(self, body: dict[str, Any]) -> _Submission:
        source = body.get("source")
        if not isinstance(source, str) or not source.strip():
            raise ServiceError(400, "source must be a non-empty loop string")
        from repro.ir.parser import parse_loop

        try:
            loop = parse_loop(source)
        except Exception as err:
            raise ServiceError(400, f"loop does not parse: {err}")
        machine = self.parse_machine(body.get("machine"))
        name = body.get("name", "request")
        if not isinstance(name, str):
            raise ServiceError(400, "name must be a string")
        return _Submission(
            "evaluate",
            [(name, [loop], machine)],
            self.parse_n(body),
            self.parse_options(body.get("options")),
            stream=bool(body.get("stream")),
            deadline_s=self.parse_deadline(body),
        )

    def submission_for_sweep(self, body: dict[str, Any]) -> _Submission:
        from repro.workloads import PERFECT_BENCHMARKS, perfect_suite

        suite = perfect_suite()
        names = body.get("benchmarks") or list(PERFECT_BENCHMARKS)
        if not isinstance(names, list) or not all(isinstance(b, str) for b in names):
            raise ServiceError(400, "benchmarks must be a list of corpus names")
        unknown = sorted(set(names) - set(suite))
        if unknown:
            raise ServiceError(
                400,
                f"unknown benchmark(s): {', '.join(unknown)}",
                known_benchmarks=sorted(suite),
            )
        jobs = [
            (name, suite[name], paper_machine(*case))
            for name in names
            for case in PAPER_CASES
        ]
        return _Submission(
            "sweep",
            jobs,
            self.parse_n(body),
            self.parse_options(body.get("options")),
            stream=bool(body.get("stream")),
            deadline_s=self.parse_deadline(body),
        )

    # -- submission execution ------------------------------------------------

    def run_submission(self, submission: _Submission) -> dict[str, Any]:
        """Enqueue, wait, and build the ``result`` payload (the
        non-streaming path; streaming pumps the progress queue itself).

        The wait is bounded by the submission's deadline (plus the
        policy ``chunk_timeout`` as grace for a grid already running),
        or by ``chunk_timeout`` alone when no deadline is set — so a
        wedged grid turns into an honest 504 instead of a handler thread
        parked forever.  The batcher cannot be interrupted; an abandoned
        submission still completes (and is finalized in the ledger) on
        the batcher thread.
        """
        self.batcher.submit(submission)
        timeout = None
        grace = (
            self.policy.chunk_timeout
            if self.policy is not None and self.policy.chunk_timeout is not None
            else None
        )
        if submission.deadline is not None:
            timeout = max(submission.deadline - time.monotonic(), 0.0)
            if grace is not None:
                timeout += grace
        elif grace is not None:
            timeout = grace
        if not submission.done.wait(timeout):
            waited = time.monotonic() - submission.enqueued_at
            budget = (
                f"deadline_s={submission.deadline_s:g}"
                if submission.deadline_s is not None
                else f"chunk_timeout={grace:g}"
            )
            self.telemetry.record_deadline()
            raise ServiceError(
                504,
                f"evaluation did not finish within the request budget "
                f"({budget}); the grid may be wedged",
                hint={
                    "stage": "evaluating",
                    "waited_s": round(waited, 3),
                    "deadline_s": submission.deadline_s,
                    "chunk_timeout_s": grace,
                },
            )
        return self.result_payload(submission)

    def result_payload(self, submission: _Submission) -> dict[str, Any]:
        if submission.error is not None:
            raise submission.error
        from repro.report import corpus_record, evaluation_record

        payload: dict[str, Any] = {
            "n": submission.n,
            "options_hash": submission.options.stable_hash(),
            "coalesced": submission.coalesced,
            "failures": [f.as_dict() for f in submission.failures],
        }
        if submission.op == "evaluate":
            corpus = submission.results[0]
            payload["machine"] = corpus.machine.name
            payload["evaluation"] = (
                evaluation_record(corpus.evaluations[0])
                if corpus.evaluations
                else None
            )
        else:
            payload["benchmarks"] = sorted({name for name, _, _ in submission.jobs})
            payload["cases"] = [list(case) for case in PAPER_CASES]
            payload["corpora"] = [corpus_record(c) for c in submission.results]
        return service_result(submission.op, payload)

    # -- health --------------------------------------------------------------

    def health_payload(self) -> dict[str, Any]:
        with self._lock:
            counts = dict(self.requests)
        return service_result(
            "healthz",
            {
                "status": "ok",
                "uptime_s": round(time.time() - self.started_at, 3),
                "requests": counts,
                "coalesce_window_s": self.coalesce_window,
                "batch": dataclasses.asdict(self.engine.stats),
                "cache": dataclasses.asdict(self.engine.cache.stats),
                "ledger": self.ledger.path,
                "operations": [n for n, s in OP_REGISTRY.items() if s.http],
                "git_sha": self._git_sha,
            },
        )

    def metrics_payload(self) -> dict[str, Any]:
        """The ``GET /v1/metrics`` body: the telemetry snapshot plus the
        request counters ``/v1/healthz`` reports (one poll serves both
        the live dashboard and ``repro top``)."""
        with self._lock:
            counts = dict(self.requests)
        return service_result(
            "metrics",
            {
                "uptime_s": round(time.time() - self.started_at, 3),
                "requests": counts,
                "coalesce_window_s": self.coalesce_window,
                **self.telemetry.snapshot(),
            },
        )

    def profile_payload(self) -> dict[str, Any]:
        """The ``GET /v1/profile`` JSON body: a live sampler snapshot
        (the stamped ``profile`` record inside a ``result`` envelope)."""
        assert self.profiler is not None
        return service_result(
            "profile",
            {
                "armed": True,
                "hz": self.profiler.hz,
                "profile": self.profiler.snapshot(label="service").as_dict(),
            },
        )


class _Server(ThreadingHTTPServer):
    # Handler threads are joined on server_close so shutdown can prove
    # nothing was orphaned (ThreadingHTTPServer defaults to daemonic).
    daemon_threads = False
    block_on_close = True

    def __init__(self, address, handler, service: ReproService) -> None:
        self.service = service
        super().__init__(address, handler)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = f"repro-service/v{SCHEMA_VERSION}"

    # Per-request trace state, reset by _telemetry_begin for every request
    # this (keep-alive) handler serves.
    request_id = ""
    _status = 0
    _op: str | None = None
    _outcome = "ok"
    _error: str | None = None
    _options_hash: str | None = None
    _coalesced = 0
    _flight_spans: tuple = ()
    _cpu_mark = 0

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # stderr stays quiet; --access-log writes structured JSONL

    @property
    def service(self) -> ReproService:
        return self.server.service

    def setup(self) -> None:
        super().setup()
        with self.service._conn_lock:
            self.service._connections.add(self.connection)

    def finish(self) -> None:
        with self.service._conn_lock:
            self.service._connections.discard(self.connection)
        super().finish()

    def _refuse_if_closing(self) -> bool:
        """Late requests racing the shutdown get an honest 503."""
        if not self.service._closing.is_set():
            return False
        self.close_connection = True
        try:
            self._send_json(503, service_error(503, "service is shutting down"))
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass
        return True

    # -- request telemetry -----------------------------------------------------

    def _telemetry_begin(self) -> int:
        """Assign the request id, reset per-request trace state, count the
        request in-flight.  Returns the start ``perf_counter_ns``."""
        self.request_id = new_request_id()
        self._status = 0
        self._op = None
        self._outcome = "ok"
        self._error = None
        self._options_hash = None
        self._coalesced = 0
        self._flight_spans = ()
        profiler = self.service.profiler
        self._cpu_mark = (
            profiler.thread_samples(threading.get_ident()) if profiler else 0
        )
        self.service.telemetry.request_started()
        return time.perf_counter_ns()

    def _telemetry_end(self, started_ns: int) -> None:
        """Account the finished request: latency histogram (workload
        requests only — health probes and the observability surface stay
        out, so counts match submissions), access log, flight recorder."""
        wall_s = (time.perf_counter_ns() - started_ns) / 1e9
        op = self._op or "unrouted"
        workload = self.command == "POST" and self._op is not None
        profiler = self.service.profiler
        cpu_samples = 0
        if profiler is not None:
            # Samples landed on this handler thread while the request ran.
            # Coalesced batch work executes on the batcher thread, so this
            # is handler-side attribution — non-deterministic, like every
            # service.* number.
            cpu_samples = (
                profiler.thread_samples(threading.get_ident()) - self._cpu_mark
            )
            self.service.telemetry.record_cpu(op, cpu_samples)
        self.service.telemetry.request_finished(
            op, self._status, wall_s, workload
        )
        access_log = self.service.access_log
        if access_log is not None:
            access_log.write(
                request_id=self.request_id,
                method=self.command,
                path=self.path,
                status=self._status,
                wall_s=wall_s,
                op=self._op,
            )
        if workload or self._status >= 400:
            root = {
                "name": "http.request",
                "start_ns": started_ns,
                "duration_ns": time.perf_counter_ns() - started_ns,
                "depth": 0,
                "pid": os.getpid(),
                "attrs": {
                    "method": self.command,
                    "path": urlsplit(self.path).path,
                    "status": self._status,
                },
            }
            nested = tuple(
                {**span, "depth": span.get("depth", 0) + 1}
                for span in self._flight_spans
            )
            self.service.telemetry.flight.record(
                RequestTrace(
                    request_id=self.request_id,
                    op=op,
                    method=self.command,
                    path=urlsplit(self.path).path,
                    status=self._status,
                    outcome=self._outcome,
                    wall_s=wall_s,
                    timestamp=time.time(),
                    coalesced=self._coalesced,
                    options_hash=self._options_hash,
                    error=self._error,
                    spans=(root,) + nested,
                    cpu_samples=cpu_samples,
                )
            )

    # -- plumbing ------------------------------------------------------------

    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        cors: bool = False,
        headers: dict[str, str] | None = None,
    ) -> None:
        self._status = status
        if self.request_id and "request_id" not in payload:
            payload = {**payload, "request_id": self.request_id}
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.request_id:
            self.send_header("X-Request-Id", self.request_id)
        if cors:
            # The live dashboard is a local file:// page polling this
            # loopback endpoint; read-only snapshots are safe to share.
            self.send_header("Access-Control-Allow-Origin", "*")
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._status = status
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self.request_id:
            self.send_header("X-Request-Id", self.request_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_body(self, err: ServiceError) -> None:
        self._outcome, self._error = _service_outcome(err.status), str(err)
        self._send_json(
            err.status,
            service_error(err.status, str(err), **err.extra),
            headers=err.headers,
        )

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_REQUEST_BYTES:
            # The oversized body is never read, so the connection cannot
            # be reused (the unread bytes would poison the next request
            # line on this keep-alive socket).
            self.close_connection = True
            raise ServiceError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{MAX_REQUEST_BYTES}-byte limit",
            )
        if length <= 0:
            raise ServiceError(400, "request body required (JSON object)")
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except ValueError as err:
            raise ServiceError(400, f"request body is not valid JSON: {err}")
        if not isinstance(body, dict):
            raise ServiceError(400, "request body must be a JSON object")
        return body

    def _stream_submission(self, submission: _Submission) -> None:
        """Chunked ndjson: progress lines, then the final result line
        (which echoes the ``request_id``, like every response body)."""
        self._status = 200
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        if self.request_id:
            self.send_header("X-Request-Id", self.request_id)
        self.end_headers()

        def chunk(record: dict[str, Any]) -> None:
            data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
            self.wfile.write(f"{len(data):X}\r\n".encode("ascii") + data + b"\r\n")
            self.wfile.flush()

        def terminal(record: dict[str, Any]) -> dict[str, Any]:
            if self.request_id and "request_id" not in record:
                record = {**record, "request_id": self.request_id}
            return record

        try:
            while True:
                event = submission.progress.get()
                if event is None:
                    break
                chunk(event.as_dict())
            submission.done.wait()
            if isinstance(submission.error, ServiceError):
                err = submission.error
                chunk(terminal(service_error(err.status, str(err), **err.extra)))
            elif submission.error is not None:
                chunk(terminal(service_error(
                    500,
                    f"{type(submission.error).__name__}: {submission.error}",
                )))
            else:
                chunk(terminal(self.service.result_payload(submission)))
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            submission.done.wait()  # client left; still finish accounting

    # -- verbs ---------------------------------------------------------------

    def do_GET(self) -> None:
        started_ns = self._telemetry_begin()
        try:
            if self._refuse_if_closing():
                self._outcome = "refused"
                return
            self.service._begin_request()
            try:
                self._do_get()
            finally:
                self.service._end_request()
        finally:
            self._telemetry_end(started_ns)

    def _do_get(self) -> None:
        path = urlsplit(self.path).path
        if path == "/v1/healthz":
            self._op = "healthz"
            self.service.count("healthz")
            self._send_json(200, self.service.health_payload())
        elif path == "/v1/metrics":
            self._op = "metrics"
            self.service.count("metrics")
            query = parse_qs(urlsplit(self.path).query)
            if query.get("format", [""])[0] == "prom":
                self._send_text(
                    200,
                    self.service.telemetry.prometheus(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            else:
                self._send_json(200, self.service.metrics_payload(), cors=True)
        elif path.startswith("/v1/trace/"):
            self._op = "trace"
            self.service.count("trace")
            wanted = path[len("/v1/trace/"):]
            trace = self.service.telemetry.flight.get(wanted)
            if trace is None:
                self._send_json(
                    404,
                    service_error(
                        404,
                        f"no retained trace for request_id {wanted!r} "
                        "(the flight recorder keeps the most recent "
                        f"{self.service.telemetry.flight.capacity} requests)",
                        known_request_ids=self.service.telemetry.flight.ids()[-20:],
                    ),
                    cors=True,
                )
            else:
                # the envelope op is "trace"; the traced request's own
                # routed op rides along as request_op
                doc = trace.as_dict()
                doc["request_op"] = doc.pop("op")
                self._send_json(
                    200, service_result("trace", doc), cors=True
                )
        elif path == "/v1/profile":
            self._op = "profile"
            self.service.count("profile")
            profiler = self.service.profiler
            if profiler is None:
                self._send_json(
                    404,
                    service_error(
                        404,
                        "profiling is not armed on this server",
                        hint="start the server with repro serve --profile-hz N",
                    ),
                    cors=True,
                )
            else:
                query = parse_qs(urlsplit(self.path).query)
                fmt = query.get("format", ["json"])[0]
                if fmt == "folded":
                    profile = profiler.snapshot(label="service")
                    self._send_text(
                        200,
                        "\n".join(folded_lines(profile)) + "\n",
                        "text/plain; charset=utf-8",
                    )
                elif fmt == "svg":
                    profile = profiler.snapshot(label="service")
                    self._send_text(
                        200,
                        flamegraph_svg(profile, title="repro service CPU profile"),
                        "image/svg+xml; charset=utf-8",
                    )
                else:
                    self._send_json(200, self.service.profile_payload(), cors=True)
        elif path == "/v1/runs":
            self._op = "runs"
            self.service.count("runs")
            query = parse_qs(urlsplit(self.path).query)
            records = self.service.ledger.load()
            limit = int(query.get("limit", ["0"])[0] or 0)
            shown = records[-limit:] if limit > 0 else records
            self._send_json(
                200,
                service_result(
                    "runs",
                    {
                        "count": len(records),
                        "runs": [r.as_dict() for r in shown],
                        "ledger": self.service.ledger.path,
                    },
                ),
            )
        else:
            self._send_json(
                404,
                service_error(
                    404,
                    f"no such endpoint: GET {path}",
                    endpoints=[
                        "GET /v1/healthz",
                        "GET /v1/metrics",
                        "GET /v1/profile?format=folded|svg",
                        "GET /v1/runs",
                        "GET /v1/trace/<request_id>",
                        "POST /v1/evaluate",
                        "POST /v1/sweep",
                        "POST /v1/op/<name>",
                    ],
                ),
            )

    def do_POST(self) -> None:
        started_ns = self._telemetry_begin()
        try:
            if self._refuse_if_closing():
                self._outcome = "refused"
                return
            self.service._begin_request()
            try:
                self._do_post()
            finally:
                self.service._end_request()
        finally:
            self._telemetry_end(started_ns)

    def _do_post(self) -> None:
        path = urlsplit(self.path).path
        started = time.perf_counter()
        try:
            if path == "/v1/evaluate":
                self._handle_submission(
                    path, started, self.service.submission_for_evaluate
                )
            elif path == "/v1/sweep":
                self._handle_submission(
                    path, started, self.service.submission_for_sweep
                )
            elif path.startswith("/v1/op/"):
                self._handle_op(path, started, path[len("/v1/op/"):])
            else:
                raise ServiceError(
                    404,
                    f"no such endpoint: POST {path}",
                    endpoints=["POST /v1/evaluate", "POST /v1/sweep",
                               "POST /v1/op/<name>"],
                )
        except ServiceError as err:
            self._send_error_body(err)
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as err:  # a bug, not a bad request: say so honestly
            self._send_json(
                500, service_error(500, f"{type(err).__name__}: {err}")
            )

    def _handle_submission(self, path, started, build) -> None:
        body = self._read_body()
        submission = build(body)
        self._op = submission.op
        sequence = self.service.count(submission.op)
        options_hash = submission.options.stable_hash()
        self._options_hash = options_hash
        policy = self.service.policy
        if policy is not None and policy.journal_inflight:
            # Crash-safe journaling: the request is on disk as "inflight"
            # before any evaluation, and finalized by the terminal record
            # below (same request_id in argv).  A process killed between
            # the two leaves exactly the records `serve --recover` names.
            self.service.record_request(
                submission.op,
                sequence,
                path,
                options_hash,
                "inflight",
                0.0,
                request_id=self.request_id,
            )
        outcome, error, payload = "ok", None, None
        try:
            if submission.progress is not None:
                self.service.batcher.submit(submission)
                self._stream_submission(submission)
                if isinstance(submission.error, ServiceError):
                    outcome = _service_outcome(submission.error.status)
                    error = str(submission.error)
                elif submission.error is not None:
                    outcome, error = "error", (
                        f"{type(submission.error).__name__}: {submission.error}"
                    )
            else:
                payload = self.service.run_submission(submission)
        except ServiceError as err:
            # An honest refusal (shed 429 / shutdown 503 / deadline 504)
            # still gets its terminal ledger record before the response —
            # "every submission answered or honestly shed" includes the
            # ledger trail.
            self.service.record_request(
                submission.op,
                sequence,
                path,
                options_hash,
                _service_outcome(err.status),
                time.perf_counter() - started,
                error=str(err),
                request_id=self.request_id,
            )
            raise
        except BaseException as err:
            outcome, error = "error", f"{type(err).__name__}: {err}"
        if outcome == "ok" and submission.failures:
            outcome = "quarantined"
        self._outcome, self._error = outcome, error
        self._coalesced = submission.coalesced
        self._flight_spans = submission.spans
        # Ledger first, response second (non-streaming path): a client
        # that has read its 200 must find its run record already on disk.
        self.service.record_request(
            submission.op,
            sequence,
            path,
            options_hash,
            outcome,
            time.perf_counter() - started,
            mode=f"coalesced batch of {submission.coalesced} submission(s)",
            error=error,
            failures=tuple(submission.failures),
            request_id=self.request_id,
        )
        if payload is not None:
            self._send_json(200, payload)
        elif submission.progress is None and error is not None:
            self._send_json(500, service_error(500, error))

    def _handle_op(self, path, started, name) -> None:
        spec = OP_REGISTRY.get(name)
        if spec is None or not spec.http or spec.call is None:
            raise ServiceError(
                404,
                f"no such operation: {name!r}",
            )
        body = self._read_body()
        import inspect

        allowed = set(inspect.signature(spec.call).parameters)
        unknown = sorted(set(body) - allowed)
        if unknown:
            raise ServiceError(
                400,
                f"unknown argument(s) for op {name!r}: {', '.join(unknown)}",
                allowed_arguments=sorted(allowed),
            )
        self._op = f"op:{name}"
        sequence = self.service.count(f"op:{name}")
        outcome, error = "ok", None
        # This op runs on the handler thread, so its pipeline trace is
        # collected here (context-local: concurrent handlers don't mix)
        # and its metrics merge into the server-wide registry.
        tracer = RecordingTracer()
        collected = MetricsRegistry()
        try:
            # Ops may toggle process-global state (metrics registries,
            # decision journals); serialize them.
            with self.service._op_lock:
                with tracer_scope(tracer), metrics_scope(collected):
                    result: OpResult = spec.call(**body)
        except TypeError as err:
            raise ServiceError(400, f"bad arguments for op {name!r}: {err}")
        except BaseException as err:
            outcome, error = "error", f"{type(err).__name__}: {err}"
            self._send_json(500, service_error(500, error))
            result = None
        finally:
            self._flight_spans = tuple(ev.as_dict() for ev in tracer.events)
            self.service.telemetry.absorb(collected)
        if result is not None:
            if result.exit_code != 0:
                outcome = f"exit {result.exit_code}"
            self._send_json(
                200,
                service_result(
                    name,
                    {
                        "exit_code": result.exit_code,
                        "stdout": result.stdout,
                        "stderr": result.stderr,
                        "data": result.data,
                    },
                ),
            )
        self._outcome, self._error = outcome, error
        self.service.record_request(
            f"op {name}",
            sequence,
            path,
            None,
            outcome,
            time.perf_counter() - started,
            error=error,
            request_id=self.request_id,
        )


def serve_forever_op(
    host: str = "127.0.0.1",
    port: int = 8757,
    ledger: str = DEFAULT_LEDGER,
    coalesce_window: float = 0.02,
    access_log: str | None = None,
    flight_recorder: int = 256,
    max_queue_depth: int | None = None,
    max_inflight: int | None = None,
    deadline_s: float | None = None,
    chunk_timeout: float | None = None,
    breaker_threshold: int | None = None,
    breaker_cooldown_s: float | None = None,
    recover: bool = False,
    ledger_durable: bool = False,
    profile_hz: float | None = None,
) -> OpResult:
    """``repro serve``: run the service in the foreground until SIGINT.

    Unlike every other op this one writes to the real stderr as it goes —
    it is a long-lived foreground process, and its output (the listening
    line, the shutdown line) is operational, not a result.

    Passing any resilience knob arms a :class:`ServicePolicy`; with none
    of them the server runs exactly the pre-resilience configuration.
    ``recover=True`` finalizes in-flight work a killed predecessor left
    in the ledger before serving.
    """
    import sys

    policy = None
    if any(
        value is not None
        for value in (
            max_queue_depth,
            max_inflight,
            deadline_s,
            chunk_timeout,
            breaker_threshold,
            breaker_cooldown_s,
        )
    ):
        defaults = ServicePolicy()
        policy = ServicePolicy(
            max_queue_depth=max_queue_depth,
            max_inflight=max_inflight,
            deadline_s=deadline_s,
            chunk_timeout=chunk_timeout,
            breaker_threshold=(
                breaker_threshold
                if breaker_threshold is not None
                else defaults.breaker_threshold
            ),
            breaker_cooldown_s=(
                breaker_cooldown_s
                if breaker_cooldown_s is not None
                else defaults.breaker_cooldown_s
            ),
        )
    service = ReproService(
        host=host,
        port=port,
        ledger=ledger,
        coalesce_window=coalesce_window,
        access_log=access_log,
        flight_recorder=flight_recorder,
        policy=policy,
        ledger_durable=ledger_durable,
        profile_hz=profile_hz,
    )
    if recover:
        lost = service.recover_inflight()
        if service.ledger.torn_tail:
            print(
                "recover: the ledger's final line was torn (a process died "
                "mid-append); skipped and counted",
                file=sys.stderr,
            )
        if lost:
            print(
                f"recover: finalized {len(lost)} in-flight request(s) a "
                "previous process never finished:",
                file=sys.stderr,
            )
            for record in lost:
                request_id = record.argv[-1] if record.argv else "?"
                print(
                    f"  lost {record.command} request_id={request_id} "
                    f"(run {record.run_id})",
                    file=sys.stderr,
                )
        else:
            print("recover: no unfinished in-flight requests", file=sys.stderr)
    service.start()
    print(
        f"repro service v{SCHEMA_VERSION} on http://{service.host}:{service.port} "
        f"({len([n for n, s in OP_REGISTRY.items() if s.http])} operations, "
        f"ledger {ledger}; Ctrl-C to stop)",
        file=sys.stderr,
        flush=True,
    )
    if profile_hz:
        print(
            f"profiling armed at {profile_hz:g} hz "
            "(GET /v1/profile?format=folded|svg)",
            file=sys.stderr,
            flush=True,
        )
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        print("shutting down: draining in-flight submissions...", file=sys.stderr)
        service.shutdown()
        print("service stopped", file=sys.stderr)
    return OpResult()
