"""``repro loadtest``: fire concurrent submissions at a service, measure.

The service's acceptance bar (docs/service.md): ≥ 1000 concurrent loop
submissions against one server with **zero errors**, **zero
quarantines**, a **cross-request compile-cache hit rate above zero**
(the whole point of the long-lived process), and **every request in the
run ledger**.  Since the telemetry layer (schema v8) it also checks the
server's own observability against the client's ground truth: the
``service.request.count`` counter at ``GET /v1/metrics`` must equal the
submissions fired, the server-side p99 must agree with the client-side
p99, and ``GET /v1/trace/<request_id>`` must return a full span tree
for a request the harness just made.  This harness drives that bar and
records throughput, shared-cache hit rate, and p50/p95/p99 latency into
the ``service`` block of ``BENCH_perf.json`` (``make bench-service``).

By default it boots an in-process :class:`~repro.service.server.
ReproService` on an ephemeral port with a scratch ledger; point
``--url`` at a running server to load-test it instead (the ledger
check is skipped — the harness can't know how many requests the
server had already served).

``--chaos SPEC`` switches to the chaos harness (``make chaos-smoke``):
the in-process server is armed with a :class:`~repro.robust.harden.
ServicePolicy` and the parsed :class:`~repro.robust.chaos.ChaosPlan`,
clients deterministically inject malformed bodies, oversized bodies and
mid-stream disconnects, and the server side injects grid kills, slow
groups and cache corruption.  The acceptance bar flips from "zero
errors" to *honesty under failure*: **zero malformed/unstamped
responses**, every submission answered or honestly shed (429 with
``Retry-After`` / 503 / 504 with a ``hint``), the breaker's transitions
on the ledger, and a complete ledger trail (every admitted submission
journaled and finalized).  The chaos summary is merged as the ``chaos``
sub-block of the ``service`` block in ``BENCH_perf.json``.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from http.client import HTTPConnection
from typing import Any
from urllib.parse import urlsplit

from repro.obs.metrics import percentile
from repro.schema import SCHEMA_VERSION, stamped
from repro.service.ops import OpResult

__all__ = ["loadtest_op"]

#: Distinct loop sources cycled across submissions: few enough that the
#: shared cache pays off across requests, varied enough (distances,
#: statement mixes) that the engine can't answer everything from one
#: compile.
LOOP_SOURCES = tuple(
    f"""
DO I = 1, 100
  S1: B(I) = A(I-{d}) + E(I+1)
  S2: G(I-3) = A(I-{d + 1}) * E(I+2)
  S3: A(I) = B(I) + C(I+{d + 2})
ENDDO
"""
    for d in range(1, 9)
)

#: Machine grid cycled across submissions (the paper's Table 2 columns).
MACHINE_CASES = ((2, 1), (2, 2), (4, 1), (4, 2))


class _Client(threading.Thread):
    """One persistent connection issuing its share of the submissions."""

    def __init__(self, host, port, payloads, take, n):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.payloads = payloads
        self.take = take  # () -> next request index or None
        self.n = n
        self.latencies: list[float] = []
        self.errors: list[str] = []
        self.quarantines = 0
        self.coalesced_peak = 1
        self.last_request_id: str | None = None

    def run(self) -> None:
        connection = HTTPConnection(self.host, self.port, timeout=60)
        try:
            while True:
                index = self.take()
                if index is None:
                    return
                body = self.payloads[index % len(self.payloads)]
                started = time.perf_counter()
                try:
                    connection.request(
                        "POST",
                        "/v1/evaluate",
                        body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    data = json.loads(response.read())
                except Exception as err:
                    self.errors.append(f"{type(err).__name__}: {err}")
                    connection.close()
                    connection = HTTPConnection(self.host, self.port, timeout=60)
                    continue
                self.latencies.append(time.perf_counter() - started)
                if response.status != 200:
                    self.errors.append(
                        f"HTTP {response.status}: {data.get('error', '?')}"
                    )
                    continue
                if data.get("failures"):
                    self.quarantines += len(data["failures"])
                self.coalesced_peak = max(
                    self.coalesced_peak, data.get("coalesced", 1)
                )
                if data.get("request_id"):
                    self.last_request_id = data["request_id"]
        finally:
            connection.close()


def _get_json(host: str, port: int, path: str) -> dict[str, Any]:
    connection = HTTPConnection(host, port, timeout=60)
    try:
        connection.request("GET", path)
        return json.loads(connection.getresponse().read())
    finally:
        connection.close()


def _probe_trace(host: str, port: int, n: int) -> tuple[str | None, list[str]]:
    """One cold submission, then its flight-recorder trace's span names.

    The loop source (distance 97) is deliberately outside
    :data:`LOOP_SOURCES`, so the engine cannot answer from its memos and
    the trace must reach the ``sim.*`` spans."""
    probe = json.dumps(
        {
            "source": LOOP_SOURCES[0].replace("I-1", "I-97"),
            "machine": {"issue": 4, "fu": 1},
            "n": n,
            "name": "trace-probe",
        }
    )
    connection = HTTPConnection(host, port, timeout=60)
    try:
        connection.request(
            "POST",
            "/v1/evaluate",
            body=probe,
            headers={"Content-Type": "application/json"},
        )
        data = json.loads(connection.getresponse().read())
    except Exception:
        return None, []
    finally:
        connection.close()
    request_id = data.get("request_id")
    if not request_id:
        return None, []
    # The flight recorder is written after the response bytes are
    # flushed (telemetry never sits on the request path), so poll
    # briefly rather than racing the handler's finally block.
    deadline = time.monotonic() + 2.0
    while True:
        trace = _get_json(host, port, f"/v1/trace/{request_id}")
        spans = [s.get("name", "") for s in trace.get("spans", [])]
        if spans or time.monotonic() >= deadline:
            return request_id, spans
        time.sleep(0.02)


def _merge_bench_file(path: str, block: dict[str, Any]) -> None:
    existing: dict[str, Any] = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict):
                existing = loaded
        except ValueError:
            pass  # a torn or foreign file must not sink the bench run
    existing["schema_version"] = SCHEMA_VERSION
    existing["service"] = block
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(existing, handle, indent=2, sort_keys=True)
        handle.write("\n")


# -- the chaos harness ---------------------------------------------------------


def _is_stamped(data: Any) -> bool:
    """Is this response body an honest schema-stamped document?"""
    return (
        isinstance(data, dict)
        and isinstance(data.get("schema_version"), int)
        and data.get("kind") in ("result", "error")
    )


def _check_response(
    status: int, data: Any, headers: dict[str, str]
) -> str | None:
    """The chaos bar for one response: stamped, and honest about refusals
    (429 carries Retry-After + retry_after_s, 504 carries a hint).
    Returns the defect, or None."""
    if not _is_stamped(data):
        return f"HTTP {status} body is not a stamped result/error: {data!r:.120}"
    if status == 429:
        if "retry-after" not in {k.lower() for k in headers}:
            return "429 without a Retry-After header"
        if "retry_after_s" not in data:
            return "429 body without retry_after_s"
    if status == 504 and "hint" not in data:
        return "504 body without a structured hint"
    return None


class _ChaosClient(threading.Thread):
    """One loadtest client that sometimes turns hostile, per the plan."""

    def __init__(self, host, port, payloads, take, plan):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.payloads = payloads
        self.take = take
        self.plan = plan
        self.outcomes = {
            "answered": 0,  # 200 result
            "shed": 0,  # 429
            "refused": 0,  # 503
            "expired": 0,  # 504
            "server_error": 0,  # 5xx other than 504
            "client_error": 0,  # 4xx answers to injected hostile requests
        }
        self.injected = {"malformed": 0, "oversize": 0, "disconnect": 0}
        self.malformed: list[str] = []  # responses that broke the contract
        self.transport_errors: list[str] = []

    def _account(self, status: int, data: Any, headers: dict[str, str]) -> None:
        defect = _check_response(status, data, headers)
        if defect is not None:
            self.malformed.append(defect)
            return
        if status == 200:
            self.outcomes["answered"] += 1
        elif status == 429:
            self.outcomes["shed"] += 1
        elif status == 503:
            self.outcomes["refused"] += 1
        elif status == 504:
            self.outcomes["expired"] += 1
        elif status >= 500:
            self.outcomes["server_error"] += 1
        else:
            self.outcomes["client_error"] += 1

    def _roundtrip(self, connection, body, headers=None) -> None:
        connection.request(
            "POST",
            "/v1/evaluate",
            body=body,
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        response = connection.getresponse()
        raw = response.read()
        try:
            data = json.loads(raw)
        except ValueError:
            data = raw
        self._account(response.status, data, dict(response.getheaders()))

    def _inject_oversize(self) -> None:
        # The server refuses on the Content-Length header alone (it never
        # reads the body) and then hangs up, so claim an oversized body
        # without paying to send one — actually sending it races the 413
        # into a broken pipe.  Own connection: the refused socket cannot
        # be reused.
        from repro.service.server import MAX_REQUEST_BYTES

        connection = HTTPConnection(self.host, self.port, timeout=60)
        try:
            connection.putrequest("POST", "/v1/evaluate")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", str(MAX_REQUEST_BYTES + 1))
            connection.endheaders()
            response = connection.getresponse()
            raw = response.read()
            try:
                data = json.loads(raw)
            except ValueError:
                data = raw
            self._account(response.status, data, dict(response.getheaders()))
        finally:
            connection.close()

    def _inject_disconnect(self, index: int) -> None:
        # A streaming submission abandoned mid-stream: read the response
        # head, then hang up.  The server must neither wedge nor leak —
        # the submission still finishes (and is finalized in the ledger)
        # on the batcher thread.
        body = json.loads(self.payloads[index % len(self.payloads)])
        body["stream"] = True
        connection = HTTPConnection(self.host, self.port, timeout=60)
        try:
            connection.request(
                "POST",
                "/v1/evaluate",
                body=json.dumps(body),
                headers={"Content-Type": "application/json"},
            )
            connection.sock.recv(64)  # the status line, at most
        except Exception:
            pass  # the disconnect is the point; nothing to validate
        finally:
            connection.close()

    def run(self) -> None:
        connection = HTTPConnection(self.host, self.port, timeout=60)
        try:
            while True:
                index = self.take()
                if index is None:
                    return
                fault = self.plan.client_fault(index)
                try:
                    if fault == "malformed":
                        self.injected["malformed"] += 1
                        self._roundtrip(connection, b"{this is not json")
                    elif fault == "oversize":
                        self.injected["oversize"] += 1
                        self._inject_oversize()
                    elif fault == "disconnect":
                        self.injected["disconnect"] += 1
                        self._inject_disconnect(index)
                    else:
                        self._roundtrip(
                            connection,
                            self.payloads[index % len(self.payloads)],
                        )
                except Exception as err:
                    self.transport_errors.append(f"{type(err).__name__}: {err}")
                    connection.close()
                    connection = HTTPConnection(self.host, self.port, timeout=60)
        finally:
            connection.close()


def _chaos_loadtest(
    requests: int,
    concurrency: int,
    n: int,
    out: str,
    specs: list[str],
    seed: int,
) -> OpResult:
    """The chaos harness: a resilient in-process server under a seeded
    :class:`ChaosPlan`, gated on honesty rather than on zero failures."""
    import io

    from repro.robust.chaos import ChaosPlan
    from repro.robust.harden import ServicePolicy
    from repro.service.server import ReproService

    buffer_out, buffer_err = io.StringIO(), io.StringIO()
    try:
        plan = ChaosPlan.parse(specs, seed=seed, label="loadtest --chaos")
    except ValueError as err:
        return OpResult(exit_code=2, stderr=f"{err}\n")
    policy = ServicePolicy(
        max_queue_depth=max(64, concurrency * 8),
        deadline_s=30.0,
        chunk_timeout=60.0,
        breaker_threshold=3,
        breaker_cooldown_s=0.5,
        journal_inflight=True,
    )
    scratch = tempfile.mkdtemp(prefix="repro-chaos-")
    ledger_path = os.path.join(scratch, "ledger.jsonl")
    server = ReproService(
        port=0, ledger=ledger_path, policy=policy, chaos=plan
    ).start()
    host, port = server.host, server.port

    payloads = [
        json.dumps(
            {
                "source": source,
                "machine": {"issue": issue, "fu": fu},
                "n": n,
                "name": f"chaos-{index}",
            }
        )
        for index, (source, (issue, fu)) in enumerate(
            (s, m) for s in LOOP_SOURCES for m in MACHINE_CASES
        )
    ]
    counter = {"next": 0}
    counter_lock = threading.Lock()

    def take() -> int | None:
        with counter_lock:
            if counter["next"] >= requests:
                return None
            counter["next"] += 1
            return counter["next"] - 1

    clients = [
        _ChaosClient(host, port, payloads, take, plan)
        for _ in range(concurrency)
    ]
    started = time.perf_counter()
    for client in clients:
        client.start()
    for client in clients:
        client.join()
    wall = time.perf_counter() - started

    outcomes = {
        key: sum(c.outcomes[key] for c in clients)
        for key in clients[0].outcomes
    }
    injected = {
        key: sum(c.injected[key] for c in clients) for key in clients[0].injected
    }
    malformed = [m for c in clients for m in c.malformed]
    transport_errors = [e for c in clients for e in c.transport_errors]

    telemetry = _get_json(host, port, "/v1/metrics")
    gauges = telemetry.get("metrics", {}).get("gauges", {})
    breaker_gauge = gauges.get("service.breaker.state")
    server.shutdown()

    # The ledger trail, read after a clean shutdown: every submission that
    # reached admission must have an inflight journal line and a terminal
    # twin; nothing may be left unfinished.
    from repro.obs.ledger import RunLedger, unfinished_inflight

    records = RunLedger(ledger_path).load()
    evaluate_records = [r for r in records if r.command == "service evaluate"]
    inflight_journal = [r for r in evaluate_records if r.outcome == "inflight"]
    terminal = [r for r in evaluate_records if r.outcome != "inflight"]
    unfinished = unfinished_inflight(records)
    breaker_records = [r for r in records if r.command == "service breaker"]

    # Submissions that reach admission: everything except the hostile
    # bodies rejected while parsing (malformed / oversize never build a
    # submission).
    admitted = requests - injected["malformed"] - injected["oversize"]
    answered_total = sum(outcomes.values()) + injected["disconnect"]

    block = {
        "plan": list(specs),
        "seed": seed,
        "requests": requests,
        "concurrency": concurrency,
        "wall_s": round(wall, 4),
        "outcomes": outcomes,
        "injected": injected,
        "malformed_responses": len(malformed),
        "transport_errors": len(transport_errors),
        "breaker_transitions": len(breaker_records),
        "breaker_state": breaker_gauge,
        "ledger_inflight_journal": len(inflight_journal),
        "ledger_terminal": len(terminal),
        "ledger_unfinished": len(unfinished),
    }

    print(
        f"chaos: {requests} submissions x {concurrency} clients in "
        f"{wall:.2f}s under {' '.join(specs)} (seed {seed})",
        file=buffer_out,
    )
    print(
        f"outcomes: {outcomes['answered']} answered, {outcomes['shed']} shed "
        f"(429), {outcomes['refused']} refused (503), {outcomes['expired']} "
        f"expired (504), {outcomes['server_error']} server error(s), "
        f"{outcomes['client_error']} rejected hostile request(s)",
        file=buffer_out,
    )
    print(
        f"injected: {injected['malformed']} malformed, {injected['oversize']} "
        f"oversize, {injected['disconnect']} disconnect(s); "
        f"breaker transitions {len(breaker_records)}",
        file=buffer_out,
    )
    print(
        f"ledger: {len(inflight_journal)} inflight journal line(s), "
        f"{len(terminal)} terminal record(s), {len(unfinished)} unfinished",
        file=buffer_out,
    )

    failed = []
    if malformed:
        failed.append(
            f"{len(malformed)} malformed response(s); first: {malformed[0]}"
        )
    if transport_errors:
        failed.append(
            f"{len(transport_errors)} transport error(s); "
            f"first: {transport_errors[0]}"
        )
    if outcomes["server_error"]:
        failed.append(
            f"{outcomes['server_error']} 5xx response(s): the breaker/"
            "degraded path should have absorbed grid failures"
        )
    if answered_total != requests:
        failed.append(
            f"accounted for {answered_total} of {requests} submission(s)"
        )
    if len(terminal) != admitted:
        failed.append(
            f"ledger has {len(terminal)} terminal record(s) for "
            f"{admitted} admitted submission(s)"
        )
    if len(inflight_journal) != admitted:
        failed.append(
            f"ledger has {len(inflight_journal)} inflight journal line(s) "
            f"for {admitted} admitted submission(s)"
        )
    if unfinished:
        failed.append(
            f"{len(unfinished)} in-flight record(s) left unfinished after a "
            "clean shutdown"
        )
    if breaker_gauge is None:
        failed.append("service.breaker.state gauge missing from /v1/metrics")
    trips = any(
        k.every == 1 and (k.times is None or k.times >= policy.breaker_threshold)
        for k in plan.kills
    )
    if trips and len(breaker_records) < 2:
        failed.append(
            "the kill cadence should have tripped the breaker (open + "
            f"close >= 2 transitions; ledger has {len(breaker_records)})"
        )
    for reason in failed:
        print(f"FAIL: {reason}", file=buffer_err)

    # Ride in BENCH_perf.json without clobbering the standard service
    # block: chaos is a sub-block.
    existing_service: dict[str, Any] = {}
    if os.path.exists(out):
        try:
            with open(out, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict) and isinstance(
                loaded.get("service"), dict
            ):
                existing_service = loaded["service"]
        except ValueError:
            pass
    _merge_bench_file(out, {**existing_service, "chaos": block})
    print(f"merged chaos block into {out}", file=buffer_err)

    return OpResult(
        exit_code=1 if failed else 0,
        stdout=buffer_out.getvalue(),
        stderr=buffer_err.getvalue(),
        data=stamped(None, dict(block)),
    )


def loadtest_op(
    requests: int = 1000,
    concurrency: int = 16,
    url: str | None = None,
    n: int = 100,
    out: str = "BENCH_perf.json",
    chaos: list[str] | None = None,
    chaos_seed: int = 0,
) -> OpResult:
    """Fire ``requests`` concurrent ``POST /v1/evaluate`` submissions.

    With ``chaos`` specs the run switches to the chaos harness (own
    resilient server, injected failure, honesty bar) — see the module
    docstring.
    """
    import io

    if chaos:
        if url is not None:
            return OpResult(
                exit_code=2,
                stderr="--chaos boots its own resilient server; "
                "it cannot target --url\n",
            )
        return _chaos_loadtest(requests, concurrency, n, out, list(chaos), chaos_seed)

    buffer_out, buffer_err = io.StringIO(), io.StringIO()
    own_server = None
    scratch = None
    if url is None:
        from repro.service.server import ReproService

        scratch = tempfile.mkdtemp(prefix="repro-loadtest-")
        own_server = ReproService(
            port=0, ledger=os.path.join(scratch, "ledger.jsonl")
        ).start()
        host, port = own_server.host, own_server.port
    else:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        host, port = parts.hostname or "127.0.0.1", parts.port or 80

    payloads = [
        json.dumps(
            {
                "source": source,
                "machine": {"issue": issue, "fu": fu},
                "n": n,
                "name": f"load-{index}",
            }
        )
        for index, (source, (issue, fu)) in enumerate(
            (s, m) for s in LOOP_SOURCES for m in MACHINE_CASES
        )
    ]

    counter = {"next": 0}
    counter_lock = threading.Lock()

    def take() -> int | None:
        with counter_lock:
            if counter["next"] >= requests:
                return None
            counter["next"] += 1
            return counter["next"] - 1

    clients = [
        _Client(host, port, payloads, take, n) for _ in range(concurrency)
    ]
    started = time.perf_counter()
    for client in clients:
        client.start()
    for client in clients:
        client.join()
    wall = time.perf_counter() - started

    latencies = sorted(l for client in clients for l in client.latencies)
    errors = [e for client in clients for e in client.errors]
    quarantines = sum(client.quarantines for client in clients)
    coalesced_peak = max(client.coalesced_peak for client in clients)

    health = _get_json(host, port, "/v1/healthz")
    runs = _get_json(host, port, "/v1/runs?limit=1")
    telemetry = _get_json(host, port, "/v1/metrics")
    if own_server is not None:
        # Request counters are bumped after the response bytes are
        # flushed, so the last responses can race this snapshot — poll
        # until the server has seen every submission (bounded; an
        # external --url server has foreign traffic and never converges
        # on our count, hence own_server only).
        deadline = time.monotonic() + 2.0
        while (
            telemetry.get("metrics", {})
            .get("counters", {})
            .get("service.request.count", 0)
            < requests
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
            telemetry = _get_json(host, port, "/v1/metrics")
    ledger_count = runs.get("count", 0)
    cache = health.get("cache", {})
    batch = health.get("batch", {})
    cache_hits = cache.get("compile_hits", 0) + cache.get("schedule_hits", 0)
    memo_hits = batch.get("eval_hits", 0)

    # The server's own telemetry, checked against client ground truth.
    server_count = (
        telemetry.get("metrics", {})
        .get("counters", {})
        .get("service.request.count", 0)
    )
    server_p99_s = telemetry.get("latency", {}).get("p99", 0.0)
    # Flight-recorder depth check: one probe with a loop the run has NOT
    # warmed (late loadtest requests are all memo hits and legitimately
    # carry no pipeline spans), fetched after the telemetry snapshot so
    # it doesn't perturb the count check above.
    trace_id, trace_spans = _probe_trace(host, port, n)

    if own_server is not None:
        own_server.shutdown()

    block = stamped(
        None,
        {
            "requests": requests,
            "concurrency": concurrency,
            "wall_s": round(wall, 4),
            "throughput_rps": round(requests / wall, 2) if wall else 0.0,
            "latency_p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
            "latency_p95_ms": round(percentile(latencies, 0.95) * 1e3, 3),
            "latency_p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
            "errors": len(errors),
            "quarantines": quarantines,
            "coalesced_peak": coalesced_peak,
            "ledger_count": ledger_count,
            "cache_hits": cache_hits,
            "eval_memo_hits": memo_hits,
            "server_request_count": server_count,
            "server_latency_p99_ms": round(server_p99_s * 1e3, 3),
            "trace_spans": len(trace_spans),
            "cache": cache,
            "batch": batch,
        },
    )
    _merge_bench_file(out, block)

    print(
        f"{requests} submissions x {concurrency} clients in {wall:.2f}s "
        f"({block['throughput_rps']} req/s)",
        file=buffer_out,
    )
    print(
        f"latency p50={block['latency_p50_ms']}ms "
        f"p95={block['latency_p95_ms']}ms p99={block['latency_p99_ms']}ms; "
        f"peak coalesce {coalesced_peak}",
        file=buffer_out,
    )
    print(
        f"cache hits {cache_hits} (+{memo_hits} eval-memo), "
        f"errors {len(errors)}, quarantines {quarantines}, "
        f"ledger {ledger_count} record(s)",
        file=buffer_out,
    )
    print(
        f"server telemetry: {server_count} workload request(s), "
        f"p99 {block['server_latency_p99_ms']}ms, "
        f"trace depth {len(trace_spans)} span(s)",
        file=buffer_out,
    )
    print(f"wrote service block to {out}", file=buffer_err)

    failed = []
    if errors:
        failed.append(f"{len(errors)} request error(s); first: {errors[0]}")
    if quarantines:
        failed.append(f"{quarantines} quarantined loop(s)")
    if cache_hits + memo_hits == 0:
        failed.append("no cross-request cache hits")
    if own_server is not None and ledger_count != requests:
        failed.append(
            f"ledger has {ledger_count} record(s) for {requests} request(s)"
        )
    if own_server is not None and server_count != requests:
        failed.append(
            f"server counted {server_count} workload request(s) for "
            f"{requests} submission(s)"
        )
    client_p99_s = percentile(latencies, 0.99)
    # Bucket interpolation vs exact client samples (which also include
    # the network round-trip and accept-queue wait the server never
    # times) can never agree exactly; require the two p99s to be the
    # same order of magnitude or within 25ms.  Below ~50 samples the
    # client "p99" is just the max — one scheduler hiccup on a loaded
    # host inflates it arbitrarily — so the agreement check only gates
    # runs large enough for the percentile to mean something.
    p99_gap = abs(server_p99_s - client_p99_s)
    if len(latencies) >= 50 and not (
        p99_gap <= 0.025 or p99_gap <= 2.5 * min(server_p99_s, client_p99_s)
    ):
        failed.append(
            f"server p99 {server_p99_s * 1e3:.1f}ms disagrees with client "
            f"p99 {client_p99_s * 1e3:.1f}ms"
        )
    if trace_id is not None and (
        "http.request" not in trace_spans
        or not any(name.startswith("sim.") for name in trace_spans)
    ):
        failed.append(
            f"trace {trace_id} lacks the full span tree "
            f"(got {trace_spans[:6]})"
        )
    for reason in failed:
        print(f"FAIL: {reason}", file=buffer_err)
    return OpResult(
        exit_code=1 if failed else 0,
        stdout=buffer_out.getvalue(),
        stderr=buffer_err.getvalue(),
        data=block,
    )
