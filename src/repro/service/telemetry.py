"""Service telemetry: request ids, the flight recorder, the access log.

The service (PR 7) suppressed HTTP logging and exposed no metrics; this
module (PR 8) is the operational layer ``docs/service.md`` documents
under "Operating the service":

* :func:`new_request_id` — every HTTP request gets a 12-hex id, echoed
  in the response body (``request_id``), the ``X-Request-Id`` header,
  the run-ledger argv, error hints and the access log, so one id
  follows a request through every artifact.
* :class:`ServiceTelemetry` — the server-wide
  :class:`~repro.obs.metrics.MetricsRegistry` (lock-guarded: handler
  threads and the batcher all record into it) holding the
  ``service.*`` namespace — request/latency distributions, queue-depth
  and in-flight gauges, per-op counters, coalesce-window occupancy —
  plus every ``sim.*``/``sched.*``/``perf.*`` pipeline metric merged in
  from per-request collection.  Served by ``GET /v1/metrics`` (JSON, or
  ``?format=prom`` via :func:`repro.obs.export.prometheus_text`).
* :class:`FlightRecorder` — a bounded ring buffer of
  :class:`RequestTrace` outcomes (the last N requests), with **errors
  pinned in their own ring** so a burst of healthy traffic cannot evict
  the request you are debugging.  Served by
  ``GET /v1/trace/<request_id>``.
* :class:`AccessLog` — the structured JSONL access log behind
  ``repro serve --access-log FILE``: one schema-stamped ``access`` line
  per request (request_id, method, path, status, latency).  Off by
  default; when off the server pays one attribute read per request.

The ``service.*`` namespace is **non-deterministic by design** (like
``robust.*``): latencies, queue depths and coalesce occupancy are
functions of wall clock and client concurrency, not of the workload —
see ``docs/observability.md``.
"""

from __future__ import annotations

import os
import secrets
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.schema import dump_line, stamped

__all__ = [
    "AccessLog",
    "COALESCE_OCCUPANCY_BOUNDS",
    "FlightRecorder",
    "RequestTrace",
    "ServiceTelemetry",
    "new_request_id",
]

#: Bucket bounds for ``service.batch.coalesce_window_occupancy``:
#: submissions per coalesced grid (powers of two up to 256).
COALESCE_OCCUPANCY_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

def new_request_id() -> str:
    """A fresh 12-hex request id (48 random bits — collision-free at
    flight-recorder scale, short enough to read aloud)."""
    return secrets.token_hex(6)


@dataclass(frozen=True)
class RequestTrace:
    """One request's retained outcome: identity, verdict, and the span
    tree from the HTTP root down into the pipeline (``sim.*`` et al.)."""

    request_id: str
    op: str
    method: str
    path: str
    status: int
    outcome: str
    wall_s: float
    timestamp: float
    coalesced: int = 0
    options_hash: str | None = None
    error: str | None = None
    spans: tuple[dict[str, Any], ...] = ()
    #: Profiler samples attributed to this request's handler thread
    #: (v10; 0 unless ``repro serve --profile-hz`` armed the sampler —
    #: links the trace to its slice of ``GET /v1/profile``).
    cpu_samples: int = 0

    @property
    def failed(self) -> bool:
        return self.status >= 400 or self.error is not None

    def as_dict(self) -> dict[str, Any]:
        """The stamped document served by ``GET /v1/trace/<id>``."""
        return stamped(
            None,
            {
                "request_id": self.request_id,
                "op": self.op,
                "method": self.method,
                "path": self.path,
                "status": self.status,
                "outcome": self.outcome,
                "wall_s": round(self.wall_s, 6),
                "timestamp": self.timestamp,
                "coalesced": self.coalesced,
                "options_hash": self.options_hash,
                "error": self.error,
                "cpu_samples": self.cpu_samples,
                "spans": [dict(span) for span in self.spans],
            },
        )


class FlightRecorder:
    """A bounded ring of the last N :class:`RequestTrace` outcomes.

    Two rings: healthy traffic evicts oldest-first from the main ring,
    while failed requests live in their own ``error_capacity`` ring —
    **errors are always pinned** against eviction by later successes.
    Thread-safe; every operation is O(1)-ish under one small lock.
    """

    def __init__(self, capacity: int = 256, error_capacity: int = 64) -> None:
        if capacity < 1 or error_capacity < 1:
            raise ValueError("flight recorder capacities must be >= 1")
        self.capacity = capacity
        self.error_capacity = error_capacity
        self._ok: OrderedDict[str, RequestTrace] = OrderedDict()
        self._errors: OrderedDict[str, RequestTrace] = OrderedDict()
        self._lock = threading.Lock()

    def record(self, trace: RequestTrace) -> None:
        store, cap = (
            (self._errors, self.error_capacity)
            if trace.failed
            else (self._ok, self.capacity)
        )
        with self._lock:
            store[trace.request_id] = trace
            store.move_to_end(trace.request_id)
            while len(store) > cap:
                store.popitem(last=False)

    def get(self, request_id: str) -> RequestTrace | None:
        with self._lock:
            return self._errors.get(request_id) or self._ok.get(request_id)

    def recent(self, limit: int = 50) -> list[RequestTrace]:
        """The most recent retained traces, oldest first, errors included."""
        with self._lock:
            traces = list(self._ok.values()) + list(self._errors.values())
        traces.sort(key=lambda trace: trace.timestamp)
        return traces[-limit:] if limit > 0 else traces

    def ids(self) -> list[str]:
        with self._lock:
            return list(self._ok) + list(self._errors)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ok) + len(self._errors)


class ServiceTelemetry:
    """The server-wide metrics registry plus the flight recorder.

    All mutation goes through one lock: :class:`MetricsRegistry` is not
    thread-safe, and here every handler thread and the batcher write
    into the same instance (unlike the pipeline's per-context
    registries, which merge after the fact).
    """

    def __init__(
        self, flight_capacity: int = 256, error_capacity: int = 64
    ) -> None:
        self.registry = MetricsRegistry()
        self.flight = FlightRecorder(flight_capacity, error_capacity)
        self._lock = threading.Lock()
        self._inflight = 0

    # -- recording (handler threads + batcher) --------------------------------

    def request_started(self) -> None:
        with self._lock:
            self._inflight += 1
            self.registry.set_gauge("service.inflight", self._inflight)

    def request_finished(
        self, op: str, status: int, wall_s: float, workload: bool
    ) -> None:
        """Account one finished request.

        ``workload`` requests (routed POSTs) feed ``service.request.count``
        and the latency distribution; observability GETs (healthz,
        metrics, trace, runs) are counted per-op but kept out of the
        latency histogram — a poll loop must not drown the workload
        distribution in sub-millisecond samples, and the workload count
        must equal the submissions fired.
        """
        with self._lock:
            self._inflight -= 1
            self.registry.set_gauge("service.inflight", self._inflight)
            self.registry.count(f"service.request.ops.{op}")
            if status >= 400:
                self.registry.count("service.request.errors")
            if workload:
                self.registry.count("service.request.count")
                self.registry.record_value("service.request.latency", wall_s)

    def set_queue_depth(self, depth: int) -> None:
        with self._lock:
            self.registry.set_gauge("service.queue.depth", depth)

    def record_shed(self) -> None:
        """Count one submission refused by admission control (429)."""
        with self._lock:
            self.registry.count("service.request.shed")

    def record_deadline(self) -> None:
        """Count one submission abandoned past its deadline (504)."""
        with self._lock:
            self.registry.count("service.request.deadline")

    def record_cpu(self, op: str, samples: int) -> None:
        """Attribute profiler samples to one op (``--profile-hz`` only).

        Sample counts are wall-clock draws and therefore non-deterministic
        (like every ``service.*`` metric) — dashboards divide them by the
        sampling rate for CPU seconds; never gate on them.
        """
        if samples <= 0:
            return
        with self._lock:
            self.registry.count("service.cpu.samples", samples)
            self.registry.count(f"service.cpu.samples.{op}", samples)

    def set_breaker_state(self, state: int) -> None:
        """Publish the circuit breaker state as a gauge
        (0 = closed, 1 = half-open, 2 = open)."""
        with self._lock:
            self.registry.set_gauge("service.breaker.state", state)

    def record_group(self, occupancy: int, collected: MetricsRegistry) -> None:
        """Fold one coalesced batch run in: its window occupancy and the
        per-request pipeline metrics collected on the batcher thread."""
        with self._lock:
            self.registry.record_value(
                "service.batch.coalesce_window_occupancy",
                occupancy,
                bounds=COALESCE_OCCUPANCY_BOUNDS,
            )
            self.registry.merge(collected)

    def absorb(self, collected: MetricsRegistry) -> None:
        """Merge a per-request registry (handler-thread op execution)."""
        with self._lock:
            self.registry.merge(collected)

    # -- export ----------------------------------------------------------------

    def latency_summary(self) -> dict[str, Any]:
        histogram = self.registry.distributions.get("service.request.latency")
        if histogram is None:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        summary = histogram.summary()
        return {key: summary[key] for key in ("count", "mean", "p50", "p95", "p99")}

    def snapshot(self) -> dict[str, Any]:
        """The telemetry block of ``GET /v1/metrics`` (unstamped; the
        server wraps it in a ``result`` envelope)."""
        with self._lock:
            registry = self.registry.as_dict()
            inflight = self._inflight
        return {
            "inflight": inflight,
            "latency": self.latency_summary(),
            "metrics": registry,
            "flight": {
                "capacity": self.flight.capacity,
                "error_capacity": self.flight.error_capacity,
                "recorded": len(self.flight),
                "request_ids": [t.request_id for t in self.flight.recent(50)],
                "recent": [
                    {
                        "request_id": t.request_id,
                        "op": t.op,
                        "status": t.status,
                        "outcome": t.outcome,
                        "wall_ms": round(t.wall_s * 1e3, 3),
                        "coalesced": t.coalesced,
                        "spans": len(t.spans),
                        "error": t.error,
                    }
                    for t in self.flight.recent(50)
                ],
            },
        }

    def prometheus(self) -> str:
        """The registry in Prometheus text exposition form."""
        from repro.obs.export import prometheus_text

        with self._lock:
            return prometheus_text(self.registry)


@dataclass
class AccessLog:
    """Structured JSONL access log (``repro serve --access-log FILE``).

    One schema-stamped ``access`` line per request.  The handle opens
    lazily on the first line and lines are written whole under a lock
    (the same torn-line discipline as the run ledger).  When no access
    log is configured the server holds ``None`` instead — the off path
    costs one attribute read per request.
    """

    path: str
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _handle: Any = field(default=None, repr=False)

    def write(
        self,
        request_id: str,
        method: str,
        path: str,
        status: int,
        wall_s: float,
        op: str | None = None,
    ) -> None:
        line = dump_line(
            stamped(
                "access",
                {
                    "request_id": request_id,
                    "method": method,
                    "path": path,
                    "status": status,
                    "wall_s": round(wall_s, 6),
                    "op": op,
                    "timestamp": time.time(),
                    "pid": os.getpid(),
                },
            )
        )
        with self._lock:
            if self._handle is None:
                directory = os.path.dirname(self.path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
