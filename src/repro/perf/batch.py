"""Corpus-level vectorized evaluation: the batch engine.

A sweep grid — (benchmark × machine-config × n) — asks thousands of
cells whose answers are all instances of the Section 2 closed form.  The
per-loop path (:func:`repro.pipeline.evaluate_corpus`) pays a full
Python pipeline dispatch per cell; :class:`BatchEvaluator` restructures
the same work as three flat passes:

1. **Resolve** (job order): each cell's loop is compiled and scheduled
   at most once, keyed by :class:`~repro.perf.cache.CompileCache`
   content hashes, and the schedule's
   :class:`~repro.sim.analytic.ScheduleSignature` is planned once per
   unique signature via :func:`~repro.sim.analytic.closed_form_plan` —
   the *same* eligibility test the per-loop analytic fast path
   delegates to, so the two paths cannot diverge.  Cells whose
   ``(signature, n)`` was already answered reuse the memoized
   simulation; cells the closed form cannot answer exactly (or an
   ``exact_simulation`` request) run the event walk inline.
2. **Flat pass**: every remaining cell is answered by one
   :func:`~repro.sim.analytic.batch_closed_form` call over the whole
   ``(signature, plan, n)`` table — one dispatch for the entire grid.
3. **Replay** (job order): with a metrics registry active, each cell
   re-records the deterministic ``sim.*`` / ``sched.*`` quantities the
   per-loop path would have recorded, so ``repro runs diff`` parity
   holds to the counter.

Results are **byte-identical** to ``evaluate_corpus`` — same
``CorpusEvaluation`` insertion order, same quarantine records, same
``SimulationResult`` fields down to the per-iteration finish times
(differential tests in ``tests/perf/test_batch.py`` enforce all of it).

Requests the closed-form plane cannot honour — an active
:class:`~repro.robust.faults.FaultPlan`, semantic checking, or a
recording :class:`~repro.obs.explain.DecisionJournal` — are *declined*:
:func:`batch_incompatibility` names the reason, ``evaluate_corpus``
falls back to the per-loop path, and the resulting
``CorpusEvaluation.fallback_reason`` records ``"batch engine declined:
<reason>"``.

The evaluator's memos persist for its lifetime, so a second sweep over
the same grid in the same process is answered almost entirely from the
evaluation memo (see ``make bench-perf``'s ``batch_warm`` scenario);
:func:`shared_batch_evaluator` holds the process-wide instance the
``EvalOptions(batch=True)`` route uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.obs.explain import active_journal
from repro.obs.metrics import active_metrics, context_metrics
from repro.obs.metrics import count as metric_count
from repro.obs.trace import emit_progress, span
from repro.options import EvalOptions, observation_scope
from repro.perf.cache import CompileCache, loop_key
from repro.robust.harden import FailureRecord
from repro.sched.schedule import Schedule
from repro.sim.analytic import (
    ClosedFormPlan,
    ScheduleSignature,
    batch_closed_form,
    chain_finish_times,
    closed_form_plan,
)
from repro.sim.multiproc import SimulationResult, simulate_doacross

__all__ = [
    "BatchEvaluator",
    "BatchIncompatible",
    "BatchStats",
    "batch_incompatibility",
    "shared_batch_evaluator",
]


class BatchIncompatible(ValueError):
    """The batch engine cannot honour these options exactly; the caller
    must use the per-loop path (and record why)."""


def batch_incompatibility(options: EvalOptions) -> str | None:
    """Why these options cannot go through the batch engine (``None``
    when they can).

    The engine only declines requests whose *results or side effects*
    the closed-form plane cannot reproduce exactly; everything else —
    exact simulation, quarantine policies, caches, metrics — batches.
    """
    if options.faults:
        return "fault injection active"
    if options.check_semantics:
        return "semantic checking requires per-loop execution"
    if options.journal is not None or active_journal() is not None:
        return "decision journal active"
    return None


@dataclass
class BatchStats:
    """Where the batch engine's answers came from (one engine lifetime)."""

    cells: int = 0  # loop × machine × n cells requested
    eval_hits: int = 0  # answered whole from the evaluation memo
    sim_hits: int = 0  # per-role simulations reused from the memo
    closed_form_rows: int = 0  # per-role simulations from the flat pass
    event_walks: int = 0  # per-role simulations that needed the walk
    flat_passes: int = 0  # batch_closed_form dispatches issued

    def format(self) -> str:
        return (
            f"{self.cells} cells: {self.eval_hits} eval hits, "
            f"{self.sim_hits} sim hits, {self.closed_form_rows} closed-form "
            f"rows ({self.flat_passes} flat passes), "
            f"{self.event_walks} event walks"
        )


@dataclass
class _Cell:
    """One (loop, machine, n) request and how its pieces were sourced."""

    evaluation: "object"  # LoopEvaluation, sims patched in the flat pass
    replay_dispatch: list[str] = field(default_factory=list)
    replay_pending: bool = False
    """The cell hit an evaluation memo entry created earlier in this same
    grid, whose simulations only exist after the flat pass (coalesced
    service submissions duplicate cells; CLI grids never do) — resolve
    its dispatch replay from the evaluation in pass 3."""


@dataclass
class _PendingSim:
    """One unanswered (signature, n) row of the flat pass, plus every
    evaluation slot waiting on it."""

    schedule: Schedule
    signature: ScheduleSignature
    plan: ClosedFormPlan
    n: int
    targets: list[tuple["object", str]] = field(default_factory=list)


def _materialize_sim(
    schedule: Schedule,
    plan: ClosedFormPlan,
    n: int,
    parallel_time: int,
    total_stall: int,
) -> SimulationResult:
    """A :class:`SimulationResult` from flat-pass numbers — field-for-field
    what :func:`repro.sim.multiproc.fast_path_result` builds."""
    length = schedule.length
    stall_by_pair = {pair.pair_id: 0 for pair in schedule.lowered.synced.pairs}
    culprit = plan.stalling
    if culprit is None:
        finish_times = [length] * n
    else:
        finish_times = chain_finish_times(n, culprit.distance, culprit.per_hop(), length)
        stall_by_pair[culprit.pair_id] = total_stall
    return SimulationResult(
        schedule=schedule,
        n=n,
        parallel_time=parallel_time,
        finish_times=finish_times,
        total_stall=total_stall,
        processors=n,
        signal_latency=1,
        dispatch="fast_path",
        stall_by_pair=stall_by_pair,
    )


class BatchEvaluator:
    """Whole-grid corpus evaluation over the closed-form plane.

    ``cache`` is the compile/schedule memo shared across every grid this
    evaluator sees (``EvalOptions.cache`` overrides it per call); the
    evaluation and simulation memos live on the instance and survive
    across sweeps, which is what makes a warm second sweep nearly free.
    """

    def __init__(self, cache: CompileCache | None = None):
        self.cache = cache if cache is not None else CompileCache()
        self.stats = BatchStats()
        # (loop key, restructuring, fuse, machine, options hash, n) →
        # LoopEvaluation, reused verbatim (results are immutable by
        # convention throughout the pipeline).
        self._evals: dict[tuple, "object"] = {}
        # (signature, n, exact) → SimulationResult.
        self._sims: dict[tuple, SimulationResult] = {}
        # signature → plan-or-None, decided once per unique geometry.
        self._plans: dict[ScheduleSignature, ClosedFormPlan | None] = {}

    # -- plumbing ------------------------------------------------------------

    def _plan_for(self, signature: ScheduleSignature) -> ClosedFormPlan | None:
        sentinel = object()
        plan = self._plans.get(signature, sentinel)
        if plan is sentinel:
            plan = closed_form_plan(signature)
            self._plans[signature] = plan
        return plan

    @staticmethod
    def _resolve_n(compiled, n: int | None) -> int:
        """The cell's trip count — same rules (and error text) as
        :func:`repro.sim.multiproc.simulate_doacross`."""
        if n is None:
            from repro.ir.ast_nodes import Const

            loop = compiled.lowered.synced.loop
            if not (isinstance(loop.lower, Const) and isinstance(loop.upper, Const)):
                raise ValueError("symbolic loop bounds require an explicit n")
            n = int(loop.upper.value) - int(loop.lower.value) + 1
        if n < 0:
            raise ValueError("n must be non-negative")
        return n

    def _simulate_role(
        self,
        schedule: Schedule,
        n: int,
        options: EvalOptions,
        cell: _Cell,
        attr: str,
        pending: "dict[tuple, _PendingSim]",
    ) -> None:
        """Source one role's simulation: memo, flat-pass row, or walk."""
        signature = ScheduleSignature.of(schedule)
        sim_key = (signature, n, options.exact_simulation)
        sim = self._sims.get(sim_key)
        if sim is not None:
            self.stats.sim_hits += 1
            metric_count("perf.batch.sim.hit")
            setattr(cell.evaluation, attr, sim)
            cell.replay_dispatch.append(sim.dispatch)
            return
        plan = None if options.exact_simulation else self._plan_for(signature)
        if plan is not None:
            row = pending.get(sim_key)
            if row is None:
                row = _PendingSim(
                    schedule=schedule, signature=signature, plan=plan, n=n
                )
                pending[sim_key] = row
            else:
                self.stats.sim_hits += 1
                metric_count("perf.batch.sim.hit")
            row.targets.append((cell.evaluation, attr))
            cell.replay_dispatch.append("fast_path")
            return
        # Ineligible geometry (or exact_simulation): the event walk answers,
        # counting its own sim.dispatch metric as it runs.
        sim = simulate_doacross(
            schedule, n, exact_simulation=options.exact_simulation
        )
        self.stats.event_walks += 1
        self._sims[sim_key] = sim
        setattr(cell.evaluation, attr, sim)

    # -- the engine ----------------------------------------------------------

    def evaluate_corpus(
        self,
        name: str,
        loops: Sequence,
        machine,
        n: int | None = None,
        options: EvalOptions | None = None,
    ):
        """Batch-evaluate one corpus (see :meth:`evaluate_corpora`)."""
        return self.evaluate_corpora([(name, list(loops), machine)], n, options)[0]

    def evaluate_corpora(
        self,
        jobs: Sequence,
        n: int | None = None,
        options: EvalOptions | None = None,
    ) -> list:
        """Evaluate ``(name, loops, machine)`` jobs over the closed-form
        plane; results in job order, byte-identical to
        :func:`repro.pipeline.evaluate_corpus` run job by job.

        Raises :class:`BatchIncompatible` when
        :func:`batch_incompatibility` names a reason — callers routing
        via ``EvalOptions(batch=True)`` check first and fall back.
        """
        from repro.pipeline import (
            CorpusEvaluation,
            LoopEvaluation,
            _record_evaluation_metrics,
        )

        options = EvalOptions.coerce(options)
        reason = batch_incompatibility(options)
        if reason is not None:
            raise BatchIncompatible(f"batch engine declined: {reason}")
        cache = options.cache if options.cache is not None else self.cache
        opts_hash = options.stable_hash()
        quarantine = options.robust is not None and options.robust.quarantine
        results: list = []
        cells: list[_Cell] = []
        pending: dict[tuple, _PendingSim] = {}
        with span("batch.evaluate", jobs=len(jobs)), observation_scope(options):
            # Pass 1 — resolve every cell in job order.  Compile/schedule
            # errors quarantine (or raise) exactly as the per-loop path
            # does, at the same loop index.
            for name, loops, machine in jobs:
                corpus = CorpusEvaluation(name=name, machine=machine)
                results.append(corpus)
                for index, loop in enumerate(loops):
                    self.stats.cells += 1
                    metric_count("perf.batch.cells")
                    try:
                        key_prefix = (
                            loop_key(loop),
                            bool(options.apply_restructuring),
                            options.fuse,
                        )
                        compiled = cache.compile(
                            loop, options.apply_restructuring, options.fuse
                        )
                        n_cell = self._resolve_n(compiled, n)
                        eval_key = key_prefix + (machine, opts_hash, n_cell)
                        evaluation = self._evals.get(eval_key)
                        if evaluation is not None:
                            self.stats.eval_hits += 1
                            metric_count("perf.batch.eval.hit")
                            if evaluation.sim_list is None or evaluation.sim_new is None:
                                # Duplicate cell within this grid: the memo
                                # entry's sims land in pass 2.
                                cells.append(
                                    _Cell(evaluation=evaluation, replay_pending=True)
                                )
                            else:
                                cells.append(
                                    _Cell(
                                        evaluation=evaluation,
                                        replay_dispatch=[
                                            evaluation.sim_list.dispatch,
                                            evaluation.sim_new.dispatch,
                                        ],
                                    )
                                )
                            corpus.evaluations.append(evaluation)
                            emit_progress(
                                "corpus", index + 1, len(loops),
                                message=f"{name}@{machine.name}",
                                quarantined=len(corpus.failures),
                            )
                            continue
                        metric_count("perf.batch.eval.miss")
                        sched_list, sched_new = cache.schedules(
                            compiled,
                            machine,
                            options.list_priority,
                            options.sync_options,
                            verify=options.verify,
                        )
                        evaluation = LoopEvaluation(
                            compiled=compiled,
                            machine=machine,
                            n=n_cell,
                            schedule_list=sched_list,
                            schedule_new=sched_new,
                            t_list=0,  # patched after the flat pass
                            t_new=0,
                        )
                        cell = _Cell(evaluation=evaluation)
                        self._simulate_role(
                            sched_list, n_cell, options, cell, "sim_list", pending
                        )
                        self._simulate_role(
                            sched_new, n_cell, options, cell, "sim_new", pending
                        )
                        self._evals[eval_key] = evaluation
                    except Exception as err:
                        if not quarantine:
                            raise
                        metric_count("robust.quarantine.loops")
                        corpus.failures.append(
                            FailureRecord.from_exception("loop", name, index, err)
                        )
                        emit_progress(
                            "corpus", index + 1, len(loops),
                            message=f"{name}@{machine.name}",
                            quarantined=len(corpus.failures),
                        )
                        continue
                    cells.append(cell)
                    corpus.evaluations.append(evaluation)
                    emit_progress(
                        "corpus", index + 1, len(loops),
                        message=f"{name}@{machine.name}",
                        quarantined=len(corpus.failures),
                    )

            # Pass 2 — one flat closed-form dispatch for the whole grid.
            if pending:
                rows = list(pending.values())
                self.stats.flat_passes += 1
                self.stats.closed_form_rows += len(rows)
                metric_count("perf.batch.flat_rows", len(rows))
                with span("sim.closed_form", rows=len(rows)):
                    values = batch_closed_form(
                        [(row.signature, row.plan, row.n) for row in rows]
                    )
                for row, (parallel_time, total_stall) in zip(rows, values):
                    sim = _materialize_sim(
                        row.schedule, row.plan, row.n, parallel_time, total_stall
                    )
                    self._sims[(row.signature, row.n, False)] = sim
                    for evaluation, attr in row.targets:
                        setattr(evaluation, attr, sim)

            # Patch the summary times now every simulation exists.
            for cell in cells:
                evaluation = cell.evaluation
                evaluation.t_list = evaluation.sim_list.parallel_time
                evaluation.t_new = evaluation.sim_new.parallel_time

            # Pass 3 — replay the deterministic per-cell metrics the
            # per-loop path records, including the sim.dispatch counters
            # for memoized / flat-pass simulations (inline event walks
            # already counted their own).
            if active_metrics() is not None or context_metrics() is not None:
                for cell in cells:
                    dispatches = cell.replay_dispatch
                    if cell.replay_pending:
                        dispatches = [
                            cell.evaluation.sim_list.dispatch,
                            cell.evaluation.sim_new.dispatch,
                        ]
                    for dispatch in dispatches:
                        metric_count(f"sim.dispatch.{dispatch}")
                    evaluation = cell.evaluation
                    _record_evaluation_metrics(
                        evaluation.compiled,
                        (
                            ("list", evaluation.schedule_list, evaluation.sim_list),
                            ("new", evaluation.schedule_new, evaluation.sim_new),
                        ),
                    )
        return results


# Process-wide engine behind EvalOptions(batch=True): its memos are what
# make a *second* sweep in the same process nearly free.
_SHARED: BatchEvaluator | None = None


def shared_batch_evaluator() -> BatchEvaluator:
    """The process-wide :class:`BatchEvaluator` used by the
    ``EvalOptions(batch=True)`` route through ``evaluate_corpus``."""
    global _SHARED
    if _SHARED is None:
        _SHARED = BatchEvaluator()
    return _SHARED
