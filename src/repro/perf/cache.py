"""Content-addressed compile cache and schedule memo for parameter sweeps.

Every sweep in this reproduction (Tables 2/3, the issue-width / register /
unroll / signal-latency studies) evaluates the same loop corpus across many
machine cases.  The front half of the pipeline — parse, dependence
analysis, restructuring, synchronization insertion, lowering, DFG — is
machine-independent, so a sweep only ever needs to run it once per
``(loop, restructuring flags, fuse mode)``.  Likewise a re-run of the same
sweep point needs no second scheduling pass: the schedules are a pure
function of ``(compiled loop, machine, scheduler options)``.

:class:`CompileCache` provides both layers:

* ``compile()`` — content-addressed on the *canonical printed source* of
  the loop (so a ``Loop`` AST and any whitespace variant of its source text
  share an entry) plus the restructuring/fuse flags.  SERIAL loops are
  negatively cached: the ``ValueError`` is replayed without recompiling.
* ``schedules()`` — memoizes the (list, sync) schedule pair per
  ``(lowered-code fingerprint, machine, list priority, sync options)``.
  The fingerprint hashes the three-address listing plus the sync-pair
  distances, so any two compilations of equivalent code share schedules.
  Entries remember whether they have been validated against the DFG, so a
  warm sweep skips re-verification of schedules that already passed.

Keys are sha256 hex digests; ``max_entries`` bounds each layer with LRU
eviction (unbounded by default — a full Perfect-suite sweep is ~40 loops).
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.codegen import FuseStore
from repro.ir.ast_nodes import Loop
from repro.ir.printer import format_loop
from repro.obs.metrics import count as metric_count
from repro.sched import MachineConfig, Priority, Schedule, SyncSchedulerOptions

if TYPE_CHECKING:  # pragma: no cover - import cycle: pipeline uses perf.profile
    from repro.pipeline import CompiledLoop

__all__ = ["CacheStats", "CompileCache", "compiled_fingerprint", "loop_key"]

#: On-disk cache file magic; the digit is the *container* format version
#: (the payload additionally records ``repro.schema.SCHEMA_VERSION``).
_CACHE_MAGIC = b"RPROCCH1"


def loop_key(loop: Loop | str) -> str:
    """Content hash of a loop: sha256 of its canonical printed form.

    Source text is parsed and re-printed first, so formatting variants of
    the same loop address the same cache entry.  The digest is memoized
    on the ``Loop`` instance (ASTs are immutable by convention), so a
    sweep that revisits the same loop object across hundreds of cells
    prints and hashes it once.
    """
    if isinstance(loop, str):
        from repro.ir.parser import parse_loop

        loop = parse_loop(loop)
    cached = getattr(loop, "_perf_loop_key", None)
    if cached is not None:
        return cached
    digest = hashlib.sha256(format_loop(loop).encode("utf-8")).hexdigest()
    try:
        loop._perf_loop_key = digest
    except AttributeError:  # slotted/frozen AST variants: just recompute
        pass
    return digest


def compiled_fingerprint(compiled: "CompiledLoop") -> str:
    """Content hash of a compiled loop's machine-independent back-half
    inputs: the three-address listing plus the sync-pair distances (which
    weight the sync scheduler's SP ordering).  Memoized on the instance."""
    cached = getattr(compiled, "_perf_fingerprint", None)
    if cached is not None:
        return cached
    from repro.codegen import format_listing

    pairs = ",".join(
        f"{pair.pair_id}:{pair.distance}" for pair in compiled.lowered.synced.pairs
    )
    digest = hashlib.sha256(
        (format_listing(compiled.lowered) + "\n" + pairs).encode("utf-8")
    ).hexdigest()
    compiled._perf_fingerprint = digest
    return digest


def _options_key(
    list_priority: Priority, sync_options: SyncSchedulerOptions | None
) -> tuple:
    options = sync_options if sync_options is not None else SyncSchedulerOptions()
    return (
        list_priority.value,
        options.contiguous_sp,
        options.sp_order,
        options.sends_before_waits,
        options.waits_after_sends,
        options.trip_count,
        options.guard_never_degrade,
    )


@dataclass
class CacheStats:
    """Hit/miss counters for both cache layers."""

    compile_hits: int = 0
    compile_misses: int = 0
    schedule_hits: int = 0
    schedule_misses: int = 0

    def format(self) -> str:
        return (
            f"compile {self.compile_hits} hits / {self.compile_misses} misses, "
            f"schedule {self.schedule_hits} hits / {self.schedule_misses} misses"
        )


class _SerialLoop:
    """Negative-cache sentinel: the loop compiled to SERIAL."""

    def __init__(self, message: str):
        self.message = message


@dataclass
class _ScheduleEntry:
    schedule_list: Schedule
    schedule_new: Schedule
    verified: bool


class CompileCache:
    """Two-layer memo: compiled loops, and schedule pairs per machine."""

    def __init__(self, max_entries: int | None = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._compiled: OrderedDict[tuple, "CompiledLoop | _SerialLoop"] = OrderedDict()
        self._schedules: OrderedDict[tuple, _ScheduleEntry] = OrderedDict()

    # -- compiled-loop layer -------------------------------------------------

    def compile(
        self,
        loop: Loop | str,
        apply_restructuring: bool = True,
        fuse: FuseStore = FuseStore.BEFORE_SEND,
    ) -> "CompiledLoop":
        """Cached :func:`repro.pipeline.compile_loop`.

        Raises the same ``ValueError`` as ``compile_loop`` for SERIAL
        loops, replayed from the negative cache on a repeat.
        """
        key = (loop_key(loop), bool(apply_restructuring), fuse)
        cached = self._compiled.get(key)
        if cached is not None:
            self.stats.compile_hits += 1
            metric_count("cache.compile.hit")
            self._compiled.move_to_end(key)
            if isinstance(cached, _SerialLoop):
                raise ValueError(cached.message)
            return cached
        self.stats.compile_misses += 1
        metric_count("cache.compile.miss")
        from repro.options import EvalOptions
        from repro.pipeline import compile_loop

        try:
            compiled = compile_loop(
                loop,
                EvalOptions(apply_restructuring=bool(apply_restructuring), fuse=fuse),
            )
        except ValueError as err:
            self._store(self._compiled, key, _SerialLoop(str(err)))
            raise
        self._store(self._compiled, key, compiled)
        return compiled

    # -- schedule layer ------------------------------------------------------

    def schedules(
        self,
        compiled: "CompiledLoop",
        machine: MachineConfig,
        list_priority: Priority = Priority.PROGRAM_ORDER,
        sync_options: SyncSchedulerOptions | None = None,
        verify: bool = True,
    ) -> tuple[Schedule, Schedule]:
        """Memoized (list, sync) schedule pair for one sweep point.

        On a hit the stored schedules are returned as-is; when ``verify``
        is requested they are validated at most once per entry (the pair
        is immutable, so one successful check covers every reuse).
        """
        key = (
            compiled_fingerprint(compiled),
            machine,
            _options_key(list_priority, sync_options),
        )
        entry = self._schedules.get(key)
        if entry is not None:
            self.stats.schedule_hits += 1
            metric_count("cache.schedule.hit")
            self._schedules.move_to_end(key)
        else:
            self.stats.schedule_misses += 1
            metric_count("cache.schedule.miss")
            from repro.sched import list_schedule, sync_schedule

            entry = _ScheduleEntry(
                schedule_list=list_schedule(
                    compiled.lowered, compiled.graph, machine, list_priority
                ),
                schedule_new=sync_schedule(
                    compiled.lowered, compiled.graph, machine, sync_options
                ),
                verified=False,
            )
            self._store(self._schedules, key, entry)
        if verify and not entry.verified:
            from repro.sched import assert_valid

            assert_valid(entry.schedule_list, compiled.graph)
            assert_valid(entry.schedule_new, compiled.graph)
            entry.verified = True
        return entry.schedule_list, entry.schedule_new

    # -- bookkeeping ---------------------------------------------------------

    def _store(self, table: OrderedDict, key: tuple, value) -> None:
        table[key] = value
        table.move_to_end(key)
        if self.max_entries is not None:
            while len(table) > self.max_entries:
                table.popitem(last=False)

    def clear(self) -> None:
        self._compiled.clear()
        self._schedules.clear()

    def __len__(self) -> int:
        return len(self._compiled) + len(self._schedules)

    # -- disk persistence ----------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist both layers to ``path`` (``repro sweep --cache-file``).

        Layout: an 8-byte magic, the sha256 of the body, then the pickled
        body — so :meth:`load` can prove the file intact before trusting a
        single unpickled byte.  Written atomically (temp file + rename): a
        crash mid-save leaves the previous file, not a truncated one.
        """
        from repro.schema import SCHEMA_VERSION

        body = pickle.dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "compiled": self._compiled,
                "schedules": self._schedules,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(_CACHE_MAGIC + hashlib.sha256(body).digest() + body)
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str | Path, max_entries: int | None = None) -> "CompileCache":
        """A cache warmed from ``path`` — or an *empty* one when the file
        is missing, truncated, bit-flipped, unpicklable, or written by a
        different schema version.

        Corruption of any kind is a cache **miss**, never an error: the
        sweep recompiles and overwrites the bad file on its next
        :meth:`save`.  Each rejected file counts ``robust.cache.corrupt``
        (a missing file is a plain cold start and counts nothing).
        """
        from repro.schema import SCHEMA_VERSION

        cache = cls(max_entries=max_entries)
        path = Path(path)
        if not path.exists():
            return cache
        try:
            raw = path.read_bytes()
            magic, digest, body = raw[:8], raw[8:40], raw[40:]
            if magic != _CACHE_MAGIC:
                raise ValueError("bad cache file magic")
            if len(raw) < 41:
                raise ValueError("cache file truncated")
            if hashlib.sha256(body).digest() != digest:
                raise ValueError("cache body does not match its digest")
            payload = pickle.loads(body)
            if payload.get("schema_version") != SCHEMA_VERSION:
                raise ValueError(
                    f"cache schema {payload.get('schema_version')!r} != "
                    f"current {SCHEMA_VERSION}"
                )
            compiled = payload["compiled"]
            schedules = payload["schedules"]
            if not isinstance(compiled, OrderedDict) or not isinstance(
                schedules, OrderedDict
            ):
                raise ValueError("cache payload tables have the wrong type")
        except Exception:
            # Bad pickle, short read, wrong version, flipped bit: all of it
            # is just a miss.  A poisoned file must never kill a sweep.
            metric_count("robust.cache.corrupt")
            return cache
        cache._compiled = compiled
        cache._schedules = schedules
        if max_entries is not None:
            for table in (cache._compiled, cache._schedules):
                while len(table) > max_entries:
                    table.popitem(last=False)
        return cache
