"""Process-parallel corpus/program evaluation for large sweeps.

A sweep is a list of independent work items — ``(name, loops, machine)``
for :func:`repro.pipeline.evaluate_corpus` or ``(program, machine)`` for
:func:`repro.pipeline.evaluate_program`.  :class:`ParallelEvaluator` fans
the items out over a ``concurrent.futures.ProcessPoolExecutor`` in chunks
(one pickle round-trip per chunk, not per item) and merges the results in
**insertion order**: the output list always lines up index-for-index with
the input jobs, regardless of which worker finished first.

Each worker process keeps a process-global :class:`~repro.perf.cache.
CompileCache`, so a sweep that revisits a loop on several machines
compiles it once per worker rather than once per sweep point.

Observability rides along (see :mod:`repro.obs`): when the parent has an
active :class:`~repro.perf.profile.StageProfiler`, metrics registry, or
recording tracer, every worker collects into fresh local instances and
the parent folds them in after the fan-out.  Counter/histogram merging is
commutative, so **metrics aggregates are identical however the jobs were
partitioned** — ``--jobs 1`` and ``--jobs 4`` agree to the counter.

The evaluator degrades gracefully to in-process serial execution when
``max_workers=1``, when there is at most one job, when the sweep is too
small to amortize pool start-up (see ``min_pool_work``), or when the
platform cannot provide a process pool (sandboxes without
``fork``/semaphores) — results are identical either way, and
:attr:`ParallelEvaluator.fallback_reason` says why the pool was not
used.  The chosen mode is recorded as the
``perf.parallel.mode.{pool,serial}`` metric.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Sequence

from repro.obs.metrics import MetricsRegistry, active_metrics
from repro.obs.metrics import count as metric_count
from repro.obs.metrics import disable_metrics, enable_metrics
from repro.obs.trace import (
    RecordingTracer,
    TraceEvent,
    active_tracers,
    add_tracer,
    ingest_events,
    remove_tracer,
)
from repro.options import EvalOptions, observation_scope
from repro.perf.cache import CompileCache
from repro.perf.profile import (
    StageProfiler,
    active_profiler,
    disable_profiling,
    enable_profiling,
)
from repro.sched import MachineConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.ast_nodes import Loop
    from repro.pipeline import CorpusEvaluation, ProgramEvaluation

__all__ = [
    "CorpusJob",
    "DEFAULT_MIN_POOL_WORK",
    "ParallelEvaluator",
    "ProgramJob",
    "chunked",
]

#: Minimum number of loop evaluations before a pool pays for itself.
#: Spawning worker processes costs a few hundred milliseconds; one loop
#: evaluation costs a few milliseconds, so a sweep below roughly this
#: many loop-evals finishes faster serially (the measured 0.911x
#: "speedup" of the 144-eval Perfect sweep on 4 workers).  Pass
#: ``min_pool_work=0`` to force the pool regardless.
DEFAULT_MIN_POOL_WORK = 512

# (name, loops, machine) — one evaluate_corpus call.
CorpusJob = "tuple[str, list[Loop], MachineConfig]"
# (program source or Program, machine) — one evaluate_program call.
ProgramJob = "tuple[object, MachineConfig]"

# (profile, metrics, trace): which collectors a worker should run for the
# parent.  All-off in the serial path, where the parent's own collectors
# see the events directly.
_COLLECT_NONE = (False, False, False)


def chunked(items: Sequence, size: int) -> list[list]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


# Process-global cache: reused by every chunk a worker executes.
_WORKER_CACHE: CompileCache | None = None


def _worker_cache() -> CompileCache:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = CompileCache()
    return _WORKER_CACHE


def _worker_collectors(collect: tuple[bool, bool, bool]):
    """Enable fresh per-worker collectors per the parent's request."""
    collect_profile, collect_metrics, collect_trace = collect
    profiler = enable_profiling() if collect_profile else None
    registry = enable_metrics() if collect_metrics else None
    tracer = RecordingTracer() if collect_trace else None
    if tracer is not None:
        add_tracer(tracer)
    return profiler, registry, tracer


def _worker_teardown(collect, profiler, registry, tracer) -> None:
    if collect[0]:
        disable_profiling()
    if collect[1]:
        disable_metrics()
    if tracer is not None:
        remove_tracer(tracer)


def _run_corpus_chunk(
    chunk: list,
    n: int | None,
    options: EvalOptions,
    collect: tuple[bool, bool, bool] = _COLLECT_NONE,
) -> tuple[list, StageProfiler | None, MetricsRegistry | None, list[TraceEvent] | None]:
    from repro.pipeline import evaluate_corpus

    profiler, registry, tracer = _worker_collectors(collect)
    try:
        worker_options = options.replace(cache=_worker_cache())
        results = [
            evaluate_corpus(name, loops, machine, n, worker_options)
            for name, loops, machine in chunk
        ]
    finally:
        _worker_teardown(collect, profiler, registry, tracer)
    return results, profiler, registry, tracer.events if tracer else None


def _run_program_chunk(
    chunk: list,
    n: int | None,
    options: EvalOptions,
    collect: tuple[bool, bool, bool] = _COLLECT_NONE,
) -> tuple[list, StageProfiler | None, MetricsRegistry | None, list[TraceEvent] | None]:
    from repro.pipeline import evaluate_program

    profiler, registry, tracer = _worker_collectors(collect)
    try:
        worker_options = options.replace(cache=_worker_cache())
        results = [
            evaluate_program(program, machine, n, worker_options)
            for program, machine in chunk
        ]
    finally:
        _worker_teardown(collect, profiler, registry, tracer)
    return results, profiler, registry, tracer.events if tracer else None


class ParallelEvaluator:
    """Chunked process-pool fan-out with deterministic result order."""

    def __init__(
        self,
        max_workers: int | None = None,
        chunk_size: int | None = None,
        min_pool_work: int = DEFAULT_MIN_POOL_WORK,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if min_pool_work < 0:
            raise ValueError("min_pool_work must be >= 0")
        self.max_workers = max_workers if max_workers is not None else os.cpu_count() or 1
        self.chunk_size = chunk_size
        self.min_pool_work = min_pool_work
        self.used_pool = False  # whether the last run actually fanned out
        self.fallback_reason: str | None = None  # why the last run stayed serial

    def _resolve_chunk_size(self, n_jobs: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        # ~4 chunks per worker balances load without drowning in pickling.
        return max(1, -(-n_jobs // (self.max_workers * 4)))

    def _map_chunks(
        self,
        worker,
        jobs: Sequence,
        n: int | None,
        options: EvalOptions,
        work: int | None = None,
    ) -> list:
        """Run ``worker`` over job chunks, serially or on a process pool;
        either way the flattened results keep the jobs' insertion order.
        ``work`` estimates the sweep size in loop evaluations for the
        ``min_pool_work`` threshold (``None`` = unknown, no threshold)."""
        jobs = list(jobs)
        self.used_pool = False
        self.fallback_reason = None
        with observation_scope(options):
            # Workers run their own collectors/caches; the options they
            # receive must be picklable and collector-free.
            options = options.replace(
                tracer=None, metrics=None, journal=None, cache=None, jobs=1
            )
            if self.max_workers <= 1 or len(jobs) <= 1:
                self.fallback_reason = (
                    "max_workers=1" if self.max_workers <= 1 else "single job"
                )
                metric_count("perf.parallel.mode.serial")
                # In-process: stages land on the parent collectors directly.
                return worker(jobs, n, options)[0]
            if (
                work is not None
                and self.min_pool_work > 0
                and work < self.min_pool_work
            ):
                self.fallback_reason = (
                    f"below min-work threshold ({work} < {self.min_pool_work} "
                    "loop evaluations)"
                )
                metric_count("perf.parallel.mode.serial")
                return worker(jobs, n, options)[0]
            chunks = chunked(jobs, self._resolve_chunk_size(len(jobs)))
            profiler = active_profiler()
            registry = active_metrics()
            collect = (
                profiler is not None,
                registry is not None,
                any(isinstance(t, RecordingTracer) for t in active_tracers()),
            )
            try:
                import concurrent.futures as cf

                with cf.ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                    futures = [
                        pool.submit(worker, chunk, n, options, collect)
                        for chunk in chunks
                    ]
                    per_chunk = [future.result() for future in futures]
                self.used_pool = True
            except (OSError, ImportError, PermissionError, NotImplementedError) as err:
                # No usable process pool on this platform: serial fallback.
                self.fallback_reason = f"{type(err).__name__}: {err}"
                metric_count("parallel.pool_fallbacks")
                metric_count("perf.parallel.mode.serial")
                return worker(jobs, n, options)[0]
            metric_count("parallel.pool_runs")
            metric_count("perf.parallel.mode.pool")
            metric_count("parallel.chunks", len(chunks))
            results = []
            for chunk_results, worker_profiler, worker_metrics, worker_events in per_chunk:
                results.extend(chunk_results)
                if profiler is not None and worker_profiler is not None:
                    profiler.merge(worker_profiler)
                if registry is not None and worker_metrics is not None:
                    registry.merge(worker_metrics)
                if worker_events:
                    ingest_events(worker_events)
            return results

    def evaluate_corpora(
        self,
        jobs: Sequence,
        n: int | None = None,
        options: EvalOptions | None = None,
        **legacy,
    ) -> "list[CorpusEvaluation]":
        """Evaluate ``(name, loops, machine)`` jobs; results in job order.

        ``options`` forwards to :func:`repro.pipeline.evaluate_corpus`
        (its ``cache``/``tracer``/``metrics``/``jobs`` fields are managed
        by the evaluator); legacy keyword arguments are deprecated shims.
        Each returned corpus carries this run's ``fallback_reason``.
        """
        options = EvalOptions.coerce(options, **legacy)
        work = sum(len(loops) for _name, loops, _machine in jobs)
        results = self._map_chunks(_run_corpus_chunk, jobs, n, options, work=work)
        for corpus in results:
            corpus.fallback_reason = self.fallback_reason
        return results

    def evaluate_programs(
        self,
        jobs: Sequence,
        n: int | None = None,
        options: EvalOptions | None = None,
        **legacy,
    ) -> "list[ProgramEvaluation]":
        """Evaluate ``(program_or_source, machine)`` jobs; results in job
        order.  ``options`` forwards to :func:`repro.pipeline.
        evaluate_program`."""
        options = EvalOptions.coerce(options, **legacy)
        return self._map_chunks(_run_program_chunk, jobs, n, options)
