"""Process-parallel corpus/program evaluation for large sweeps.

A sweep is a list of independent work items — ``(name, loops, machine)``
for :func:`repro.pipeline.evaluate_corpus` or ``(program, machine)`` for
:func:`repro.pipeline.evaluate_program`.  :class:`ParallelEvaluator` fans
the items out over a ``concurrent.futures.ProcessPoolExecutor`` in chunks
(one pickle round-trip per chunk, not per item) and merges the results in
**insertion order**: the output list always lines up index-for-index with
the input jobs, regardless of which worker finished first.

Each worker process keeps a process-global :class:`~repro.perf.cache.
CompileCache`, so a sweep that revisits a loop on several machines
compiles it once per worker rather than once per sweep point.

Observability rides along (see :mod:`repro.obs`): when the parent has an
active :class:`~repro.perf.profile.StageProfiler`, metrics registry, or
recording tracer, every worker collects into fresh local instances and
the parent folds them in after the fan-out.  Counter/histogram merging is
commutative, so **metrics aggregates are identical however the jobs were
partitioned** — ``--jobs 1`` and ``--jobs 4`` agree to the counter.

The evaluator degrades gracefully to in-process serial execution when
``max_workers=1``, when there is at most one job, when the sweep is too
small to amortize pool start-up (see ``min_pool_work``), or when the
platform cannot provide a process pool (sandboxes without
``fork``/semaphores) — results are identical either way, and
:attr:`ParallelEvaluator.fallback_reason` says why the pool was not
used.  The chosen mode is recorded as the
``perf.parallel.mode.{pool,serial}`` metric.

The ``min_pool_work`` threshold is **calibrated, not guessed**: in auto
mode the evaluator times one real loop evaluation (collectors detached)
and :func:`calibrate_min_pool_work` converts it into the pool's
break-even sweep size; the chosen threshold and probe cost are exposed
on :attr:`ParallelEvaluator.calibration` and recorded on the run
ledger.  A :class:`PersistentPool` keeps the executor — and every
worker's process-global cache — alive *across* sweeps, so a second
sweep starts with warm workers instead of paying spawn + re-warm again;
per-run worker cache-hit deltas surface on
:attr:`ParallelEvaluator.worker_cache_stats`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Sequence

from repro.obs.metrics import MetricsRegistry, active_metrics
from repro.obs.metrics import count as metric_count
from repro.obs.metrics import disable_metrics, enable_metrics
from repro.obs.trace import (
    RecordingTracer,
    TraceEvent,
    active_progress_sinks,
    active_tracers,
    add_progress_sink,
    add_tracer,
    emit_progress,
    ingest_events,
    remove_progress_sink,
    remove_tracer,
)
from repro.options import EvalOptions, observation_scope
from repro.perf.cache import CacheStats, CompileCache
from repro.robust.harden import FailureRecord, RobustPolicy, retry_delay
from repro.obs.prof import (
    Profile,
    Profiler,
    active_sampler,
    reset_after_fork,
)
from repro.perf.profile import (
    StageProfiler,
    active_profiler,
    disable_profiling,
    enable_profiling,
)
from repro.sched import MachineConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.ast_nodes import Loop
    from repro.pipeline import CorpusEvaluation, ProgramEvaluation

__all__ = [
    "CorpusJob",
    "DEFAULT_MIN_POOL_WORK",
    "DEFAULT_POOL_STARTUP_COST",
    "ParallelEvaluator",
    "PersistentPool",
    "ProgramJob",
    "calibrate_min_pool_work",
    "chunked",
]

#: Minimum number of loop evaluations before a pool pays for itself —
#: the *fallback* when the threshold can be neither probed nor was set
#: explicitly.  In the normal corpus-sweep path the evaluator instead
#: measures one evaluation and calibrates the threshold with
#: :func:`calibrate_min_pool_work` (the static 512 mis-filed measured
#: 144-eval sweeps into serial even when the pool won).  Pass
#: ``min_pool_work=0`` to force the pool regardless.
DEFAULT_MIN_POOL_WORK = 512

#: Fixed cost the break-even model charges for spawning and warming a
#: worker pool (seconds): interpreter start, imports, first pickles.
#: Deliberately conservative — a pool engaged a little late is cheaper
#: than a pool engaged for a sweep it slows down.
DEFAULT_POOL_STARTUP_COST = 0.25

#: Clamp bounds for a calibrated threshold: never pool below the floor
#: (per-job pickling overhead dominates), never demand more than the
#: ceiling (a degenerate probe must not disable the pool forever).
MIN_CALIBRATED_POOL_WORK = 32
MAX_CALIBRATED_POOL_WORK = 1_000_000


def calibrate_min_pool_work(
    per_eval_s: float,
    startup_cost_s: float = DEFAULT_POOL_STARTUP_COST,
    floor: int = MIN_CALIBRATED_POOL_WORK,
    ceiling: int = MAX_CALIBRATED_POOL_WORK,
) -> int:
    """The pool's break-even sweep size from a measured per-eval cost.

    The pool pays off when the serial cost of the sweep exceeds the
    pool's fixed start-up cost, i.e. beyond ``startup_cost_s /
    per_eval_s`` loop evaluations.  Clamped to ``[floor, ceiling]``;
    a non-positive ``per_eval_s`` (evaluations too fast to time) pins
    the threshold at the ceiling — pooling can only lose then.
    """
    if per_eval_s <= 0:
        return ceiling
    return max(floor, min(ceiling, int(startup_cost_s / per_eval_s)))

# (name, loops, machine) — one evaluate_corpus call.
CorpusJob = "tuple[str, list[Loop], MachineConfig]"
# (program source or Program, machine) — one evaluate_program call.
ProgramJob = "tuple[object, MachineConfig]"

# (profile, metrics, trace, sample_hz): which collectors a worker should
# run for the parent.  All-off in the serial path, where the parent's own
# collectors see the events directly.  ``sample_hz`` > 0 arms a
# worker-side sampling :class:`~repro.obs.prof.Profiler` whose folded
# stacks merge into the parent's sampler (non-deterministic counts, like
# ``robust.*`` — see docs/observability.md, "Continuous profiling").
_COLLECT_NONE = (False, False, False, 0.0)


def chunked(items: Sequence, size: int) -> list[list]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


# Process-global cache: reused by every chunk a worker executes.
_WORKER_CACHE: CompileCache | None = None

# Test seam: called with the chunk at the start of every chunk worker.
# The pool uses the fork start method on Linux, so a monkeypatched hook in
# the parent is visible inside the workers — the degradation tests use it
# to make a worker raise, hang, or die without touching production code.
_worker_fault_hook: Callable[[list], None] | None = None


def _worker_cache() -> CompileCache:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = CompileCache()
    return _WORKER_CACHE


def _warm_worker_cache(path: str) -> None:
    """Pool initializer: seed the worker's process-global cache from the
    PR-4 disk-persistence envelope (corruption degrades to a cold cache,
    never an error — see :meth:`CompileCache.load`)."""
    global _WORKER_CACHE
    _WORKER_CACHE = CompileCache.load(path)


def _cache_delta(before: CacheStats, after: CacheStats) -> CacheStats:
    """Hits/misses accrued between two snapshots of one worker's cache."""
    return CacheStats(
        compile_hits=after.compile_hits - before.compile_hits,
        compile_misses=after.compile_misses - before.compile_misses,
        schedule_hits=after.schedule_hits - before.schedule_hits,
        schedule_misses=after.schedule_misses - before.schedule_misses,
    )


@contextmanager
def _quiet_observation():
    """Detach every ambient collector — metrics, tracers, progress sinks
    — for the duration.  The calibration probe runs a real evaluation
    whose events must not leak into the run's deterministic metrics,
    trace, or progress stream."""
    registry = active_metrics()
    if registry is not None:
        disable_metrics()
    tracers = list(active_tracers())
    for tracer in tracers:
        remove_tracer(tracer)
    sinks = list(active_progress_sinks())
    for sink in sinks:
        remove_progress_sink(sink)
    try:
        yield
    finally:
        for sink in sinks:
            add_progress_sink(sink)
        for tracer in tracers:
            add_tracer(tracer)
        if registry is not None:
            enable_metrics(registry)


def _worker_collectors(collect: tuple[bool, bool, bool, float]):
    """Enable fresh per-worker collectors per the parent's request."""
    collect_profile, collect_metrics, collect_trace, sample_hz = collect
    profiler = enable_profiling() if collect_profile else None
    registry = enable_metrics() if collect_metrics else None
    tracer = RecordingTracer() if collect_trace else None
    if tracer is not None:
        add_tracer(tracer)
    sampler = None
    if sample_hz > 0:
        # Fork start method: the parent's sampler object was inherited but
        # its daemon thread was not — detach it and arm a fresh one.
        reset_after_fork()
        sampler = Profiler(sample_hz)
        add_tracer(sampler)
        sampler.start_sampling()
    return profiler, registry, tracer, sampler


def _worker_teardown(collect, profiler, registry, tracer, sampler) -> Profile | None:
    if collect[0]:
        disable_profiling()
    if collect[1]:
        disable_metrics()
    if tracer is not None:
        remove_tracer(tracer)
    if sampler is None:
        return None
    remove_tracer(sampler)
    return sampler.stop_sampling()


def _run_corpus_chunk(
    chunk: list,
    n: int | None,
    options: EvalOptions,
    collect: tuple[bool, bool, bool, float] = _COLLECT_NONE,
) -> tuple[
    list,
    StageProfiler | None,
    MetricsRegistry | None,
    list[TraceEvent] | None,
    Profile | None,
    tuple[int, CacheStats],
]:
    from repro.pipeline import evaluate_corpus

    if _worker_fault_hook is not None:
        _worker_fault_hook(chunk)
    profiler, registry, tracer, sampler = _worker_collectors(collect)
    cache = _worker_cache()
    before = dataclasses.replace(cache.stats)
    try:
        worker_options = options.replace(cache=cache)
        results = [
            evaluate_corpus(name, loops, machine, n, worker_options)
            for name, loops, machine in chunk
        ]
    finally:
        samples = _worker_teardown(collect, profiler, registry, tracer, sampler)
    cache_info = (os.getpid(), _cache_delta(before, cache.stats))
    events = tracer.events if tracer else None
    return results, profiler, registry, events, samples, cache_info


def _run_program_chunk(
    chunk: list,
    n: int | None,
    options: EvalOptions,
    collect: tuple[bool, bool, bool, float] = _COLLECT_NONE,
) -> tuple[
    list,
    StageProfiler | None,
    MetricsRegistry | None,
    list[TraceEvent] | None,
    Profile | None,
    tuple[int, CacheStats],
]:
    from repro.pipeline import evaluate_program

    if _worker_fault_hook is not None:
        _worker_fault_hook(chunk)
    profiler, registry, tracer, sampler = _worker_collectors(collect)
    cache = _worker_cache()
    before = dataclasses.replace(cache.stats)
    try:
        worker_options = options.replace(cache=cache)
        results = [
            evaluate_program(program, machine, n, worker_options)
            for program, machine in chunk
        ]
    finally:
        samples = _worker_teardown(collect, profiler, registry, tracer, sampler)
    cache_info = (os.getpid(), _cache_delta(before, cache.stats))
    events = tracer.events if tracer else None
    return results, profiler, registry, events, samples, cache_info


def _failed_corpus_job(job, index: int, error: BaseException):
    """Placeholder result for a corpus job that still fails after the
    pool's retries and the in-process serial re-run: structured failure,
    no evaluations — the sweep's output stays index-aligned."""
    from repro.pipeline import CorpusEvaluation

    name, _loops, machine = job
    result = CorpusEvaluation(name=name, machine=machine)
    result.failures.append(FailureRecord.from_exception("job", name, index, error))
    return result


def _failed_program_job(job, index: int, error: BaseException):
    from repro.pipeline import ProgramEvaluation

    program, machine = job
    name = getattr(program, "name", None) or "program"
    result = ProgramEvaluation(program=program, machine=machine)
    result.failures.append(FailureRecord.from_exception("job", name, index, error))
    return result


def _chunk_affinity(chunk: Sequence) -> int:
    """Stable affinity key for a chunk of jobs: a digest of each job's
    name and machine.  Identical chunks hash identically across sweeps
    (and processes), so a :class:`PersistentPool` can route a repeated
    chunk back to the worker whose cache already holds it."""
    parts = []
    for job in chunk:
        head, tail = job[0], job[-1]
        name = head if isinstance(head, str) else getattr(head, "name", None) or str(head)
        parts.append(f"{name}|{getattr(tail, 'name', tail)}")
    digest = hashlib.sha256("||".join(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class PersistentPool:
    """A worker pool that survives across sweeps, with cache affinity.

    A fresh ``ProcessPoolExecutor`` per sweep pays the spawn cost every
    run *and* throws away the workers' process-global
    :class:`~repro.perf.cache.CompileCache` — the second sweep re-warms
    from nothing.  A ``PersistentPool`` keeps the workers (and their warm
    caches) alive between :class:`ParallelEvaluator` runs.

    The pool is built as ``max_workers`` single-worker executor *lanes*
    rather than one shared executor, and :meth:`submit` routes each chunk
    to ``lane = content_hash(chunk) % lanes``.  A shared executor hands
    chunks to whichever worker is idle, so a re-run can scatter every
    chunk onto the one worker that has *not* cached it (observed: two
    identical sweeps on two workers, zero cross-sweep hits).  Content
    routing makes reuse deterministic: the same chunk always reaches the
    same process, so a repeated sweep hits that worker's compile and
    schedule memos.  The trade is static load balance — lanes cannot
    steal work — which uniform chunk sizes keep small.

    * **spawn** — lazily, on the first :meth:`submit` (or :meth:`lanes`)
      call.  With ``warm_cache_file`` each worker seeds its cache from
      the PR-4 disk-persistence envelope (a corrupt file degrades to a
      cold cache, exactly as :meth:`CompileCache.load` documents).
    * **reuse** — subsequent sweeps submit to the same lanes;
      ``sweeps_served`` counts them and the workers' cache-hit deltas
      surface per run on
      :attr:`ParallelEvaluator.worker_cache_stats`.
    * **retire** — :meth:`close` for an orderly shutdown (also the
      context-manager exit); :meth:`invalidate` for a pool the
      degradation ladder found hung or broken — the lanes are abandoned
      without waiting and the next sweep spawns a fresh generation
      (``generation`` counts spawns).
    """

    def __init__(
        self,
        max_workers: int | None = None,
        warm_cache_file: "str | os.PathLike | None" = None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers if max_workers is not None else os.cpu_count() or 1
        self.warm_cache_file = (
            os.fspath(warm_cache_file) if warm_cache_file is not None else None
        )
        self._lanes: list | None = None
        self.generation = 0  # lane-set spawns (invalidate → respawn bumps it)
        self.sweeps_served = 0  # pooled runs answered by live lanes

    @property
    def alive(self) -> bool:
        """Whether the lanes are currently up (workers warm)."""
        return self._lanes is not None

    def lanes(self) -> list:
        """The live single-worker executors, spawning them if needed."""
        if self._lanes is None:
            import concurrent.futures as cf

            kwargs: dict = {}
            if self.warm_cache_file is not None:
                kwargs["initializer"] = _warm_worker_cache
                kwargs["initargs"] = (self.warm_cache_file,)
            self._lanes = [
                cf.ProcessPoolExecutor(max_workers=1, **kwargs)
                for _ in range(self.max_workers)
            ]
            self.generation += 1
            metric_count("perf.pool.spawns")
        return self._lanes

    def submit(self, fn, chunk, *args):
        """Submit ``fn(chunk, *args)`` to the chunk's affinity lane."""
        lanes = self.lanes()
        return lanes[_chunk_affinity(chunk) % len(lanes)].submit(fn, chunk, *args)

    def invalidate(self) -> None:
        """Abandon hung or broken lanes without waiting on them; the
        next :meth:`submit` call spawns a fresh generation."""
        lanes, self._lanes = self._lanes, None
        if lanes is not None:
            metric_count("perf.pool.invalidated")
            for lane in lanes:
                lane.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Orderly retirement: wait for in-flight work, then shut down."""
        lanes, self._lanes = self._lanes, None
        if lanes is not None:
            for lane in lanes:
                lane.shutdown(wait=True)

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ParallelEvaluator:
    """Chunked process-pool fan-out with deterministic result order.

    ``policy`` (a :class:`~repro.robust.harden.RobustPolicy`) arms the
    degradation ladder for pooled runs — per-chunk timeout, bounded retry
    with backoff, and per-job quarantine on the serial re-run path.
    ``BrokenProcessPool`` recovery is always on: completed chunks are
    kept and the rest re-run serially in-process.  Without a policy any
    worker exception propagates (the pre-robustness fail-fast).
    """

    def __init__(
        self,
        max_workers: int | None = None,
        chunk_size: int | None = None,
        min_pool_work: int | None = None,
        policy: RobustPolicy | None = None,
        pool: PersistentPool | None = None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if min_pool_work is not None and min_pool_work < 0:
            raise ValueError("min_pool_work must be >= 0")
        if max_workers is None and pool is not None:
            max_workers = pool.max_workers
        self.max_workers = max_workers if max_workers is not None else os.cpu_count() or 1
        self.chunk_size = chunk_size
        #: Constructor override; ``None`` defers to
        #: ``EvalOptions.min_pool_work``, then to a per-run calibration
        #: probe, then to :data:`DEFAULT_MIN_POOL_WORK`
        #: (see :meth:`_resolve_min_pool_work`).
        self.min_pool_work = min_pool_work
        self.policy = policy
        #: A :class:`PersistentPool` to submit to instead of spawning a
        #: throwaway executor per run; it is left running afterwards
        #: (workers keep their warm caches for the next sweep) and only
        #: invalidated when the degradation ladder finds it hung/broken.
        self.pool = pool
        self.used_pool = False  # whether the last run actually fanned out
        self.fallback_reason: str | None = None  # why the last run stayed serial
        #: How the last run's ``min_pool_work`` was chosen:
        #: ``{"min_pool_work", "source", "per_eval_s", "probe_s"}`` with
        #: source ``constructor`` / ``options`` / ``probe`` / ``default``.
        self.calibration: dict | None = None
        #: Cache hits/misses accrued *inside the workers* during the last
        #: run (summed deltas, not lifetime totals) — on a persistent
        #: pool's second sweep ``schedule_hits > 0`` proves cross-sweep
        #: reuse.
        self.worker_cache_stats = CacheStats()
        self._progress_done = 0  # jobs finished (live progress events)
        self._progress_total = 0
        self._progress_retries = 0
        self._progress_quarantined = 0

    def _resolve_min_pool_work(
        self, options: EvalOptions, probe: Callable[[], "tuple[float, float] | None"] | None = None
    ) -> int:
        """Constructor beats options beats the calibration probe beats
        the module default — so a test that built the evaluator with
        ``min_pool_work=0`` keeps forcing the pool, while ``repro sweep
        --min-pool-work`` reaches here via
        :attr:`EvalOptions.min_pool_work`.  In auto mode (neither set)
        ``probe`` measures one real evaluation and
        :func:`calibrate_min_pool_work` turns it into the pool's
        break-even sweep size; the chosen threshold and probe cost land
        on :attr:`calibration` and the run ledger."""
        if self.min_pool_work is not None:
            self.calibration = {
                "min_pool_work": self.min_pool_work, "source": "constructor",
                "per_eval_s": None, "probe_s": None,
            }
            return self.min_pool_work
        if options.min_pool_work is not None:
            self.calibration = {
                "min_pool_work": options.min_pool_work, "source": "options",
                "per_eval_s": None, "probe_s": None,
            }
            return options.min_pool_work
        if probe is not None:
            measured = probe()
            if measured is not None:
                per_eval_s, probe_s = measured
                threshold = calibrate_min_pool_work(per_eval_s)
                metric_count("perf.parallel.calibrations")
                self.calibration = {
                    "min_pool_work": threshold, "source": "probe",
                    "per_eval_s": per_eval_s, "probe_s": probe_s,
                }
                return threshold
        self.calibration = {
            "min_pool_work": DEFAULT_MIN_POOL_WORK, "source": "default",
            "per_eval_s": None, "probe_s": None,
        }
        return DEFAULT_MIN_POOL_WORK

    def _probe_per_eval(self, jobs, n, options: EvalOptions) -> "tuple[float, float] | None":
        """Time one real loop evaluation (the first non-empty job's first
        loop) with all ambient collectors detached; the result is
        discarded.  Returns ``(per_eval_s, probe_s)`` or ``None`` when
        nothing could be measured — probe failures must never fail the
        sweep, they just fall back to the static default."""
        from repro.pipeline import evaluate_corpus

        for name, loops, machine in jobs:
            if not loops:
                continue
            probe_options = options.replace(
                tracer=None, metrics=None, journal=None, cache=None, jobs=1,
                ledger=None, progress=False, robust=None,
            )
            with _quiet_observation():
                start = time.perf_counter()
                try:
                    evaluate_corpus(name, [loops[0]], machine, n, probe_options)
                except Exception:
                    return None
                probe_s = time.perf_counter() - start
            return probe_s, probe_s
        return None

    def _note_mode(self, mode: str, min_pool_work: int) -> None:
        """Record the chosen execution mode (and how ``min_pool_work``
        was calibrated) on the run ledger, if one is recording this
        invocation (``--ledger``; see :mod:`repro.obs.ledger`)."""
        from repro.obs.ledger import active_recorder

        recorder = active_recorder()
        if recorder is not None:
            detail = mode if self.fallback_reason is None else (
                f"{mode}: {self.fallback_reason}"
            )
            suffix = f"min_pool_work={min_pool_work}"
            if self.calibration is not None and self.calibration["source"] == "probe":
                suffix += (
                    f", calibrated from a "
                    f"{self.calibration['per_eval_s'] * 1e3:.2f}ms/eval probe"
                )
            recorder.note_mode(f"{detail} ({suffix})")
            if self.calibration is not None:
                recorder.note_calibration(self.calibration)

    def _resolve_chunk_size(self, n_jobs: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        # ~4 chunks per worker balances load without drowning in pickling.
        return max(1, -(-n_jobs // (self.max_workers * 4)))

    def _collect_chunks(
        self, pool, futures: list, chunks: list, worker, n, options, collect,
        owns_pool: bool = True,
    ) -> list:
        """Harvest pooled chunk results in order, riding the degradation
        ladder of :class:`~repro.robust.harden.RobustPolicy`.

        Returns one entry per chunk; ``None`` marks a chunk that must be
        re-run serially (hung past the chunk timeout, died with the pool,
        or kept raising through its retries).  Without a policy a worker
        exception propagates unchanged — except ``BrokenProcessPool``,
        whose recovery (keep finished chunks, re-run the dead ones) is
        always on.
        """
        import concurrent.futures as cf
        from concurrent.futures.process import BrokenProcessPool

        policy = self.policy
        per_chunk: list = [None] * len(chunks)
        abandoned = False  # a hung worker wedged the pool: stop waiting on it
        broken = False
        try:
            for i, future in enumerate(futures):
                if abandoned or broken:
                    # Keep whatever already finished; everything else re-runs.
                    if future.done():
                        try:
                            per_chunk[i] = future.result(timeout=0)
                        except Exception:
                            per_chunk[i] = None
                    continue
                attempt = 0
                while True:
                    timeout = policy.chunk_timeout if policy is not None else None
                    try:
                        per_chunk[i] = self._wait_result(future, timeout)
                        self._progress_done += len(chunks[i])
                        emit_progress(
                            "sweep",
                            self._progress_done,
                            self._progress_total,
                            message=f"chunk {i + 1}/{len(chunks)} done",
                            retries=self._progress_retries,
                            quarantined=self._progress_quarantined,
                        )
                        break
                    except cf.TimeoutError:
                        # A worker is hung.  result(timeout) cannot kill it —
                        # abandon the pool and finish the sweep in-process.
                        metric_count("robust.parallel.timeouts")
                        self.fallback_reason = (
                            f"chunk {i} exceeded the {policy.chunk_timeout:g}s "
                            "chunk timeout; unfinished chunks re-ran serially"
                        )
                        abandoned = True
                        break
                    except BrokenProcessPool as err:
                        if not broken:
                            metric_count("robust.parallel.broken_pool")
                            self.fallback_reason = (
                                f"process pool broke ({err}); unfinished "
                                "chunks re-ran serially"
                            )
                        broken = True
                        break
                    except Exception:
                        if policy is None:
                            raise  # fail fast: the pre-robustness behaviour
                        if attempt < policy.max_retries:
                            metric_count("robust.parallel.retries")
                            self._progress_retries += 1
                            emit_progress(
                                "sweep",
                                self._progress_done,
                                self._progress_total,
                                message=f"retrying chunk {i + 1}/{len(chunks)}",
                                retries=self._progress_retries,
                                quarantined=self._progress_quarantined,
                            )
                            time.sleep(retry_delay(policy, i, attempt))
                            attempt += 1
                            try:
                                future = pool.submit(worker, chunks[i], n, options, collect)
                            except RuntimeError:  # pool shut down underneath us
                                broken = True
                                break
                            continue
                        break  # retries exhausted: serial re-run decides
        finally:
            if owns_pool:
                # A wedged pool must not be joined (shutdown(wait=True)
                # would block on the hung worker forever).
                pool.shutdown(wait=not abandoned, cancel_futures=abandoned or broken)
            elif abandoned or broken:
                # A persistent pool that hung or broke is retired without
                # waiting; the next sweep spawns a fresh generation.
                self.pool.invalidate()
        return per_chunk

    def _wait_result(self, future, timeout: float | None):
        """``future.result(timeout)`` that emits heartbeat progress events
        in 0.2 s slices while sinks are listening — a wedged pool shows up
        live instead of silently eating the whole chunk timeout.  Total
        timeout semantics are unchanged; with no sink installed this is
        exactly ``future.result(timeout)``."""
        import concurrent.futures as cf

        if not active_progress_sinks():
            return future.result(timeout=timeout)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise cf.TimeoutError()
            slice_s = 0.2 if remaining is None else min(0.2, remaining)
            try:
                return future.result(timeout=slice_s)
            except cf.TimeoutError:
                emit_progress(
                    "sweep",
                    self._progress_done,
                    self._progress_total,
                    message="waiting on pool",
                    retries=self._progress_retries,
                    quarantined=self._progress_quarantined,
                )

    def _serial_chunk(
        self, worker, chunk: list, n, options, make_failed, base_index: int
    ):
        """In-process re-run of one failed chunk, one job at a time so a
        single poisoned job quarantines instead of sinking its chunk."""
        results = []
        for j, job in enumerate(chunk):
            try:
                results.append(worker([job], n, options)[0][0])
            except Exception as err:
                if (
                    self.policy is None
                    or not self.policy.quarantine
                    or make_failed is None
                ):
                    raise
                metric_count("robust.quarantine.jobs")
                self._progress_quarantined += 1
                results.append(make_failed(job, base_index + j, err))
            self._progress_done += 1
            emit_progress(
                "sweep",
                self._progress_done,
                self._progress_total,
                message=f"serial re-run of job {base_index + j + 1}",
                retries=self._progress_retries,
                quarantined=self._progress_quarantined,
            )
        # In-process: collectors landed on the parent directly, so there is
        # nothing to merge (same shape as a pooled chunk result).
        return (results, None, None, None, None, None)

    def _absorb_cache_info(self, cache_info) -> None:
        """Fold one chunk's worker cache delta into this run's total."""
        if not cache_info:
            return
        _pid, delta = cache_info
        stats = self.worker_cache_stats
        stats.compile_hits += delta.compile_hits
        stats.compile_misses += delta.compile_misses
        stats.schedule_hits += delta.schedule_hits
        stats.schedule_misses += delta.schedule_misses

    def _serial_run(self, worker, jobs, n, options) -> list:
        """In-process execution of the whole run (the serial fallback)."""
        results, _profiler, _metrics, _events, _samples, cache_info = worker(
            jobs, n, options
        )
        self._absorb_cache_info(cache_info)
        return results

    def _map_chunks(
        self,
        worker,
        jobs: Sequence,
        n: int | None,
        options: EvalOptions,
        work: int | None = None,
        make_failed: Callable | None = None,
        probe: Callable | None = None,
    ) -> list:
        """Run ``worker`` over job chunks, serially or on a process pool;
        either way the flattened results keep the jobs' insertion order.
        ``work`` estimates the sweep size in loop evaluations for the
        ``min_pool_work`` threshold (``None`` = unknown, no threshold).
        ``make_failed(job, index, error)`` builds the quarantine
        placeholder for a job that fails even the serial re-run.
        ``probe`` measures one evaluation for threshold calibration; it
        only runs in auto mode, and only when the pool is a candidate
        (several jobs, several workers, known work estimate)."""
        jobs = list(jobs)
        self.used_pool = False
        self.fallback_reason = None
        self.calibration = None
        self.worker_cache_stats = CacheStats()
        self._progress_done = 0
        self._progress_total = len(jobs)
        self._progress_retries = 0
        self._progress_quarantined = 0
        if not (self.max_workers > 1 and len(jobs) > 1 and work is not None):
            probe = None  # the threshold cannot change the outcome: skip it
        min_pool_work = self._resolve_min_pool_work(options, probe)
        with observation_scope(options):
            # Workers run their own collectors/caches; the options they
            # receive must be picklable and collector-free.
            options = options.replace(
                tracer=None, metrics=None, journal=None, cache=None, jobs=1,
                ledger=None, progress=False,
            )
            if self.max_workers <= 1 or len(jobs) <= 1:
                self.fallback_reason = (
                    "max_workers=1" if self.max_workers <= 1 else "single job"
                )
                metric_count("perf.parallel.mode.serial")
                self._note_mode("serial", min_pool_work)
                # In-process: stages land on the parent collectors directly.
                return self._serial_run(worker, jobs, n, options)
            if work is not None and min_pool_work > 0 and work < min_pool_work:
                self.fallback_reason = (
                    f"below min-work threshold ({work} < {min_pool_work} "
                    "loop evaluations)"
                )
                metric_count("perf.parallel.mode.serial")
                self._note_mode("serial", min_pool_work)
                return self._serial_run(worker, jobs, n, options)
            chunks = chunked(jobs, self._resolve_chunk_size(len(jobs)))
            profiler = active_profiler()
            registry = active_metrics()
            sampler = active_sampler()
            collect = (
                profiler is not None,
                registry is not None,
                any(isinstance(t, RecordingTracer) for t in active_tracers()),
                sampler.hz if sampler is not None else 0.0,
            )
            owns_pool = self.pool is None
            try:
                import concurrent.futures as cf

                if owns_pool:
                    pool = cf.ProcessPoolExecutor(max_workers=self.max_workers)
                else:
                    self.pool.lanes()  # spawn inside the try: failures fall back
                    pool = self.pool
                futures = [
                    pool.submit(worker, chunk, n, options, collect)
                    for chunk in chunks
                ]
            except (OSError, ImportError, PermissionError, NotImplementedError, RuntimeError) as err:
                # No usable process pool on this platform (or the
                # persistent pool could not spawn): serial fallback.
                if not owns_pool:
                    self.pool.invalidate()
                self.fallback_reason = f"{type(err).__name__}: {err}"
                metric_count("parallel.pool_fallbacks")
                metric_count("perf.parallel.mode.serial")
                self._note_mode("serial", min_pool_work)
                return self._serial_run(worker, jobs, n, options)
            per_chunk = self._collect_chunks(
                pool, futures, chunks, worker, n, options, collect, owns_pool
            )
            self.used_pool = True
            if self.pool is not None and self.pool.alive:
                self.pool.sweeps_served += 1
            rerun = [i for i, chunk_result in enumerate(per_chunk) if chunk_result is None]
            if rerun:
                # Degraded: the unfinished chunks re-run serially in-process
                # (job by job, quarantining per the policy), so the merged
                # output is still complete and in insertion order.
                metric_count("robust.parallel.serial_reruns", len(rerun))
                offsets = [0]
                for chunk in chunks:
                    offsets.append(offsets[-1] + len(chunk))
                for i in rerun:
                    per_chunk[i] = self._serial_chunk(
                        worker, chunks[i], n, options, make_failed, offsets[i]
                    )
            metric_count("parallel.pool_runs")
            metric_count("perf.parallel.mode.pool")
            metric_count("parallel.chunks", len(chunks))
            pool_kind = "persistent pool" if self.pool is not None else "pool"
            self._note_mode(
                f"{pool_kind}[{self.max_workers} worker(s), {len(chunks)} chunk(s)]",
                min_pool_work,
            )
            results = []
            for (
                chunk_results,
                worker_profiler,
                worker_metrics,
                worker_events,
                worker_samples,
                cache_info,
            ) in per_chunk:
                results.extend(chunk_results)
                if profiler is not None and worker_profiler is not None:
                    profiler.merge(worker_profiler)
                if registry is not None and worker_metrics is not None:
                    registry.merge(worker_metrics)
                if worker_events:
                    ingest_events(worker_events)
                if sampler is not None and worker_samples is not None:
                    sampler.merge_profile(worker_samples)
                self._absorb_cache_info(cache_info)
            return results

    def evaluate_corpora(
        self,
        jobs: Sequence,
        n: int | None = None,
        options: EvalOptions | None = None,
        **legacy,
    ) -> "list[CorpusEvaluation]":
        """Evaluate ``(name, loops, machine)`` jobs; results in job order.

        ``options`` forwards to :func:`repro.pipeline.evaluate_corpus`
        (its ``cache``/``tracer``/``metrics``/``jobs`` fields are managed
        by the evaluator); legacy keyword arguments are deprecated shims.
        Each returned corpus carries this run's ``fallback_reason``.
        """
        options = EvalOptions.coerce(options, **legacy)
        work = sum(len(loops) for _name, loops, _machine in jobs)
        results = self._map_chunks(
            _run_corpus_chunk, jobs, n, options, work=work,
            make_failed=_failed_corpus_job,
            probe=lambda: self._probe_per_eval(jobs, n, options),
        )
        for corpus in results:
            corpus.fallback_reason = self.fallback_reason
        return results

    def evaluate_programs(
        self,
        jobs: Sequence,
        n: int | None = None,
        options: EvalOptions | None = None,
        **legacy,
    ) -> "list[ProgramEvaluation]":
        """Evaluate ``(program_or_source, machine)`` jobs; results in job
        order.  ``options`` forwards to :func:`repro.pipeline.
        evaluate_program`."""
        options = EvalOptions.coerce(options, **legacy)
        return self._map_chunks(
            _run_program_chunk, jobs, n, options, make_failed=_failed_program_job
        )
