"""Process-parallel corpus/program evaluation for large sweeps.

A sweep is a list of independent work items — ``(name, loops, machine)``
for :func:`repro.pipeline.evaluate_corpus` or ``(program, machine)`` for
:func:`repro.pipeline.evaluate_program`.  :class:`ParallelEvaluator` fans
the items out over a ``concurrent.futures.ProcessPoolExecutor`` in chunks
(one pickle round-trip per chunk, not per item) and merges the results in
**insertion order**: the output list always lines up index-for-index with
the input jobs, regardless of which worker finished first.

Each worker process keeps a process-global :class:`~repro.perf.cache.
CompileCache`, so a sweep that revisits a loop on several machines
compiles it once per worker rather than once per sweep point.

The evaluator degrades gracefully to in-process serial execution when
``max_workers=1``, when there is at most one job, or when the platform
cannot provide a process pool (sandboxes without ``fork``/semaphores) —
results are identical either way.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Sequence

from repro.perf.cache import CompileCache
from repro.perf.profile import StageProfiler, active_profiler, disable_profiling, enable_profiling
from repro.sched import MachineConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.ast_nodes import Loop
    from repro.pipeline import CorpusEvaluation, ProgramEvaluation

__all__ = ["CorpusJob", "ParallelEvaluator", "ProgramJob", "chunked"]

# (name, loops, machine) — one evaluate_corpus call.
CorpusJob = "tuple[str, list[Loop], MachineConfig]"
# (program source or Program, machine) — one evaluate_program call.
ProgramJob = "tuple[object, MachineConfig]"


def chunked(items: Sequence, size: int) -> list[list]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


# Process-global cache: reused by every chunk a worker executes.
_WORKER_CACHE: CompileCache | None = None


def _worker_cache() -> CompileCache:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = CompileCache()
    return _WORKER_CACHE


def _run_corpus_chunk(
    chunk: list, n: int | None, kwargs: dict, profile: bool = False
) -> tuple[list, StageProfiler | None]:
    from repro.pipeline import evaluate_corpus

    profiler = enable_profiling() if profile else None
    try:
        cache = _worker_cache()
        results = [
            evaluate_corpus(name, loops, machine, n, cache=cache, **kwargs)
            for name, loops, machine in chunk
        ]
    finally:
        if profile:
            disable_profiling()
    return results, profiler


def _run_program_chunk(
    chunk: list, n: int | None, kwargs: dict, profile: bool = False
) -> tuple[list, StageProfiler | None]:
    from repro.pipeline import evaluate_program

    profiler = enable_profiling() if profile else None
    try:
        cache = _worker_cache()
        results = [
            evaluate_program(program, machine, n, cache=cache, **kwargs)
            for program, machine in chunk
        ]
    finally:
        if profile:
            disable_profiling()
    return results, profiler


class ParallelEvaluator:
    """Chunked process-pool fan-out with deterministic result order."""

    def __init__(self, max_workers: int | None = None, chunk_size: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.max_workers = max_workers if max_workers is not None else os.cpu_count() or 1
        self.chunk_size = chunk_size
        self.used_pool = False  # whether the last run actually fanned out
        self.fallback_reason: str | None = None  # why the last run stayed serial

    def _resolve_chunk_size(self, n_jobs: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        # ~4 chunks per worker balances load without drowning in pickling.
        return max(1, -(-n_jobs // (self.max_workers * 4)))

    def _map_chunks(self, worker, jobs: Sequence, n: int | None, kwargs: dict) -> list:
        """Run ``worker`` over job chunks, serially or on a process pool;
        either way the flattened results keep the jobs' insertion order."""
        jobs = list(jobs)
        self.used_pool = False
        self.fallback_reason = None
        if self.max_workers <= 1 or len(jobs) <= 1:
            self.fallback_reason = "max_workers=1" if self.max_workers <= 1 else "single job"
            # In-process: stages land on the main profiler directly.
            return worker(jobs, n, kwargs)[0]
        chunks = chunked(jobs, self._resolve_chunk_size(len(jobs)))
        profiler = active_profiler()
        try:
            import concurrent.futures as cf

            with cf.ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                futures = [
                    pool.submit(worker, chunk, n, kwargs, profiler is not None)
                    for chunk in chunks
                ]
                per_chunk = [future.result() for future in futures]
            self.used_pool = True
        except (OSError, ImportError, PermissionError, NotImplementedError) as err:
            # No usable process pool on this platform: serial fallback.
            self.fallback_reason = f"{type(err).__name__}: {err}"
            return worker(jobs, n, kwargs)[0]
        results = []
        for chunk_results, worker_profiler in per_chunk:
            results.extend(chunk_results)
            if profiler is not None and worker_profiler is not None:
                profiler.merge(worker_profiler)
        return results

    def evaluate_corpora(
        self, jobs: Sequence, n: int | None = None, **kwargs
    ) -> "list[CorpusEvaluation]":
        """Evaluate ``(name, loops, machine)`` jobs; results in job order.

        ``kwargs`` are forwarded to :func:`repro.pipeline.evaluate_corpus`
        (``apply_restructuring``, ``fuse``, ``exact_simulation``, ...) and
        must be picklable when a pool is used.
        """
        return self._map_chunks(_run_corpus_chunk, jobs, n, kwargs)

    def evaluate_programs(
        self, jobs: Sequence, n: int | None = None, **kwargs
    ) -> "list[ProgramEvaluation]":
        """Evaluate ``(program_or_source, machine)`` jobs; results in job
        order.  ``kwargs`` forward to :func:`repro.pipeline.
        evaluate_program`."""
        return self._map_chunks(_run_program_chunk, jobs, n, kwargs)
