"""Lightweight stage-timing instrumentation for the pipeline.

A :class:`StageProfiler` accumulates wall-clock seconds and call counts per
named stage ("parse", "deps", "sync", "lower", "dfg", "schedule", "verify",
"simulate", ...).  Since the :mod:`repro.obs` redesign the profiler is one
pluggable :class:`repro.obs.trace.Tracer` among others: the pipeline marks
its stages with :func:`repro.obs.span`, and :func:`enable_profiling`
simply installs a ``StageProfiler`` as a tracer.  :func:`profiled` is kept
as a deprecated-in-name-only alias of ``span`` for older call sites — the
no-tracer fast path still costs one global read.

``repro --profile <command>`` enables a profiler around any CLI command and
prints the report to stderr; see ``docs/performance.md`` for the format.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.trace import Tracer, add_tracer, remove_tracer, span

__all__ = [
    "StageProfiler",
    "active_profiler",
    "disable_profiling",
    "enable_profiling",
    "profiled",
]


@dataclass
class StageProfiler(Tracer):
    """Per-stage wall-clock accumulator: seconds and call counts."""

    seconds: dict[str, float] = field(default_factory=dict)
    calls: dict[str, int] = field(default_factory=dict)

    # -- the Tracer interface (used when installed via repro.obs) -----------

    def start(self, name: str, attrs: dict[str, Any] | None) -> float:
        return time.perf_counter()

    def finish(self, name: str, token: float, attrs: dict[str, Any] | None) -> None:
        elapsed = time.perf_counter() - token
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        self.calls[name] = self.calls.get(name, 0) + 1

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        token = self.start(name, None)
        try:
            yield
        finally:
            self.finish(name, token, None)

    def count(self, name: str, amount: int = 1) -> None:
        """Bump a counter without timing (cache hits, fast-path takes...)."""
        self.calls[name] = self.calls.get(name, 0) + amount
        self.seconds.setdefault(name, 0.0)

    def merge(self, other: "StageProfiler") -> None:
        """Fold another profiler's totals in (e.g. from a worker process)."""
        for name, secs in other.seconds.items():
            self.seconds[name] = self.seconds.get(name, 0.0) + secs
        for name, n in other.calls.items():
            self.calls[name] = self.calls.get(name, 0) + n

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def as_dict(self) -> dict[str, dict[str, float]]:
        return {
            name: {"seconds": self.seconds[name], "calls": self.calls.get(name, 0)}
            for name in self.seconds
        }

    def format(self) -> str:
        """Aligned table, slowest stage first::

            stage         calls   seconds  share
            schedule        160     0.166  55.3%
        """
        if not self.seconds:
            return "no stages recorded"
        total = self.total_seconds or 1.0
        rows = sorted(self.seconds.items(), key=lambda kv: -kv[1])
        width = max(len("stage"), *(len(name) for name in self.seconds))
        lines = [f"{'stage':<{width}}  {'calls':>7}  {'seconds':>9}  {'share':>6}"]
        for name, secs in rows:
            lines.append(
                f"{name:<{width}}  {self.calls.get(name, 0):>7}  {secs:>9.4f}"
                f"  {100.0 * secs / total:>5.1f}%"
            )
        lines.append(f"{'total':<{width}}  {'':>7}  {self.total_seconds:>9.4f}")
        return "\n".join(lines)


_ACTIVE: StageProfiler | None = None


def enable_profiling(profiler: StageProfiler | None = None) -> StageProfiler:
    """Install ``profiler`` (or a fresh one) as the active collector.

    The profiler is registered as a :mod:`repro.obs` tracer, so every
    :func:`repro.obs.span` in the pipeline reports to it.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        remove_tracer(_ACTIVE)
    _ACTIVE = profiler if profiler is not None else StageProfiler()
    add_tracer(_ACTIVE)
    return _ACTIVE


def disable_profiling() -> StageProfiler | None:
    """Deactivate and return the previously active profiler, if any."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, None
    if previous is not None:
        remove_tracer(previous)
    return previous


def active_profiler() -> StageProfiler | None:
    return _ACTIVE


# Stage markers are spans now; `profiled` remains for older call sites.
profiled = span
