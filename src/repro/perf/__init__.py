"""Sweep-scale performance layer.

Three independent accelerators for the experiment harness:

* :mod:`repro.perf.cache` — :class:`CompileCache`: a content-addressed
  compile cache plus a per-machine schedule memo, so a sweep compiles each
  loop once (not once per machine case) and a re-run schedules nothing.
* :mod:`repro.perf.parallel` — :class:`ParallelEvaluator`: chunked
  ``ProcessPoolExecutor`` fan-out of corpus/program evaluations with
  deterministic, insertion-order result merging and a serial fallback;
  :class:`PersistentPool` keeps the executor (and the workers' warm
  caches) alive across sweeps, and :func:`calibrate_min_pool_work`
  turns a measured per-eval cost into the pool's break-even threshold.
* :mod:`repro.perf.batch` — :class:`BatchEvaluator`: corpus-level
  vectorized evaluation — compile/schedule each unique loop once, answer
  every sweep cell in one flat closed-form pass
  (``EvalOptions(batch=True)`` / ``repro sweep --batch``).
* :mod:`repro.perf.profile` — :class:`StageProfiler` and the
  :func:`profiled` context manager: per-stage wall-clock instrumentation
  behind ``repro --profile``.

The remaining accelerator, the analytic fast path in
:func:`repro.sim.multiproc.simulate_doacross`, lives with the simulator it
short-circuits; see ``docs/performance.md`` for the whole layer.
"""

from repro.perf.batch import (
    BatchEvaluator,
    BatchIncompatible,
    BatchStats,
    batch_incompatibility,
    shared_batch_evaluator,
)
from repro.perf.cache import CacheStats, CompileCache, compiled_fingerprint, loop_key
from repro.perf.parallel import (
    ParallelEvaluator,
    PersistentPool,
    calibrate_min_pool_work,
    chunked,
)
from repro.perf.profile import (
    StageProfiler,
    active_profiler,
    disable_profiling,
    enable_profiling,
    profiled,
)

__all__ = [
    "BatchEvaluator",
    "BatchIncompatible",
    "BatchStats",
    "CacheStats",
    "CompileCache",
    "ParallelEvaluator",
    "PersistentPool",
    "StageProfiler",
    "active_profiler",
    "batch_incompatibility",
    "calibrate_min_pool_work",
    "chunked",
    "compiled_fingerprint",
    "disable_profiling",
    "enable_profiling",
    "loop_key",
    "profiled",
    "shared_batch_evaluator",
]
