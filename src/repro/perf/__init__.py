"""Sweep-scale performance layer.

Three independent accelerators for the experiment harness:

* :mod:`repro.perf.cache` — :class:`CompileCache`: a content-addressed
  compile cache plus a per-machine schedule memo, so a sweep compiles each
  loop once (not once per machine case) and a re-run schedules nothing.
* :mod:`repro.perf.parallel` — :class:`ParallelEvaluator`: chunked
  ``ProcessPoolExecutor`` fan-out of corpus/program evaluations with
  deterministic, insertion-order result merging and a serial fallback.
* :mod:`repro.perf.profile` — :class:`StageProfiler` and the
  :func:`profiled` context manager: per-stage wall-clock instrumentation
  behind ``repro --profile``.

The third accelerator, the analytic fast path in
:func:`repro.sim.multiproc.simulate_doacross`, lives with the simulator it
short-circuits; see ``docs/performance.md`` for the whole layer.
"""

from repro.perf.cache import CacheStats, CompileCache, compiled_fingerprint, loop_key
from repro.perf.parallel import ParallelEvaluator, chunked
from repro.perf.profile import (
    StageProfiler,
    active_profiler,
    disable_profiling,
    enable_profiling,
    profiled,
)

__all__ = [
    "CacheStats",
    "CompileCache",
    "ParallelEvaluator",
    "StageProfiler",
    "active_profiler",
    "chunked",
    "compiled_fingerprint",
    "disable_profiling",
    "enable_profiling",
    "loop_key",
    "profiled",
]
