"""Superscalar-based multiprocessor simulation.

* :mod:`repro.sim.analytic` — the paper's closed-form LFD/LBD parallel
  execution time model (Section 2) in exact form.
* :mod:`repro.sim.multiproc` — timing simulation of the DOACROSS execution:
  one iteration per processor, stalls at waits until the producing
  iteration's send, parallel time = last finish.  When at most one pair
  can stall the Section 2 closed form is provably exact and
  :func:`simulate_doacross` returns it in ``O(pairs)`` instead of walking
  iterations (``exact_simulation=True`` forces the full walk).
* :mod:`repro.sim.memory` / :mod:`repro.sim.executor` — semantic execution:
  the scheduled code is run against real array state, cycle by cycle across
  all processors, to prove no stale data is read.
* :mod:`repro.sim.interp` — a serial AST interpreter providing the
  reference memory image.
* :mod:`repro.sim.metrics` — improvement percentages and aggregates for the
  result tables.
"""

from repro.sim.analytic import lbd_parallel_time, paper_lbd_formula, predicted_parallel_time
from repro.sim.executor import default_max_cycles, execute_parallel
from repro.sim.interp import run_serial
from repro.sim.memory import MemoryImage
from repro.sim.metrics import improvement_percent, speedup
from repro.sim.multiproc import (
    SimulationResult,
    analytic_fast_path,
    iteration_mapping,
    simulate_doacross,
)

__all__ = [
    "MemoryImage",
    "SimulationResult",
    "analytic_fast_path",
    "default_max_cycles",
    "execute_parallel",
    "improvement_percent",
    "iteration_mapping",
    "lbd_parallel_time",
    "paper_lbd_formula",
    "predicted_parallel_time",
    "run_serial",
    "simulate_doacross",
    "speedup",
]
