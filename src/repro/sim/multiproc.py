"""Timing simulation of the DOACROSS execution.

The model (matching the paper's):

* ``n`` iterations run on ``p`` processors (the paper's setting is
  ``p = n``, one iteration per processor — the default).  With ``p < n``,
  iterations are mapped cyclically (iteration ``k`` on processor
  ``(k-1) mod p``) and a processor starts its next iteration the cycle
  after finishing the previous one, the standard DOACROSS folding.
* A ``Wait_Signal`` with distance ``d`` in iteration ``k`` blocks until
  ``signal_latency`` cycles after iteration ``k-d`` issues the paired
  ``Send_Signal`` (iterations before the first need nothing and never
  stall).  The paper's signals are visible the next cycle
  (``signal_latency = 1``); larger values model slower interconnects.
* A stall at a wait delays that wait's bundle and everything after it by
  the stall amount; earlier bundles are unaffected (in-order issue).
* The loop's parallel execution time is the last iteration's completion.

Because signals only flow from lower to higher iterations and same-
processor predecessors are lower iterations too, iterations can be
resolved in increasing order in a single pass — the simulation is exact
and costs ``O(n · waits)``.

When at most one synchronization pair can stall, the Section 2 closed
form (:mod:`repro.sim.analytic`) gives the same answer without walking
iterations: :func:`simulate_doacross` detects that case in ``O(pairs)``
and returns the analytic result directly (the per-iteration stall is
``floor((k-1)/d) · per_hop``, so even the finish times are a closed
form).  Pass ``exact_simulation=True`` to force the full event walk —
the fast path is only taken when it is provably exact, so the results
are identical either way; the flag exists as an escape hatch and for
differential testing.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.codegen.isa import Opcode
from repro.obs.explain import StallLink, active_journal
from repro.obs.metrics import count as metric_count
from repro.obs.trace import span
from repro.robust.deadlock import BlockedWait, DeadlockError
from repro.robust.faults import FaultPlan
from repro.sched.schedule import Schedule
from repro.sim.analytic import (
    ClosedFormPlan,
    ScheduleSignature,
    chain_finish_times,
    chain_total_stall,
    closed_form_plan,
)


@dataclass
class _IterationTiming:
    """Timing profile of one iteration: an absolute start offset plus the
    waits in cycle order with the cumulative stall in effect after each."""

    start: int = 0
    wait_cycles: list[int] = field(default_factory=list)
    cumulative_stall: list[int] = field(default_factory=list)

    def stall_at(self, cycle: int) -> int:
        """Cumulative stall affecting an instruction issued at local
        ``cycle`` (stalls from waits at cycles <= cycle apply)."""
        pos = bisect.bisect_right(self.wait_cycles, cycle)
        return self.cumulative_stall[pos - 1] if pos else 0

    def abs_cycle(self, cycle: int) -> int:
        """Absolute issue time of the bundle at local ``cycle``."""
        return self.start + cycle + self.stall_at(cycle)

    def final_stall(self) -> int:
        return self.cumulative_stall[-1] if self.cumulative_stall else 0


@dataclass
class SimulationResult:
    """Outcome of a DOACROSS timing simulation."""

    schedule: Schedule
    n: int
    parallel_time: int
    finish_times: list[int]  # absolute completion per iteration, in order
    total_stall: int
    processors: int = 0  # 0 = one per iteration (the paper's setting)
    signal_latency: int = 1
    dispatch: str = "event_walk"  # "fast_path" when the closed form answered
    stall_by_pair: dict[int, int] = field(default_factory=dict)
    """Total wait-stall cycles attributed to each sync pair (pair_id →
    cycles, summed over iterations); zero entries are included so the
    keys always cover every pair of the loop."""
    fallback_reason: str | None = None
    """Why the analytic fast path was *not* even attempted (``None`` when
    it was eligible): currently only fault injection — a non-empty
    :class:`~repro.robust.faults.FaultPlan` would make the closed form
    wrong, so the exact event walk answers instead."""

    @property
    def iteration_length(self) -> int:
        return self.schedule.length

    @property
    def serial_time(self) -> int:
        return self.n * self.schedule.length

    @property
    def speedup(self) -> float:
        return self.serial_time / self.parallel_time if self.parallel_time else 0.0


def iteration_mapping(n: int, processors: int, mapping: str) -> list[list[int]]:
    """Iterations (1-based) per processor rank under cyclic or block mapping.

    ``cyclic``: iteration k on processor (k-1) mod p — consecutive
    iterations on different processors, the standard DOACROSS choice (the
    cross-iteration pipeline keeps flowing).
    ``block``: contiguous chunks of ceil(n/p) — better locality, but a
    carried dependence of distance < chunk runs *within* a processor and
    serializes the block pipeline at the chunk boundaries.
    """
    if mapping == "cyclic":
        return [list(range(rank + 1, n + 1, processors)) for rank in range(processors)]
    if mapping == "block":
        chunk = -(-n // processors)
        return [
            list(range(rank * chunk + 1, min((rank + 1) * chunk, n) + 1))
            for rank in range(processors)
        ]
    raise ValueError(f"unknown mapping {mapping!r}; use 'cyclic' or 'block'")


def fast_path_result(
    schedule: Schedule,
    plan: ClosedFormPlan,
    n: int,
    signal_latency: int = 1,
) -> SimulationResult:
    """Materialize a closed-form plan as a full :class:`SimulationResult`
    (finish times, stall attribution, journal chain) — byte-identical to
    what the event walk would produce for an eligible schedule."""
    length = schedule.length
    stall_by_pair = {pair.pair_id: 0 for pair in schedule.lowered.synced.pairs}
    culprit = plan.stalling
    if culprit is None:
        return SimulationResult(
            schedule=schedule,
            n=n,
            parallel_time=length if n else 0,
            finish_times=[length] * n,
            total_stall=0,
            processors=n,
            signal_latency=signal_latency,
            dispatch="fast_path",
            stall_by_pair=stall_by_pair,
        )
    per_hop = culprit.per_hop(signal_latency)
    distance = culprit.distance
    finish_times = chain_finish_times(n, distance, per_hop, length)
    total_stall = chain_total_stall(n, distance, per_hop)
    stall_by_pair[culprit.pair_id] = total_stall
    journal = active_journal()
    if journal is not None:
        # Materialize the same stall chain the event walk would emit: the
        # producer's send is delayed by its own cumulative stall, so its
        # absolute issue is a closed form too (kept out of the default path
        # to preserve the O(pairs) cost when no journal is installed).
        for k in range(distance + 1, n + 1):
            producer = k - distance
            journal.record_stall(
                StallLink(
                    pair_id=culprit.pair_id,
                    iteration=k,
                    producer_iteration=producer,
                    wait_cycle=culprit.wait,
                    send_abs=culprit.send + ((producer - 1) // distance) * per_hop,
                    stall=((k - 1) // distance) * per_hop,
                )
            )
    return SimulationResult(
        schedule=schedule,
        n=n,
        parallel_time=finish_times[-1] if n else 0,
        finish_times=finish_times,
        total_stall=total_stall,
        processors=n,
        signal_latency=signal_latency,
        dispatch="fast_path",
        stall_by_pair=stall_by_pair,
    )


def analytic_fast_path(
    schedule: Schedule,
    n: int,
    signal_latency: int = 1,
) -> SimulationResult | None:
    """The closed-form result when it is provably exact, else ``None``.

    Eligibility is decided by :func:`repro.sim.analytic.closed_form_plan`
    over the schedule's :class:`~repro.sim.analytic.ScheduleSignature`
    (see its docstring for the precise preconditions) — the single source
    of truth shared with the batch engine
    (:class:`repro.perf.batch.BatchEvaluator`), so the per-loop and batch
    paths cannot diverge.  Detection is ``O(pairs)``; materializing the
    per-iteration finish times is a closed-form fill with no per-wait
    inner loop.
    """
    plan = closed_form_plan(ScheduleSignature.of(schedule), signal_latency)
    if plan is None:
        return None
    return fast_path_result(schedule, plan, n, signal_latency)


def simulate_doacross(
    schedule: Schedule,
    n: int | None = None,
    processors: int | None = None,
    signal_latency: int = 1,
    mapping: str = "cyclic",
    exact_simulation: bool = False,
    faults: FaultPlan | None = None,
) -> SimulationResult:
    """Simulate ``n`` iterations (default: the loop's constant trip count).

    ``processors`` defaults to ``n`` (the paper's one-iteration-per-
    processor setting); smaller values fold iterations per ``mapping``
    (see :func:`iteration_mapping`).  ``signal_latency`` is the cycles
    between a send's issue and the signal becoming visible to a waiting
    processor (paper: 1).  ``exact_simulation=True`` forces the full
    ``O(n · waits)`` event walk even when the ``O(pairs)`` analytic fast
    path (:func:`analytic_fast_path`) would be exact.

    ``faults`` injects deliberate mis-synchronization (see
    :mod:`repro.robust.faults`).  A non-empty plan disqualifies the fast
    path — the closed form cannot model dropped/late deliveries — so the
    exact walk runs and the result records ``fallback_reason``.  A
    dropped delivery raises :class:`~repro.robust.deadlock.
    DeadlockError` naming the orphaned ``(signal, producer-iteration)``
    pair; delays and stalls complete, visible in ``stall_by_pair`` /
    ``finish_times``.
    """
    lowered = schedule.lowered
    if n is None:
        from repro.ir.ast_nodes import Const

        loop = lowered.synced.loop
        if not (isinstance(loop.lower, Const) and isinstance(loop.upper, Const)):
            raise ValueError("symbolic loop bounds require an explicit n")
        n = int(loop.upper.value) - int(loop.lower.value) + 1
    if n < 0:
        raise ValueError("n must be non-negative")
    if processors is None or processors >= n:
        processors = n
    if n > 0 and processors < 1:
        raise ValueError("need at least one processor")
    if signal_latency < 0:
        raise ValueError("signal latency must be non-negative")

    fallback_reason: str | None = None
    if faults:
        # The closed form has no notion of dropped or late deliveries;
        # returning it here would be *wrong*, not just stale — so the
        # exact walk answers and the result says why.
        fallback_reason = "fault injection active: analytic fast path rejected"
        metric_count("robust.faults.fastpath_fallback")
    elif not exact_simulation and processors >= n:
        fast = analytic_fast_path(schedule, n, signal_latency)
        if fast is not None:
            metric_count("sim.dispatch.fast_path")
            return fast

    metric_count("sim.dispatch.event_walk")
    journal = active_journal()
    with span("sim.event_walk"):
        # Waits of the schedule in issue-cycle order, with (distance, send
        # cycle, pair id); ties keep pair-id order, matching the old list
        # order, so the walk is unchanged.
        waits: list[tuple[int, int, int, int]] = []
        for pair in lowered.synced.pairs:
            wait_cycle = schedule.wait_cycle(pair.pair_id)
            send_cycle = schedule.send_cycle(pair.pair_id)
            waits.append((wait_cycle, pair.distance, send_cycle, pair.pair_id))
        waits.sort()

        length = schedule.length
        timings: list[_IterationTiming] = []
        finish_times: list[int] = []
        total_stall = 0
        stall_by_pair = {pair.pair_id: 0 for pair in lowered.synced.pairs}

        # Predecessor of each iteration on its own processor, if any.
        prev_on_proc: dict[int, int] = {}
        rank_of_iter: dict[int, int] = {}
        for rank, assigned in enumerate(iteration_mapping(n, processors, mapping)):
            for a, b in zip(assigned, assigned[1:]):
                prev_on_proc[b] = a
            if faults:
                for iteration in assigned:
                    rank_of_iter[iteration] = rank

        for k in range(1, n + 1):  # iteration numbers relative to the lower bound
            # The processor resumes after its previous iteration (if any).
            prev = prev_on_proc.get(k)
            start = finish_times[prev - 1] if prev is not None else 0
            timing = _IterationTiming(start=start)
            stall = 0
            if faults:
                # Fault-aware variant of the loop below: injected stall
                # events interleave with the waits in local-cycle order
                # (an injected stall at a wait's cycle applies first —
                # the processor is already late when it checks the
                # signal), drops raise, delays push visibility.
                events: list[tuple[int, int, tuple]] = [
                    (w[0], 1, w) for w in waits
                ]
                # Injected stalls land on *issue* cycles only (the semantic
                # executor has nothing to freeze after the last bundle).
                issue_cycles = schedule.issue_cycles
                for at_cycle, extra in faults.injected_stalls(k, issue_cycles):
                    if at_cycle <= issue_cycles:
                        events.append((at_cycle, 0, (extra,)))
                        metric_count("robust.faults.injected_stalls")
                events.sort()
                for cycle, kind, payload in events:
                    if kind == 0:
                        stall += payload[0]
                    else:
                        wait_cycle, distance, send_cycle, pair_id = payload
                        producer = k - distance
                        if producer >= 1:
                            if faults.drops_signal(pair_id, producer):
                                metric_count("robust.deadlock.detected")
                                pair = lowered.synced.pair(pair_id)
                                raise DeadlockError(
                                    (
                                        BlockedWait(
                                            processor=rank_of_iter.get(k, k - 1),
                                            iteration=k,
                                            pair_id=pair_id,
                                            source_label=pair.source_label,
                                            producer_iteration=producer,
                                            wait_cycle=wait_cycle,
                                            orphaned=True,
                                            reason=(
                                                "Send_Signal delivery dropped "
                                                "by fault plan"
                                            ),
                                        ),
                                    ),
                                    plan_label=faults.label,
                                )
                            send_abs = timings[producer - 1].abs_cycle(send_cycle)
                            extra_latency = faults.signal_delay(pair_id, producer)
                            if extra_latency:
                                metric_count("robust.faults.delayed_signals")
                            needed = send_abs + signal_latency + extra_latency
                            current = start + wait_cycle + stall
                            if needed > current:
                                stall_by_pair[pair_id] += needed - current
                                if journal is not None:
                                    journal.record_stall(
                                        StallLink(
                                            pair_id=pair_id,
                                            iteration=k,
                                            producer_iteration=producer,
                                            wait_cycle=wait_cycle,
                                            send_abs=send_abs,
                                            stall=needed - current,
                                        )
                                    )
                                stall = needed - start - wait_cycle
                    timing.wait_cycles.append(cycle)
                    timing.cumulative_stall.append(stall)
                timings.append(timing)
                finish_times.append(start + length + stall)
                total_stall += stall
                continue
            for wait_cycle, distance, send_cycle, pair_id in waits:
                producer = k - distance
                if producer >= 1:
                    send_abs = timings[producer - 1].abs_cycle(send_cycle)
                    needed = send_abs + signal_latency
                    current = start + wait_cycle + stall
                    if needed > current:
                        stall_by_pair[pair_id] += needed - current
                        if journal is not None:
                            journal.record_stall(
                                StallLink(
                                    pair_id=pair_id,
                                    iteration=k,
                                    producer_iteration=producer,
                                    wait_cycle=wait_cycle,
                                    send_abs=send_abs,
                                    stall=needed - current,
                                )
                            )
                        stall = needed - start - wait_cycle
                timing.wait_cycles.append(wait_cycle)
                timing.cumulative_stall.append(stall)
            timings.append(timing)
            finish_times.append(start + length + stall)
            total_stall += stall

        parallel_time = max(finish_times, default=0)
        return SimulationResult(
            schedule=schedule,
            n=n,
            parallel_time=parallel_time,
            finish_times=finish_times,
            total_stall=total_stall,
            processors=processors,
            signal_latency=signal_latency,
            dispatch="event_walk",
            stall_by_pair=stall_by_pair,
            fallback_reason=fallback_reason,
        )
