"""Serial AST interpreter: the semantic reference.

Runs a loop sequentially against a :class:`~repro.sim.memory.MemoryImage`,
mirroring the code generator's typing rules (integer arithmetic — with
floor division — in subscript context and between integer-typed operands,
float arithmetic otherwise) so that a correct schedule's parallel execution
produces an identical memory image.
"""

from __future__ import annotations

from repro.ir.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Const,
    Expr,
    Loop,
    SendSignal,
    UnaryOp,
    VarRef,
    WaitSignal,
)
from repro.ir.symbols import SymbolKind, SymbolTable, VarType
from repro.sim.memory import MemoryImage

Number = float | int


def _binop(op: str, a: Number, b: Number) -> Number:
    both_int = isinstance(a, int) and isinstance(b, int)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        return a // b if both_int else a / b
    raise ValueError(op)


class _Interp:
    def __init__(self, loop: Loop, memory: MemoryImage, symbols: SymbolTable) -> None:
        self.loop = loop
        self.memory = memory
        self.symbols = symbols
        self.written_scalars = {
            s.target.name
            for s in loop.body
            if isinstance(s, Assign) and isinstance(s.target, VarRef)
        }
        self.index_value = 0

    def scalar(self, name: str) -> Number:
        if name == self.loop.index:
            return self.index_value
        if name in self.written_scalars:
            return self.memory.read_scalar(name)
        value = self.memory.read_scalar(name)
        if name in self.symbols and self.symbols[name].var_type is VarType.INT:
            return int(value)
        return value

    def eval(self, expr: Expr, int_context: bool = False) -> Number:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, VarRef):
            value = self.scalar(expr.name)
            return int(value) if int_context else value
        if isinstance(expr, ArrayRef):
            index = self.eval(expr.subscript, int_context=True)
            if not isinstance(index, int):
                if float(index).is_integer():
                    index = int(index)
                else:
                    raise ValueError(f"non-integer subscript {index} in {expr}")
            value = self.memory.read(expr.name, index)
            # Mirror the code generator's typing: loads of INTEGER arrays
            # produce integer values (so `/` floors, as IDIV does).
            if (
                expr.name in self.symbols
                and self.symbols[expr.name].var_type is VarType.INT
            ):
                return int(value)
            return value
        if isinstance(expr, UnaryOp):
            return -self.eval(expr.operand, int_context)
        if isinstance(expr, BinOp):
            a = self.eval(expr.left, int_context)
            b = self.eval(expr.right, int_context)
            return _binop(expr.op, a, b)
        raise TypeError(f"cannot evaluate {expr!r}")

    def guard_holds(self, stmt: Assign) -> bool:
        if stmt.guard is None:
            return True
        a = self.eval(stmt.guard.left)
        b = self.eval(stmt.guard.right)
        op = stmt.guard.op
        return {
            "<": a < b,
            ">": a > b,
            "<=": a <= b,
            ">=": a >= b,
            "==": a == b,
            "!=": a != b,
        }[op]

    def run(self, lower: int, upper: int) -> None:
        for i in range(lower, upper + 1, self.loop.step):
            self.index_value = i
            for stmt in self.loop.body:
                if isinstance(stmt, (WaitSignal, SendSignal)):
                    continue  # no-ops in serial order
                assert isinstance(stmt, Assign)
                if not self.guard_holds(stmt):
                    continue
                value = self.eval(stmt.expr)
                if isinstance(stmt.target, ArrayRef):
                    index = self.eval(stmt.target.subscript, int_context=True)
                    if not isinstance(index, int):
                        if not float(index).is_integer():
                            raise ValueError(
                                f"non-integer subscript {index} in {stmt.target}"
                            )
                        index = int(index)
                    self.memory.write(stmt.target.name, index, float(value))
                else:
                    self.memory.write_scalar(stmt.target.name, float(value))


def run_serial(
    loop: Loop,
    memory: MemoryImage,
    symbols: SymbolTable | None = None,
    trip_override: tuple[int, int] | None = None,
) -> MemoryImage:
    """Execute ``loop`` serially, mutating and returning ``memory``.

    Bounds must be integer constants unless ``trip_override`` supplies
    ``(lower, upper)`` for a symbolic-bound loop.
    """
    if symbols is None:
        symbols = SymbolTable.from_loop(loop)
    if trip_override is not None:
        lower, upper = trip_override
    else:
        if not (isinstance(loop.lower, Const) and isinstance(loop.upper, Const)):
            raise ValueError("symbolic loop bounds require trip_override")
        lower, upper = int(loop.lower.value), int(loop.upper.value)
    _Interp(loop, memory, symbols).run(lower, upper)
    return memory
