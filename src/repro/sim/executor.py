"""Semantic parallel execution of a scheduled DOACROSS loop.

This is the ground-truth machine: every processor executes its iteration's
scheduled bundles against *real shared memory*, cycle by cycle, blocking at
waits until the signal is visible.  Its two outputs cross-check the rest of
the system:

* the final :class:`~repro.sim.memory.MemoryImage` must equal the serial
  interpreter's (a stale-data read — the bug the synchronization conditions
  exist to prevent — makes them differ);
* the measured completion times must equal the analytic timing simulation
  (:mod:`repro.sim.multiproc`) exactly.

Within one global cycle all loads read memory as of the cycle start and all
stores commit at the end, so a (schedule-bug) same-cycle read/write race is
resolved deterministically — and flagged by the memory comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.codegen.isa import Instruction, Opcode, Operand, WORD_SIZE
from repro.ir.ast_nodes import Const
from repro.ir.symbols import VarType
from repro.obs.metrics import count as metric_count
from repro.robust.deadlock import BlockedWait, DeadlockError
from repro.robust.faults import FaultPlan
from repro.sched.schedule import Schedule
from repro.sim.memory import MemoryImage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir.dataflow import DataFlowGraph

Number = float | int


def default_max_cycles(
    schedule: Schedule,
    n: int,
    signal_latency: int = 1,
    faults: FaultPlan | None = None,
    graph: "DataFlowGraph | None" = None,
) -> int:
    """The derived runaway bound used when ``max_cycles`` is not given
    (configurable through ``EvalOptions(max_cycles=...)``).

    With the wait-for-graph detector a true deadlock is reported the
    moment it happens, so this only has to catch *runaway* executions
    (an executor bug, not a hang), and can afford to be generous while
    staying finite.  The bound:

    ``n * (l + 1 + signal_latency + P) + B + 1024``

    where ``l`` is the schedule length, ``P`` sums each pair's worst
    per-hop penalty ``max(0, span - 1 + signal_latency)`` (a wait can
    stall at most that much per hop of the cross-iteration chain, and
    the chain has fewer than ``n`` hops — see the LBD theorem's
    ``(n/d)(i-j) + l``), and ``B`` is the fault plan's
    :meth:`~repro.robust.faults.FaultPlan.worst_case_budget`.  When the
    dataflow ``graph`` is available, each pair's span is floored by
    :func:`repro.obs.explain.pair_span_bound` — a schedule that somehow
    reports a span below its dependence lower bound is still budgeted
    for the legal minimum.
    """
    per_hop_total = 0
    for pair in schedule.lowered.synced.pairs:
        span = schedule.span(pair.pair_id)
        if graph is not None:
            from repro.obs.explain import pair_span_bound

            bound = pair_span_bound(schedule, graph, pair.pair_id)
            if bound is not None:
                span = max(span, bound)
        per_hop_total += max(0, span - 1 + signal_latency)
    budget = faults.worst_case_budget(n) if faults else 0
    return n * (schedule.length + 1 + signal_latency + per_hop_total) + budget + 1024


@dataclass
class ExecutionResult:
    memory: MemoryImage
    parallel_time: int
    finish_times: list[int]


class _Processor:
    """In-order execution state of one processor, running its assigned
    iterations back to back (a single iteration in the paper's setting)."""

    def __init__(
        self,
        schedule: Schedule,
        iterations: list[int],
        rank: int = 0,
        lower: int = 1,
        faults: FaultPlan | None = None,
    ) -> None:
        self.schedule = schedule
        self.lowered = schedule.lowered
        self.bundles = schedule.bundles()
        self.iterations = iterations
        self.rank = rank
        self.lower = lower  # loop lower bound; fault iterations are relative to it
        self.faults = faults
        self.slot = 0  # index into self.iterations
        self.local_cycle = 1  # next local cycle to issue
        self.next_issue = 1  # global time the next bundle may issue
        self.iter_finish = 0  # completion time of the current iteration so far
        self.finishes: dict[int, int] = {}  # iteration -> completion time
        self.regs: dict[str, Number] = {}
        self.stack: dict[str, float] = {}
        self.fault_base = 0  # global cycle the current iteration nominally starts
        self.fault_stalls: dict[int, int] = {}  # local cycle -> injected stall
        self.blocked_t = 0  # last global cycle this processor blocked at a wait
        self.blocked_on: tuple[int, str, int, int, bool] | None = None
        if iterations:
            self._load_iteration()

    @property
    def iteration(self) -> int:
        return self.iterations[self.slot]

    def _load_iteration(self) -> None:
        self.local_cycle = 1
        self.iter_finish = 0
        self.regs = {self.lowered.synced.loop.index: self.iteration}
        self.stack: dict[str, float] = {}  # processor-private (spill) cells
        if self.faults:
            self.fault_base = self.next_issue - 1
            stalls: dict[int, int] = {}
            rel = self.iteration - self.lower + 1
            for cycle, extra in self.faults.injected_stalls(rel, len(self.bundles)):
                if cycle <= len(self.bundles):
                    stalls[cycle] = stalls.get(cycle, 0) + extra
            self.fault_stalls = stalls

    def done(self) -> bool:
        return self.slot >= len(self.iterations)

    def due(self, t: int) -> bool:
        return not self.done() and self.next_issue == t

    def bundle(self) -> list[Instruction]:
        iids = self.bundles[self.local_cycle - 1]
        return [self.lowered.instruction(iid) for iid in iids]

    def advance(self, t: int) -> None:
        """Move past the bundle just issued at global time ``t``."""
        if self.faults and self.local_cycle == len(self.bundles):
            # Walk-consistent completion under faults: the timing model's
            # finish is start + length + (final issue delay), and the last
            # bundle's delay is exactly t - (start + its local cycle).
            self.iter_finish = max(
                self.iter_finish,
                self.fault_base
                + self.schedule.length
                + (t - (self.fault_base + self.local_cycle)),
            )
        self.local_cycle += 1
        if self.local_cycle > len(self.bundles):
            self.finishes[self.iteration] = self.iter_finish
            self.slot += 1
            if not self.done():
                # the next iteration starts the cycle after completion
                self.next_issue = max(self.iter_finish + 1, t + 1)
                self._load_iteration()
        else:
            self.next_issue = t + 1

    def operand(self, op: Operand, memory: MemoryImage, symbols) -> Number:
        if not isinstance(op, str):
            return op
        if op in self.regs:
            return self.regs[op]
        # A loop-invariant scalar register, pre-loaded before the loop.
        value = memory.read_scalar(op)
        if op in symbols and symbols[op].var_type is VarType.INT:
            value = int(value)
        self.regs[op] = value
        return value


def _compare(op: str, a: Number, b: Number) -> int:
    if op == "<":
        return int(a < b)
    if op == ">":
        return int(a > b)
    if op == "<=":
        return int(a <= b)
    if op == ">=":
        return int(a >= b)
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    raise ValueError(op)


def _alu(opcode: Opcode, a: Number, b: Number) -> Number:
    if opcode in (Opcode.IADD, Opcode.FADD):
        return a + b
    if opcode in (Opcode.ISUB, Opcode.FSUB):
        return a - b
    if opcode in (Opcode.SHIFT, Opcode.IMUL, Opcode.FMUL):
        return a * b
    if opcode is Opcode.IDIV:
        return a // b
    if opcode is Opcode.FDIV:
        return a / b
    raise ValueError(opcode)


def _check_deadlock(
    procs: list[_Processor],
    signals: dict[tuple[str, int], int],
    signal_latency: int,
    faults: FaultPlan | None,
    t: int,
) -> None:
    """Raise :class:`DeadlockError` if no processor can ever issue again.

    Fires only when *every* non-finished processor blocked in a
    ``Wait_Signal`` this very cycle.  A blocked wait whose signal has been
    sent (and not dropped) is merely riding out latency — it will become
    visible and unblock its processor, so that is not a deadlock.
    Everything else means the awaited sends can only come from processors
    that are themselves blocked: a hang, reported at the cycle it begins
    instead of after ``max_cycles`` of useless walking.
    """
    active = [p for p in procs if not p.done()]
    if not active:
        return
    for p in active:
        if p.blocked_t != t or p.blocked_on is None:
            return  # someone issued (or is mid-stall): progress is possible
    finished: set[int] = set()
    for p in procs:
        finished.update(p.finishes)
    blocked: list[BlockedWait] = []
    for p in active:
        pair_id, label, producer, rel, dropped = p.blocked_on
        sent = signals.get((label, producer))
        if not dropped and sent is not None:
            return  # in flight: visible at sent + latency (+ delay), not a hang
        orphaned = dropped or producer in finished
        if dropped:
            reason = "Send_Signal delivery dropped by fault plan"
        elif orphaned:
            reason = "producer iteration finished without a visible Send_Signal"
        else:
            reason = ""
        blocked.append(
            BlockedWait(
                processor=p.rank,
                iteration=p.iteration - p.lower + 1,
                pair_id=pair_id,
                source_label=label,
                producer_iteration=rel,
                wait_cycle=p.local_cycle,
                orphaned=orphaned,
                reason=reason,
            )
        )
    metric_count("robust.deadlock.detected")
    raise DeadlockError(
        tuple(blocked),
        at_cycle=t,
        plan_label=faults.label if faults else "",
    )


def execute_parallel(
    schedule: Schedule,
    memory: MemoryImage,
    n: int | None = None,
    max_cycles: int | None = None,
    processors: int | None = None,
    signal_latency: int = 1,
    mapping: str = "cyclic",
    faults: FaultPlan | None = None,
    graph: "DataFlowGraph | None" = None,
) -> ExecutionResult:
    """Run ``n`` iterations on ``processors`` processors (default one per
    iteration), mutating ``memory``.

    Iterations are numbered from the loop's lower bound (which must be a
    constant, as DOACROSS iteration numbering is absolute) and mapped to
    processors per ``mapping`` ("cyclic" or "block"), matching
    :func:`repro.sim.multiproc.simulate_doacross`.

    A hang is detected the moment every non-finished processor is blocked
    in a ``Wait_Signal`` with no signal in flight, and raised as a
    structured :class:`~repro.robust.deadlock.DeadlockError`;
    ``max_cycles`` (default :func:`default_max_cycles`) remains only as a
    runaway backstop.  ``faults`` injects deliberate mis-synchronization
    (see :mod:`repro.robust.faults`; fault iteration numbers are 1-based
    relative to the loop's lower bound, matching the timing walk).
    ``graph`` only sharpens the default ``max_cycles`` bound.
    """
    lowered = schedule.lowered
    loop = lowered.synced.loop
    symbols = lowered.symbols
    if not isinstance(loop.lower, Const):
        raise ValueError("parallel execution requires a constant lower bound")
    lower = int(loop.lower.value)
    if n is None:
        if not isinstance(loop.upper, Const):
            raise ValueError("symbolic loop bounds require an explicit n")
        n = int(loop.upper.value) - lower + 1
    if processors is None or processors >= n:
        processors = max(n, 1)
    if signal_latency < 0:
        raise ValueError("signal latency must be non-negative")

    from repro.sim.multiproc import iteration_mapping

    machine = schedule.machine
    procs = [
        _Processor(
            schedule,
            [lower + k - 1 for k in assigned],
            rank=rank,
            lower=lower,
            faults=faults,
        )
        for rank, assigned in enumerate(iteration_mapping(n, processors, mapping))
    ]
    signals: dict[tuple[str, int], int] = {}  # (source label, iteration) -> send cycle
    if max_cycles is None:
        max_cycles = default_max_cycles(
            schedule, n, signal_latency, faults=faults, graph=graph
        )

    t = 0
    while any(not p.done() for p in procs):
        t += 1
        if t > max_cycles:
            raise RuntimeError(f"parallel execution exceeded {max_cycles} cycles (deadlock?)")
        store_buffer: list[tuple[str, int | None, float]] = []
        for p in procs:
            if not p.due(t):
                continue
            if faults:
                extra = p.fault_stalls.pop(p.local_cycle, 0)
                if extra:
                    # Injected freeze: applied *before* the bundle (and any
                    # wait in it) is considered, matching the timing walk's
                    # stall-before-wait event order.
                    p.next_issue = t + extra
                    continue
            bundle = p.bundle()
            # A bundle containing an unsatisfied wait stalls whole.
            blocked: tuple[int, str, int, int, bool] | None = None
            for instr in bundle:
                if instr.opcode is Opcode.WAIT:
                    assert instr.sync is not None and instr.sync.distance is not None
                    producer = p.iteration - instr.sync.distance
                    if producer >= lower:
                        pair_id = instr.sync.pair_ids[0]
                        rel = producer - lower + 1
                        dropped = bool(faults) and faults.drops_signal(pair_id, rel)
                        extra_latency = (
                            faults.signal_delay(pair_id, rel) if faults else 0
                        )
                        sent = signals.get((instr.sync.source_label, producer))
                        if dropped or sent is None or (
                            sent + signal_latency + extra_latency > t
                        ):
                            blocked = (
                                pair_id,
                                instr.sync.source_label,
                                producer,
                                rel,
                                dropped,
                            )
                            break
            if blocked is not None:
                p.blocked_t = t
                p.blocked_on = blocked
                p.next_issue = t + 1
                continue
            for instr in bundle:
                latency = machine.latency(instr.fu)
                p.iter_finish = max(p.iter_finish, t + latency - 1)
                if instr.opcode is Opcode.WAIT:
                    continue
                if instr.opcode is Opcode.SEND:
                    assert instr.sync is not None
                    signals[(instr.sync.source_label, p.iteration)] = t
                    continue
                if instr.opcode is Opcode.LOAD:
                    assert instr.mem is not None and instr.dest is not None
                    if instr.mem.private:
                        value = p.stack[instr.mem.variable]
                    elif instr.mem.is_scalar:
                        value = memory.read(instr.mem.variable, None)
                    else:
                        addr = p.operand(instr.mem.address, memory, symbols)
                        value = memory.read(instr.mem.variable, int(addr) // WORD_SIZE)
                    p.regs[instr.dest] = value
                    continue
                if instr.opcode in (Opcode.ICMP, Opcode.FCMP):
                    assert instr.dest is not None and instr.cmp is not None
                    a = p.operand(instr.srcs[0], memory, symbols)
                    b = p.operand(instr.srcs[1], memory, symbols)
                    p.regs[instr.dest] = _compare(instr.cmp, a, b)
                    continue
                if instr.opcode in (Opcode.STORE, Opcode.STORE_OP):
                    assert instr.mem is not None
                    if instr.pred is not None and not p.operand(
                        instr.pred, memory, symbols
                    ):
                        continue  # predicated off: no memory effect
                    if instr.opcode is Opcode.STORE:
                        value = p.operand(instr.srcs[0], memory, symbols)
                    else:
                        assert instr.fused is not None
                        a = p.operand(instr.srcs[0], memory, symbols)
                        b = p.operand(instr.srcs[1], memory, symbols)
                        value = _alu(instr.fused, a, b)
                    if instr.mem.private:
                        # processor-local stack slot: no global visibility,
                        # committed immediately (nobody else can race on it)
                        p.stack[instr.mem.variable] = float(value)
                    elif instr.mem.is_scalar:
                        store_buffer.append((instr.mem.variable, None, float(value)))
                    else:
                        addr = p.operand(instr.mem.address, memory, symbols)
                        store_buffer.append(
                            (instr.mem.variable, int(addr) // WORD_SIZE, float(value))
                        )
                    continue
                if instr.opcode in (Opcode.INEG, Opcode.FNEG):
                    assert instr.dest is not None
                    p.regs[instr.dest] = -p.operand(instr.srcs[0], memory, symbols)
                    continue
                # plain ALU operation
                assert instr.dest is not None
                a = p.operand(instr.srcs[0], memory, symbols)
                b = p.operand(instr.srcs[1], memory, symbols)
                p.regs[instr.dest] = _alu(instr.opcode, a, b)
            p.advance(t)
        for name, index, value in store_buffer:
            memory.write(name, index, value)
        _check_deadlock(procs, signals, signal_latency, faults, t)

    finishes: dict[int, int] = {}
    for p in procs:
        finishes.update(p.finishes)
    finish_times = [finishes[lower + i] for i in range(n)]
    return ExecutionResult(
        memory=memory,
        parallel_time=max(finish_times, default=0),
        finish_times=finish_times,
    )
