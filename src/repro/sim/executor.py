"""Semantic parallel execution of a scheduled DOACROSS loop.

This is the ground-truth machine: every processor executes its iteration's
scheduled bundles against *real shared memory*, cycle by cycle, blocking at
waits until the signal is visible.  Its two outputs cross-check the rest of
the system:

* the final :class:`~repro.sim.memory.MemoryImage` must equal the serial
  interpreter's (a stale-data read — the bug the synchronization conditions
  exist to prevent — makes them differ);
* the measured completion times must equal the analytic timing simulation
  (:mod:`repro.sim.multiproc`) exactly.

Within one global cycle all loads read memory as of the cycle start and all
stores commit at the end, so a (schedule-bug) same-cycle read/write race is
resolved deterministically — and flagged by the memory comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.isa import Instruction, Opcode, Operand, WORD_SIZE
from repro.ir.ast_nodes import Const
from repro.ir.symbols import VarType
from repro.sched.schedule import Schedule
from repro.sim.memory import MemoryImage

Number = float | int


@dataclass
class ExecutionResult:
    memory: MemoryImage
    parallel_time: int
    finish_times: list[int]


class _Processor:
    """In-order execution state of one processor, running its assigned
    iterations back to back (a single iteration in the paper's setting)."""

    def __init__(self, schedule: Schedule, iterations: list[int]) -> None:
        self.schedule = schedule
        self.lowered = schedule.lowered
        self.bundles = schedule.bundles()
        self.iterations = iterations
        self.slot = 0  # index into self.iterations
        self.local_cycle = 1  # next local cycle to issue
        self.next_issue = 1  # global time the next bundle may issue
        self.iter_finish = 0  # completion time of the current iteration so far
        self.finishes: dict[int, int] = {}  # iteration -> completion time
        self.regs: dict[str, Number] = {}
        self.stack: dict[str, float] = {}
        if iterations:
            self._load_iteration()

    @property
    def iteration(self) -> int:
        return self.iterations[self.slot]

    def _load_iteration(self) -> None:
        self.local_cycle = 1
        self.iter_finish = 0
        self.regs = {self.lowered.synced.loop.index: self.iteration}
        self.stack: dict[str, float] = {}  # processor-private (spill) cells

    def done(self) -> bool:
        return self.slot >= len(self.iterations)

    def due(self, t: int) -> bool:
        return not self.done() and self.next_issue == t

    def bundle(self) -> list[Instruction]:
        iids = self.bundles[self.local_cycle - 1]
        return [self.lowered.instruction(iid) for iid in iids]

    def advance(self, t: int) -> None:
        """Move past the bundle just issued at global time ``t``."""
        self.local_cycle += 1
        if self.local_cycle > len(self.bundles):
            self.finishes[self.iteration] = self.iter_finish
            self.slot += 1
            if not self.done():
                # the next iteration starts the cycle after completion
                self.next_issue = max(self.iter_finish + 1, t + 1)
                self._load_iteration()
        else:
            self.next_issue = t + 1

    def operand(self, op: Operand, memory: MemoryImage, symbols) -> Number:
        if not isinstance(op, str):
            return op
        if op in self.regs:
            return self.regs[op]
        # A loop-invariant scalar register, pre-loaded before the loop.
        value = memory.read_scalar(op)
        if op in symbols and symbols[op].var_type is VarType.INT:
            value = int(value)
        self.regs[op] = value
        return value


def _compare(op: str, a: Number, b: Number) -> int:
    if op == "<":
        return int(a < b)
    if op == ">":
        return int(a > b)
    if op == "<=":
        return int(a <= b)
    if op == ">=":
        return int(a >= b)
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    raise ValueError(op)


def _alu(opcode: Opcode, a: Number, b: Number) -> Number:
    if opcode in (Opcode.IADD, Opcode.FADD):
        return a + b
    if opcode in (Opcode.ISUB, Opcode.FSUB):
        return a - b
    if opcode in (Opcode.SHIFT, Opcode.IMUL, Opcode.FMUL):
        return a * b
    if opcode is Opcode.IDIV:
        return a // b
    if opcode is Opcode.FDIV:
        return a / b
    raise ValueError(opcode)


def execute_parallel(
    schedule: Schedule,
    memory: MemoryImage,
    n: int | None = None,
    max_cycles: int | None = None,
    processors: int | None = None,
    signal_latency: int = 1,
    mapping: str = "cyclic",
) -> ExecutionResult:
    """Run ``n`` iterations on ``processors`` processors (default one per
    iteration), mutating ``memory``.

    Iterations are numbered from the loop's lower bound (which must be a
    constant, as DOACROSS iteration numbering is absolute) and mapped to
    processors per ``mapping`` ("cyclic" or "block"), matching
    :func:`repro.sim.multiproc.simulate_doacross`.
    """
    lowered = schedule.lowered
    loop = lowered.synced.loop
    symbols = lowered.symbols
    if not isinstance(loop.lower, Const):
        raise ValueError("parallel execution requires a constant lower bound")
    lower = int(loop.lower.value)
    if n is None:
        if not isinstance(loop.upper, Const):
            raise ValueError("symbolic loop bounds require an explicit n")
        n = int(loop.upper.value) - lower + 1
    if processors is None or processors >= n:
        processors = max(n, 1)
    if signal_latency < 0:
        raise ValueError("signal latency must be non-negative")

    from repro.sim.multiproc import iteration_mapping

    machine = schedule.machine
    procs = [
        _Processor(schedule, [lower + k - 1 for k in assigned])
        for assigned in iteration_mapping(n, processors, mapping)
    ]
    signals: dict[tuple[str, int], int] = {}  # (source label, iteration) -> send cycle
    if max_cycles is None:
        max_cycles = (n + 2) * (schedule.length + 2 + signal_latency) + 1024

    t = 0
    while any(not p.done() for p in procs):
        t += 1
        if t > max_cycles:
            raise RuntimeError(f"parallel execution exceeded {max_cycles} cycles (deadlock?)")
        store_buffer: list[tuple[str, int | None, float]] = []
        for p in procs:
            if not p.due(t):
                continue
            bundle = p.bundle()
            # A bundle containing an unsatisfied wait stalls whole.
            blocked = False
            for instr in bundle:
                if instr.opcode is Opcode.WAIT:
                    assert instr.sync is not None and instr.sync.distance is not None
                    producer = p.iteration - instr.sync.distance
                    if producer >= lower:
                        sent = signals.get((instr.sync.source_label, producer))
                        if sent is None or sent + signal_latency > t:
                            blocked = True
                            break
            if blocked:
                p.next_issue = t + 1
                continue
            for instr in bundle:
                latency = machine.latency(instr.fu)
                p.iter_finish = max(p.iter_finish, t + latency - 1)
                if instr.opcode is Opcode.WAIT:
                    continue
                if instr.opcode is Opcode.SEND:
                    assert instr.sync is not None
                    signals[(instr.sync.source_label, p.iteration)] = t
                    continue
                if instr.opcode is Opcode.LOAD:
                    assert instr.mem is not None and instr.dest is not None
                    if instr.mem.private:
                        value = p.stack[instr.mem.variable]
                    elif instr.mem.is_scalar:
                        value = memory.read(instr.mem.variable, None)
                    else:
                        addr = p.operand(instr.mem.address, memory, symbols)
                        value = memory.read(instr.mem.variable, int(addr) // WORD_SIZE)
                    p.regs[instr.dest] = value
                    continue
                if instr.opcode in (Opcode.ICMP, Opcode.FCMP):
                    assert instr.dest is not None and instr.cmp is not None
                    a = p.operand(instr.srcs[0], memory, symbols)
                    b = p.operand(instr.srcs[1], memory, symbols)
                    p.regs[instr.dest] = _compare(instr.cmp, a, b)
                    continue
                if instr.opcode in (Opcode.STORE, Opcode.STORE_OP):
                    assert instr.mem is not None
                    if instr.pred is not None and not p.operand(
                        instr.pred, memory, symbols
                    ):
                        continue  # predicated off: no memory effect
                    if instr.opcode is Opcode.STORE:
                        value = p.operand(instr.srcs[0], memory, symbols)
                    else:
                        assert instr.fused is not None
                        a = p.operand(instr.srcs[0], memory, symbols)
                        b = p.operand(instr.srcs[1], memory, symbols)
                        value = _alu(instr.fused, a, b)
                    if instr.mem.private:
                        # processor-local stack slot: no global visibility,
                        # committed immediately (nobody else can race on it)
                        p.stack[instr.mem.variable] = float(value)
                    elif instr.mem.is_scalar:
                        store_buffer.append((instr.mem.variable, None, float(value)))
                    else:
                        addr = p.operand(instr.mem.address, memory, symbols)
                        store_buffer.append(
                            (instr.mem.variable, int(addr) // WORD_SIZE, float(value))
                        )
                    continue
                if instr.opcode in (Opcode.INEG, Opcode.FNEG):
                    assert instr.dest is not None
                    p.regs[instr.dest] = -p.operand(instr.srcs[0], memory, symbols)
                    continue
                # plain ALU operation
                assert instr.dest is not None
                a = p.operand(instr.srcs[0], memory, symbols)
                b = p.operand(instr.srcs[1], memory, symbols)
                p.regs[instr.dest] = _alu(instr.opcode, a, b)
            p.advance(t)
        for name, index, value in store_buffer:
            memory.write(name, index, value)

    finishes: dict[int, int] = {}
    for p in procs:
        finishes.update(p.finishes)
    finish_times = [finishes[lower + i] for i in range(n)]
    return ExecutionResult(
        memory=memory,
        parallel_time=max(finish_times, default=0),
        finish_times=finish_times,
    )
