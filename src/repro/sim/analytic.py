"""Closed-form parallel execution time model (paper Section 2).

With one iteration per processor, all processors starting together, and a
signal visible one cycle after its send issues:

* An LFD-scheduled pair (send issued before the wait, ``span <= 0``) never
  stalls anyone: the parallel time contribution is just ``l``, the length
  of one iteration.
* An LBD-scheduled pair with wait at cycle ``j``, send at cycle ``i >= j``
  and distance ``d`` forms a stall chain: iteration ``k`` resumes one cycle
  after iteration ``k-d``'s send, so each of the ``floor((n-1)/d)`` links of
  the longest chain adds ``span = i - j + 1`` cycles, giving

      T = floor((n-1)/d) * (i - j + 1) + l.

  The paper states this as ``(n/d)(i-j) + l`` — the same quantity up to
  the inclusive-span convention and the exact hop count (its Fig. 4
  discussion counts the span inclusively, e.g. "12 instructions" for
  cycles 2..13).  :func:`paper_lbd_formula` exposes the paper's rounding
  for side-by-side reporting.

With several LBD pairs the chains interact; the closed form below takes the
maximum over pairs, which is exact for a single LBD pair and a lower bound
otherwise (``tests/sim/test_analytic.py`` checks both properties against
the event simulation).
"""

from __future__ import annotations

from repro.sched.schedule import Schedule


def lbd_hops(n: int, d: int) -> int:
    """Number of links in the longest stall chain: iterations 1..n, each
    waiting on the one ``d`` back."""
    if n <= 0:
        return 0
    return (n - 1) // d


def lbd_parallel_time(n: int, d: int, span: int, l: int, signal_latency: int = 1) -> int:
    """Exact parallel time of a loop with a single synchronization pair.

    ``span`` is the inclusive wait→send cycle distance computed at the
    paper's unit signal latency (``i - j + 1``); with a slower interconnect
    each hop costs ``i - j + signal_latency`` instead, and a pair stalls
    whenever the send plus latency lands after the wait.
    """
    per_hop = span - 1 + signal_latency  # (i - j) + latency
    if per_hop <= 0:
        return l
    return lbd_hops(n, d) * per_hop + l


def paper_lbd_formula(n: int, d: int, span: int, l: int) -> float:
    """The paper's approximate statement ``(n/d) * span + l`` (span already
    inclusive, as in its Fig. 4 numbers)."""
    if span <= 0:
        return float(l)
    return (n / d) * span + l


def predicted_parallel_time(schedule: Schedule, n: int, signal_latency: int = 1) -> int:
    """Max-over-pairs closed form for a schedule: exact when at most one
    pair stalls, a lower bound otherwise."""
    l = schedule.length
    best = l
    for pair in schedule.lowered.synced.pairs:
        t = lbd_parallel_time(
            n, pair.distance, schedule.span(pair.pair_id), l, signal_latency
        )
        best = max(best, t)
    return best
