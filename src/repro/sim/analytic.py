"""Closed-form parallel execution time model (paper Section 2).

With one iteration per processor, all processors starting together, and a
signal visible one cycle after its send issues:

* An LFD-scheduled pair (send issued before the wait, ``span <= 0``) never
  stalls anyone: the parallel time contribution is just ``l``, the length
  of one iteration.
* An LBD-scheduled pair with wait at cycle ``j``, send at cycle ``i >= j``
  and distance ``d`` forms a stall chain: iteration ``k`` resumes one cycle
  after iteration ``k-d``'s send, so each of the ``floor((n-1)/d)`` links of
  the longest chain adds ``span = i - j + 1`` cycles, giving

      T = floor((n-1)/d) * (i - j + 1) + l.

  The paper states this as ``(n/d)(i-j) + l`` — the same quantity up to
  the inclusive-span convention and the exact hop count (its Fig. 4
  discussion counts the span inclusively, e.g. "12 instructions" for
  cycles 2..13).  :func:`paper_lbd_formula` exposes the paper's rounding
  for side-by-side reporting.

With several LBD pairs the chains interact; the closed form below takes the
maximum over pairs, which is exact for a single LBD pair and a lower bound
otherwise (``tests/sim/test_analytic.py`` checks both properties against
the event simulation).

Batch evaluation plane
----------------------

A sweep evaluates thousands of ``(schedule, n)`` cells whose answers are
all instances of the two formulas above.  :class:`ScheduleSignature`
captures everything the closed form needs about a schedule — the
iteration length plus each pair's ``(wait, send, distance)`` geometry —
and :func:`closed_form_plan` decides *once per signature* whether the
closed form is provably exact (the same preconditions
:func:`repro.sim.multiproc.analytic_fast_path` enforces; it now
delegates here).  :func:`batch_closed_form` then evaluates whole tables
of ``(signature, n)`` rows in flat array passes — one dispatch for the
entire grid, no per-loop Python pipeline in between.  This is the
evaluation plane behind :class:`repro.perf.batch.BatchEvaluator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.sched.schedule import Schedule


def lbd_hops(n: int, d: int) -> int:
    """Number of links in the longest stall chain: iterations 1..n, each
    waiting on the one ``d`` back."""
    if n <= 0:
        return 0
    return (n - 1) // d


def lbd_parallel_time(n: int, d: int, span: int, l: int, signal_latency: int = 1) -> int:
    """Exact parallel time of a loop with a single synchronization pair.

    ``span`` is the inclusive wait→send cycle distance computed at the
    paper's unit signal latency (``i - j + 1``); with a slower interconnect
    each hop costs ``i - j + signal_latency`` instead, and a pair stalls
    whenever the send plus latency lands after the wait.
    """
    per_hop = span - 1 + signal_latency  # (i - j) + latency
    if per_hop <= 0:
        return l
    return lbd_hops(n, d) * per_hop + l


def paper_lbd_formula(n: int, d: int, span: int, l: int) -> float:
    """The paper's approximate statement ``(n/d) * span + l`` (span already
    inclusive, as in its Fig. 4 numbers)."""
    if span <= 0:
        return float(l)
    return (n / d) * span + l


def predicted_parallel_time(schedule: Schedule, n: int, signal_latency: int = 1) -> int:
    """Max-over-pairs closed form for a schedule: exact when at most one
    pair stalls, a lower bound otherwise."""
    l = schedule.length
    best = l
    for pair in schedule.lowered.synced.pairs:
        t = lbd_parallel_time(
            n, pair.distance, schedule.span(pair.pair_id), l, signal_latency
        )
        best = max(best, t)
    return best


# -- the batch evaluation plane ------------------------------------------------


@dataclass(frozen=True)
class PairGeometry:
    """One synchronization pair as the closed form sees it."""

    pair_id: int
    wait: int  # wait issue cycle j
    send: int  # send issue cycle i
    distance: int  # dependence distance d

    @property
    def span(self) -> int:
        """The paper's inclusive span ``i - j + 1``."""
        return self.send - self.wait + 1

    def per_hop(self, signal_latency: int = 1) -> int:
        """Stall added per chain link: ``(i - j) + latency``."""
        return self.send - self.wait + signal_latency


@dataclass(frozen=True)
class ScheduleSignature:
    """Everything the closed form needs about one schedule.

    Two schedules with equal signatures have identical analytic results
    for every ``(n, signal_latency)``, so signatures double as memo keys
    for whole-grid evaluation.
    """

    length: int
    pairs: tuple[PairGeometry, ...]

    @classmethod
    def of(cls, schedule: Schedule) -> "ScheduleSignature":
        return cls(
            length=schedule.length,
            pairs=tuple(
                PairGeometry(
                    pair_id=pair.pair_id,
                    wait=schedule.wait_cycle(pair.pair_id),
                    send=schedule.send_cycle(pair.pair_id),
                    distance=pair.distance,
                )
                for pair in schedule.lowered.synced.pairs
            ),
        )


@dataclass(frozen=True)
class ClosedFormPlan:
    """How to answer a signature analytically: no stalls, or one chain.

    ``stalling`` is ``None`` for the no-stall case (parallel time is the
    iteration length ``l``); otherwise it is the single pair whose chain
    the Section 2 formula walks.
    """

    stalling: PairGeometry | None = None


def closed_form_plan(
    signature: ScheduleSignature, signal_latency: int = 1
) -> ClosedFormPlan | None:
    """The plan under which the closed form is *provably exact*, else
    ``None`` (the event walk must answer).

    Preconditions (one iteration per processor, mirrored by
    :func:`repro.sim.multiproc.analytic_fast_path`, which delegates
    here):

    * **No pair stalls** — every pair has ``send + latency <= wait``.
    * **Exactly one pair stalls**, its send does not precede its wait
      (with ``signal_latency > 1`` a pair can have ``per_hop > 0`` yet
      issue its send first, and the chain does not compound), and every
      pair the simulator's wait order processes before it issues its
      send before the stalling pair's wait (so the producer-side stall
      cannot leak into it).
    """
    stalling: list[PairGeometry] = []
    for pair in signature.pairs:
        if pair.per_hop(signal_latency) > 0:
            stalling.append(pair)
    if not stalling:
        return ClosedFormPlan(stalling=None)
    if len(stalling) > 1:
        return None
    culprit = stalling[0]
    if culprit.send < culprit.wait:
        return None  # stall does not compound; not the Section 2 chain
    culprit_key = (culprit.wait, culprit.distance, culprit.send)
    for other in signature.pairs:
        if (other.wait, other.distance, other.send) < culprit_key:
            # Processed before the stalling pair, so its wait sees none of
            # that pair's stall — safe only if its producer-side send is
            # also unaffected (issued before the stalling pair's wait).
            if other.send >= culprit.wait:
                return None
    return ClosedFormPlan(stalling=culprit)


def chain_total_stall(n: int, d: int, per_hop: int) -> int:
    """``sum_k floor((k-1)/d) * per_hop`` for ``k = 1..n`` without the sum:
    the stall chain's total cost in O(1)."""
    if n <= 0 or per_hop <= 0:
        return 0
    q, r = divmod(n, d)
    return per_hop * (d * q * (q - 1) // 2 + r * q)


def chain_finish_times(n: int, d: int, per_hop: int, l: int) -> list[int]:
    """Per-iteration completion times of a single stall chain (the same
    closed-form fill the fast path materializes)."""
    if per_hop <= 0:
        return [l] * n
    return [l + ((k - 1) // d) * per_hop for k in range(1, n + 1)]


def batch_closed_form(
    rows: Iterable[tuple[ScheduleSignature, ClosedFormPlan, int]],
    signal_latency: int = 1,
) -> list[tuple[int, int]]:
    """Evaluate ``(signature, plan, n)`` rows in one flat pass.

    Returns ``(parallel_time, total_stall)`` per row, computed as plain
    array arithmetic — no per-row simulator dispatch.  Callers that need
    per-iteration ``finish_times`` materialize them with
    :func:`chain_finish_times` (kept separate so a million-row grid can
    stay O(rows), not O(rows × n))."""
    out: list[tuple[int, int]] = []
    append = out.append
    for signature, plan, n in rows:
        l = signature.length
        if n <= 0:
            append((0, 0))
            continue
        culprit = plan.stalling
        if culprit is None:
            append((l, 0))
            continue
        per_hop = culprit.per_hop(signal_latency)
        d = culprit.distance
        append(
            (
                l + ((n - 1) // d) * per_hop,
                chain_total_stall(n, d, per_hop),
            )
        )
    return out


def batch_parallel_times(
    rows: Sequence[tuple[int, int, int, int]], signal_latency: int = 1
) -> list[int]:
    """Flat-array form of :func:`lbd_parallel_time` over ``(n, d, span,
    l)`` rows — one pass, one int per row."""
    out: list[int] = []
    append = out.append
    for n, d, span, l in rows:
        per_hop = span - 1 + signal_latency
        if per_hop <= 0 or n <= 0:
            append(l)
        else:
            append(((n - 1) // d) * per_hop + l)
    return out
