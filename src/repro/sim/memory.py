"""Shared-memory image for semantic execution.

A :class:`MemoryImage` is a dictionary of cells: ``(name, index)`` for
array elements and ``(name, None)`` for memory-resident scalars.  Reads of
never-written cells return a *deterministic* default derived from the name
and index, so a serial reference run and a parallel run that read the same
uninitialized input data still agree cell-for-cell — no RNG, no seeding
ceremony, and any divergence is a real scheduling/simulation bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

Cell = tuple[str, int | None]


def default_value(name: str, index: int | None) -> float:
    """Deterministic pseudo-data for uninitialized cells.

    A tiny integer hash keeps values distinct across names and indices but
    exactly representable in binary floating point (multiples of 1/64), so
    float arithmetic differences cannot masquerade as scheduling bugs.  The
    range is [2, 6): strictly positive, so generated code may divide by
    never-written (noise) arrays without risking a zero denominator.
    """
    h = 0
    for ch in name:
        h = (h * 31 + ord(ch)) % 1009
    i = 0 if index is None else index
    return ((h + i * 7) % 256) / 64.0 + 2.0


@dataclass
class MemoryImage:
    """Mutable shared memory; cells materialize on first access."""

    cells: dict[Cell, float] = field(default_factory=dict)

    def read(self, name: str, index: int | None) -> float:
        key = (name, index)
        if key not in self.cells:
            self.cells[key] = default_value(name, index)
        return self.cells[key]

    def write(self, name: str, index: int | None, value: float) -> None:
        self.cells[(name, index)] = value

    def read_scalar(self, name: str) -> float:
        return self.read(name, None)

    def write_scalar(self, name: str, value: float) -> None:
        self.write(name, None, value)

    def set_array(self, name: str, values: list[float], start: int = 1) -> None:
        for offset, value in enumerate(values):
            self.write(name, start + offset, value)

    def get_array(self, name: str, start: int, stop: int) -> list[float]:
        """Values at indices ``start..stop`` inclusive (materializing
        defaults)."""
        return [self.read(name, i) for i in range(start, stop + 1)]

    def copy(self) -> "MemoryImage":
        return MemoryImage(cells=dict(self.cells))

    def written_cells(self) -> Iterator[Cell]:
        return iter(self.cells)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryImage):
            return NotImplemented
        # Compare on the union of materialized cells, reading through
        # defaults so one side having materialized more cells is harmless.
        keys = set(self.cells) | set(other.cells)
        return all(
            self.read(name, index) == other.read(name, index) for name, index in keys
        )

    def diff(self, other: "MemoryImage") -> list[tuple[Cell, float, float]]:
        """Cells where the two images disagree (diagnostics for tests)."""
        keys = sorted(set(self.cells) | set(other.cells), key=str)
        out = []
        for name, index in keys:
            a = self.read(name, index)
            b = other.read(name, index)
            if a != b:
                out.append(((name, index), a, b))
        return out
