"""Result metrics: the quantities the paper's Tables 2 and 3 report."""

from __future__ import annotations

from dataclasses import dataclass


def improvement_percent(t_baseline: float, t_new: float) -> float:
    """The paper's Table 3 metric: how much of the baseline's parallel
    execution time the new schedule removes, in percent."""
    if t_baseline <= 0:
        raise ValueError("baseline time must be positive")
    return (t_baseline - t_new) / t_baseline * 100.0


def speedup(serial_time: float, parallel_time: float) -> float:
    """Serial time over parallel time."""
    if parallel_time <= 0:
        raise ValueError("parallel time must be positive")
    return serial_time / parallel_time


@dataclass(frozen=True)
class BenchmarkTimes:
    """Per-benchmark, per-configuration pair of parallel execution times
    (``T_a`` list scheduling, ``T_b`` the new scheduling)."""

    benchmark: str
    config: str
    t_list: int
    t_new: int

    @property
    def improvement(self) -> float:
        return improvement_percent(self.t_list, self.t_new)


def total_improvement(rows: list[BenchmarkTimes]) -> float:
    """Aggregate improvement over summed times (the paper's 'Total' row)."""
    total_list = sum(r.t_list for r in rows)
    total_new = sum(r.t_new for r in rows)
    return improvement_percent(total_list, total_new)
