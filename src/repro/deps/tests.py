"""Single-index-variable (SIV) dependence tests.

Given two affine references to the same array — a *first* access in
iteration ``k`` and a *second* access in iteration ``k + d`` — decide whether
they can touch the same element and, when possible, the constant dependence
distance ``d``.

Terminology follows the standard taxonomy (Allen & Kennedy):

* **ZIV** (zero index variable): both coefficients zero.  Dependence iff the
  offsets are equal; the distance is not constant (every later iteration
  conflicts), reported as ``irregular``.
* **strong SIV**: equal non-zero coefficients ``a``.  The accesses collide
  exactly when ``a*d = b1 - b2``, a single constant distance.
* **weak SIV / general**: different coefficients.  A GCD feasibility test
  decides whether any collision exists inside iteration space; the distance
  varies per iteration, reported as ``irregular`` when feasible.

The paper's evaluation uses only "simple subscript expressions" (types 3-5
of its DOACROSS taxonomy), which are all strong SIV; the other outcomes make
a loop SERIAL in :mod:`repro.deps.classify`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.deps.subscripts import Affine


@dataclass(frozen=True)
class DependenceSolution:
    """Outcome of a dependence test between two affine references.

    ``exists``
        whether the two references can ever touch the same element.
    ``distance``
        the constant iteration distance ``d`` (second access ``d``
        iterations after the first), when one exists.  ``d`` may be
        negative — the caller flips source and sink in that case.  ``None``
        when no constant distance exists.
    ``irregular``
        dependence exists but without a constant distance (ZIV or weak
        SIV); such loops cannot be DOACROSS-synchronized with
        constant-distance signals and are classified SERIAL.
    """

    exists: bool
    distance: int | None = None
    irregular: bool = False

    @classmethod
    def none(cls) -> "DependenceSolution":
        return cls(exists=False)


def solve_siv(first: Affine, second: Affine, trip_count: int | None = None) -> DependenceSolution:
    """Test ``first`` (iteration ``k``) against ``second`` (iteration ``k+d``).

    ``trip_count``, when known, bounds the feasibility check for the weak
    case: a collision whose iterations fall outside ``1..trip_count`` is no
    dependence.  With a symbolic trip count the weak case is conservatively
    reported feasible whenever the GCD test passes.
    """
    a1, b1 = first.coeff, first.offset
    a2, b2 = second.coeff, second.offset

    if a1 == 0 and a2 == 0:  # ZIV
        if b1 == b2:
            return DependenceSolution(exists=True, irregular=True)
        return DependenceSolution.none()

    if a1 == a2:  # strong SIV: a*k + b1 == a*(k+d) + b2  =>  a*d == b1 - b2
        diff = b1 - b2
        if diff % a1 != 0:
            return DependenceSolution.none()
        d = diff // a1
        if trip_count is not None and abs(d) >= trip_count:
            return DependenceSolution.none()
        return DependenceSolution(exists=True, distance=d)

    # Weak SIV / general: a1*i + b1 == a2*j + b2 for integers i, j.
    # Feasible iff gcd(a1, a2) divides (b2 - b1).
    g = math.gcd(a1, a2)
    if g != 0 and (b2 - b1) % g != 0:
        return DependenceSolution.none()
    if trip_count is not None and not _weak_feasible(a1, b1, a2, b2, trip_count):
        return DependenceSolution.none()
    return DependenceSolution(exists=True, irregular=True)


def _weak_feasible(a1: int, b1: int, a2: int, b2: int, trip_count: int) -> bool:
    """Exact in-bounds check for the weak case with a known trip count.

    Small trip counts (the generator uses hundreds) make direct enumeration
    over one index affordable and exact, which the GCD test alone is not.
    """
    lo, hi = 1, trip_count
    for i in range(lo, hi + 1):
        value = a1 * i + b1
        # a2 * j = value - b2  =>  j integral and in bounds?
        if a2 == 0:
            if value == b2:
                return True
            continue
        num = value - b2
        if num % a2 == 0 and lo <= num // a2 <= hi:
            return True
    return False
