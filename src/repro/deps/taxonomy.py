"""DOACROSS loop taxonomy (paper Section 4.1, after Eigenmann et al.).

The paper sorts DOACROSS loops into six types and evaluates on types 3-5
plus part of 6:

1. **control dependence** — the recurrence runs through control flow,
   expressed here as guarded (Fortran logical-IF) statements.
2. **anti/output dependence** — every carried dependence is anti or
   output (no carried flow); removable by renaming in principle.
3. **induction variable** — an auxiliary induction variable carries the
   recurrence (before substitution).
4. **reduction operation** — an associative accumulator carries it.
5. **simple subscript expression** — carried flow dependences through
   plainly-subscripted arrays with constant distances.
6. **others** — whatever remains (irregular distances, non-affine
   subscripts, unrecognized scalar recurrences).

Classification looks at the loop *before* restructuring, because types 3
and 4 describe exactly what the restructuring removes.
"""

from __future__ import annotations

import enum

from repro.deps.analysis import DepKind, analyze_loop
from repro.ir.ast_nodes import Loop
from repro.transforms.induction import find_induction_variables
from repro.transforms.reduction import find_reductions


class DoacrossType(enum.Enum):
    """The paper's Section 4.1 DOACROSS loop types (see module docs)."""

    CONTROL_DEPENDENCE = 1
    ANTI_OUTPUT = 2
    INDUCTION_VARIABLE = 3
    REDUCTION = 4
    SIMPLE_SUBSCRIPT = 5
    OTHERS = 6


def classify_doacross(loop: Loop) -> DoacrossType:
    """Assign the paper's type to one loop (priority: 3, 4, 2, 5, 6).

    Induction and reduction take precedence (they are *why* the loop is not
    yet parallel and name the transform that fixes it); a loop whose only
    remaining carried dependences are anti/output is type 2; carried flow
    dependences through constant-distance array subscripts are type 5;
    anything irregular falls into type 6.
    """
    graph = analyze_loop(loop)
    carried = graph.loop_carried()
    if not carried:
        raise ValueError("not a DOACROSS candidate: no loop-carried dependence")

    # Type 1: the recurrence runs through a guarded (control-dependent)
    # statement.
    from repro.ir.ast_nodes import Assign

    def stmt_guarded(pos: int) -> bool:
        stmt = loop.body[pos]
        return isinstance(stmt, Assign) and stmt.guard is not None

    if any(stmt_guarded(d.source) or stmt_guarded(d.sink) for d in carried):
        return DoacrossType.CONTROL_DEPENDENCE

    if find_induction_variables(loop):
        return DoacrossType.INDUCTION_VARIABLE
    if find_reductions(loop):
        return DoacrossType.REDUCTION
    if any(d.irregular for d in carried):
        return DoacrossType.OTHERS

    kinds = {d.kind for d in carried}
    if DepKind.FLOW not in kinds:
        return DoacrossType.ANTI_OUTPUT

    # Carried flow dependences: simple subscripts iff none run through
    # scalars (a scalar recurrence that is neither induction nor reduction
    # belongs to "others").
    scalar_flow = any(
        d.kind is DepKind.FLOW and not _is_array_dep(loop, d) for d in carried
    )
    if scalar_flow:
        return DoacrossType.OTHERS
    return DoacrossType.SIMPLE_SUBSCRIPT


def _is_array_dep(loop: Loop, dep) -> bool:
    from repro.ir.ast_nodes import ArrayRef

    return isinstance(dep.source_ref, ArrayRef)


def taxonomy_table(loops: list[Loop]) -> dict[DoacrossType, int]:
    """Type histogram of a corpus (DOALL loops are skipped)."""
    table = {t: 0 for t in DoacrossType}
    for loop in loops:
        graph = analyze_loop(loop)
        if not graph.loop_carried():
            continue
        table[classify_doacross(loop)] += 1
    return table
