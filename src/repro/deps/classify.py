"""LFD/LBD dependence classification and loop classification.

Following the paper's definitions (Section 2):

* ``Si bef Sj`` iff ``Si`` occurs textually before ``Sj``.
* A dependence ``Si δ Sj`` is **forward** (LFD) iff ``Si bef Sj``; *any*
  dependence that is not forward — including a statement depending on
  itself — is **backward** (LBD).

Only loop-carried dependences matter for the LFD/LBD distinction (a
loop-independent dependence never crosses processors in the DOACROSS
execution), so the helpers below restrict themselves to those.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.deps.analysis import Dependence, DependenceGraph, analyze_loop
from repro.ir.ast_nodes import Loop


class LoopClass(enum.Enum):
    """Parallelizability of a loop.

    ``DOALL``     — no loop-carried dependence; iterations are independent.
    ``DOACROSS``  — loop-carried dependences, all with constant distances;
                    parallelizable with Send/Wait synchronization.
    ``SERIAL``    — some loop-carried dependence has no constant distance
                    (irregular/non-affine); cannot be synchronized with
                    constant-distance signals.
    """

    DOALL = "doall"
    DOACROSS = "doacross"
    SERIAL = "serial"


def is_lexically_backward(dep: Dependence) -> bool:
    """Paper definition: backward iff the source is *not* textually before
    the sink (``source >= sink`` covers the self-dependence case)."""
    return dep.source >= dep.sink


def classify_dependence(dep: Dependence) -> str:
    """``"LBD"`` or ``"LFD"`` for a loop-carried dependence."""
    if not dep.loop_carried:
        raise ValueError("LFD/LBD classification applies to loop-carried dependences")
    return "LBD" if is_lexically_backward(dep) else "LFD"


@dataclass(frozen=True)
class LfdLbdCount:
    lfd: int = 0
    lbd: int = 0

    @property
    def total(self) -> int:
        return self.lfd + self.lbd


def count_lfd_lbd(graph: DependenceGraph) -> LfdLbdCount:
    """Count loop-carried dependences by direction (Table 1 columns)."""
    lfd = lbd = 0
    for dep in graph.loop_carried():
        if is_lexically_backward(dep):
            lbd += 1
        else:
            lfd += 1
    return LfdLbdCount(lfd=lfd, lbd=lbd)


def classify_loop(loop_or_graph: Loop | DependenceGraph) -> LoopClass:
    """Classify a loop as DOALL / DOACROSS / SERIAL (see :class:`LoopClass`)."""
    graph = (
        loop_or_graph
        if isinstance(loop_or_graph, DependenceGraph)
        else analyze_loop(loop_or_graph)
    )
    carried = graph.loop_carried()
    if not carried:
        return LoopClass.DOALL
    if any(d.irregular for d in carried):
        return LoopClass.SERIAL
    return LoopClass.DOACROSS
