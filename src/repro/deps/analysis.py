"""Statement-level dependence analysis of a loop body.

:func:`analyze_loop` builds a :class:`DependenceGraph` whose nodes are the
body's assignment statements (identified by their position in
``loop.body``) and whose edges are :class:`Dependence` records: flow, anti
and output dependences, loop-carried (constant distance or irregular) and
loop-independent, over both array and scalar accesses.

Conventions
-----------

* A dependence runs from its **source** (the access that must happen first)
  to its **sink**.  For a loop-carried dependence with distance ``d``, the
  sink's iteration is ``d`` iterations after the source's.
* Reads of the loop index are not dependences (each processor of the
  DOACROSS execution owns a private copy of the index).
* Reads within a statement execute before its write, so a ``d == 0``
  write/read collision inside one statement is an anti dependence.
* A non-affine subscript conservatively conflicts with every other access
  to the same array (marked ``irregular``), which classifies the loop
  SERIAL downstream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.deps.subscripts import Affine, affine_of
from repro.deps.tests import DependenceSolution, solve_siv
from repro.ir.ast_nodes import ArrayRef, Assign, Const, Expr, Loop, VarRef, walk_expr


class DepKind(enum.Enum):
    """Data dependence kind: flow (RAW), anti (WAR) or output (WAW)."""

    FLOW = "flow"
    ANTI = "anti"
    OUTPUT = "output"


@dataclass(frozen=True)
class Access:
    """One static memory access inside the loop body.

    ``stmt_pos`` indexes ``loop.body``; ``is_write`` marks the statement
    target; ``order`` breaks ties within a statement (reads first).
    ``affine`` is ``None`` for scalars and for non-affine subscripts
    (distinguished by ``is_scalar``).  ``guarded`` marks a may-write under
    a statement guard: it creates dependences like any write but does not
    *kill* earlier definitions (a later read may still see older values).
    """

    variable: str
    stmt_pos: int
    is_write: bool
    is_scalar: bool
    ref: Expr
    affine: Affine | None = None
    guarded: bool = False

    @property
    def order(self) -> int:
        """Within-statement execution order: reads (0) before the write (1)."""
        return 1 if self.is_write else 0


@dataclass(frozen=True)
class Dependence:
    """A data dependence edge between two body statements."""

    source: int
    sink: int
    kind: DepKind
    variable: str
    distance: int | None
    source_ref: Expr
    sink_ref: Expr
    irregular: bool = False

    @property
    def loop_carried(self) -> bool:
        return self.irregular or (self.distance is not None and self.distance > 0)

    def __str__(self) -> str:  # pragma: no cover - diagnostics
        dist = "?" if self.distance is None else str(self.distance)
        return (
            f"{self.kind.value} dep on {self.variable}: "
            f"S@{self.source} -> S@{self.sink} (d={dist})"
        )


@dataclass
class DependenceGraph:
    """All dependences of one loop, with query helpers."""

    loop: Loop
    deps: list[Dependence] = field(default_factory=list)

    def loop_carried(self) -> list[Dependence]:
        return [d for d in self.deps if d.loop_carried]

    def loop_independent(self) -> list[Dependence]:
        return [d for d in self.deps if not d.loop_carried]

    def of_kind(self, kind: DepKind) -> list[Dependence]:
        return [d for d in self.deps if d.kind is kind]

    def on_variable(self, name: str) -> list[Dependence]:
        return [d for d in self.deps if d.variable == name]

    def irregular(self) -> list[Dependence]:
        return [d for d in self.deps if d.irregular]

    def carried_into(self, stmt_pos: int) -> list[Dependence]:
        return [d for d in self.loop_carried() if d.sink == stmt_pos]

    def __iter__(self) -> Iterator[Dependence]:
        return iter(self.deps)

    def __len__(self) -> int:
        return len(self.deps)


# ---------------------------------------------------------------------------
# Access collection
# ---------------------------------------------------------------------------


def _collect_accesses(loop: Loop) -> list[Access]:
    accesses: list[Access] = []
    for pos, stmt in enumerate(loop.body):
        if not isinstance(stmt, Assign):
            continue  # sync ops carry no data accesses of their own
        # Reads: every reference in the RHS, the guard, and the target's
        # subscript (guard and subscript evaluate whether or not the
        # guarded write happens).
        read_exprs: list[Expr] = [stmt.expr, *stmt.guard_exprs()]
        if isinstance(stmt.target, ArrayRef):
            read_exprs.append(stmt.target.subscript)
        for root in read_exprs:
            for node in walk_expr(root):
                if isinstance(node, ArrayRef):
                    accesses.append(
                        Access(
                            variable=node.name,
                            stmt_pos=pos,
                            is_write=False,
                            is_scalar=False,
                            ref=node,
                            affine=affine_of(node.subscript, loop.index),
                        )
                    )
                elif isinstance(node, VarRef) and node.name != loop.index:
                    accesses.append(
                        Access(
                            variable=node.name,
                            stmt_pos=pos,
                            is_write=False,
                            is_scalar=True,
                            ref=node,
                        )
                    )
        # The (possibly guarded) write.
        if isinstance(stmt.target, ArrayRef):
            accesses.append(
                Access(
                    variable=stmt.target.name,
                    stmt_pos=pos,
                    is_write=True,
                    is_scalar=False,
                    ref=stmt.target,
                    affine=affine_of(stmt.target.subscript, loop.index),
                    guarded=stmt.guard is not None,
                )
            )
        else:
            if stmt.target.name == loop.index:
                raise ValueError("assignment to the loop index is not supported")
            accesses.append(
                Access(
                    variable=stmt.target.name,
                    stmt_pos=pos,
                    is_write=True,
                    is_scalar=True,
                    ref=stmt.target,
                    guarded=stmt.guard is not None,
                )
            )
    return accesses


def _trip_count(loop: Loop) -> int | None:
    if isinstance(loop.lower, Const) and isinstance(loop.upper, Const):
        return max(0, int(loop.upper.value) - int(loop.lower.value) + 1)
    return None


# ---------------------------------------------------------------------------
# Pairwise dependence construction
# ---------------------------------------------------------------------------


def _kind_of(source_is_write: bool, sink_is_write: bool) -> DepKind:
    if source_is_write and sink_is_write:
        return DepKind.OUTPUT
    if source_is_write:
        return DepKind.FLOW
    return DepKind.ANTI


def _executes_before(a: Access, b: Access) -> bool:
    """Does ``a`` execute before ``b`` within one iteration?"""
    return (a.stmt_pos, a.order) < (b.stmt_pos, b.order)


def _oriented(
    x: Access, y: Access, solution: DependenceSolution
) -> tuple[Access, Access, int | None] | None:
    """Orient a dependence test result into (source, sink, distance).

    ``solution`` answers "x at iteration k collides with y at iteration
    k + d".  ``d > 0`` means x happens first; ``d == 0`` falls back to
    within-iteration execution order; irregular keeps textual order.
    Returns ``None`` for a ``d == 0`` self-collision that is no dependence
    (an access colliding with itself).
    """
    if solution.irregular:
        if _executes_before(x, y):
            return (x, y, None)
        return (y, x, None)
    d = solution.distance
    assert d is not None
    if d > 0:
        return (x, y, d)
    if d < 0:
        return (y, x, -d)
    # Loop-independent: ordered by within-iteration execution.
    if _executes_before(x, y):
        return (x, y, 0)
    if _executes_before(y, x):
        return (y, x, 0)
    return None  # same access slot: not a dependence


def analyze_loop(loop: Loop) -> DependenceGraph:
    """Build the dependence graph of ``loop``.

    Array references are resolved with the SIV tests; scalar references use
    the exact positional rules for a straight-line body (see module doc).
    """
    accesses = _collect_accesses(loop)
    trip = _trip_count(loop)
    graph = DependenceGraph(loop=loop)
    seen: set[tuple] = set()

    def emit(source: Access, sink: Access, distance: int | None, irregular: bool) -> None:
        dep = Dependence(
            source=source.stmt_pos,
            sink=sink.stmt_pos,
            kind=_kind_of(source.is_write, sink.is_write),
            variable=source.variable,
            distance=distance,
            source_ref=source.ref,
            sink_ref=sink.ref,
            irregular=irregular,
        )
        key = (
            dep.source,
            dep.sink,
            dep.kind,
            dep.variable,
            dep.distance,
            dep.irregular,
            id(dep.source_ref),
            id(dep.sink_ref),
        )
        if key not in seen:
            seen.add(key)
            graph.deps.append(dep)

    # -- arrays --------------------------------------------------------------
    arrays: dict[str, list[Access]] = {}
    for acc in accesses:
        if not acc.is_scalar:
            arrays.setdefault(acc.variable, []).append(acc)

    for refs in arrays.values():
        # A write whose target cell is not a per-iteration-distinct affine
        # function of the index (non-affine, or coefficient zero) collides
        # with *itself* across iterations: successive iterations may write
        # the same cell, an irregular carried output dependence.
        if trip is None or trip > 1:
            for w in refs:
                if w.is_write and (w.affine is None or w.affine.coeff == 0):
                    emit(w, w, None, True)
        for i, x in enumerate(refs):
            for y in refs[i + 1 :]:
                if not (x.is_write or y.is_write):
                    continue
                if x.affine is None or y.affine is None:
                    oriented = _oriented(
                        x, y, DependenceSolution(exists=True, irregular=True)
                    )
                    if oriented:
                        emit(oriented[0], oriented[1], None, True)
                    continue
                solution = solve_siv(x.affine, y.affine, trip)
                if not solution.exists:
                    continue
                oriented = _oriented(x, y, solution)
                if oriented is None:
                    continue
                source, sink, distance = oriented
                emit(source, sink, distance, solution.irregular)

    # -- scalars --------------------------------------------------------------
    scalars: dict[str, list[Access]] = {}
    for acc in accesses:
        if acc.is_scalar:
            scalars.setdefault(acc.variable, []).append(acc)

    for refs in scalars.values():
        writes = sorted((a for a in refs if a.is_write), key=lambda a: a.stmt_pos)
        reads = sorted((a for a in refs if not a.is_write), key=lambda a: a.stmt_pos)
        if not writes:
            continue  # read-only scalar: loop-invariant input, no dependence
        first_write = writes[0]
        last_write = writes[-1]
        def emit_prev_iteration_flows(read: Access) -> None:
            # Value produced by the previous iteration's final *executed*
            # write: the last write, or — through guarded may-writes — any
            # earlier write back to the nearest unguarded one.
            for w in reversed(writes):
                emit(w, read, 1, False)
                if not w.guarded:
                    break

        for read in reads:
            preceding = [w for w in writes if _executes_before(w, read)]
            if preceding:
                # Value comes from the nearest earlier write this iteration
                # — or, through guarded may-writes, any earlier one, and if
                # every preceding write is guarded, possibly the previous
                # iteration's value.
                all_guarded = True
                for w in reversed(preceding):
                    emit(w, read, 0, False)
                    if not w.guarded:
                        all_guarded = False
                        break
                if all_guarded:
                    emit_prev_iteration_flows(read)
            else:
                # Upward-exposed read.
                emit_prev_iteration_flows(read)
            # The location is overwritten afterwards: anti dependence to the
            # next write in execution order (this or the next iteration).
            following = [w for w in writes if _executes_before(read, w)]
            if following:
                emit(read, following[0], 0, False)
            else:
                emit(read, first_write, 1, False)
        for w1, w2 in zip(writes, writes[1:]):
            emit(w1, w2, 0, False)
        if trip is None or trip > 1:
            emit(last_write, first_write, 1, False)

    return graph
