"""Affine subscript analysis.

Every subscript the paper's kernels use is affine in the loop index:
``I``, ``I-2``, ``I+3``, ``2*I+1``...  :func:`affine_of` extracts the
``(coefficient, offset)`` pair or returns ``None`` when the subscript is not
an integer-affine function of the index (a different scalar, a nested array
reference, a product of the index with itself, ...).  Non-affine subscripts
make the enclosing dependence unanalyzable and the loop SERIAL.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.ast_nodes import ArrayRef, BinOp, Const, Expr, UnaryOp, VarRef


@dataclass(frozen=True)
class Affine:
    """The subscript ``coeff * index + offset`` (both integers)."""

    coeff: int
    offset: int

    def at(self, iteration: int) -> int:
        """Evaluate the subscript at a concrete iteration number."""
        return self.coeff * iteration + self.offset

    def __str__(self) -> str:  # pragma: no cover - diagnostics
        if self.coeff == 0:
            return str(self.offset)
        head = "I" if self.coeff == 1 else f"{self.coeff}*I"
        if self.offset == 0:
            return head
        sign = "+" if self.offset > 0 else "-"
        return f"{head} {sign} {abs(self.offset)}"


def affine_of(expr: Expr, index: str) -> Affine | None:
    """Extract ``a*index + b`` from ``expr``; ``None`` if not affine.

    Multiplication is affine only when one side is index-free; division is
    affine only for an exact integer division of an index-free value (a
    conservative rule — ``I/2`` is rejected because its distance behaviour
    is not constant).
    """
    if isinstance(expr, Const):
        if isinstance(expr.value, int):
            return Affine(0, expr.value)
        if float(expr.value).is_integer():
            return Affine(0, int(expr.value))
        return None
    if isinstance(expr, VarRef):
        return Affine(1, 0) if expr.name == index else None
    if isinstance(expr, ArrayRef):
        return None
    if isinstance(expr, UnaryOp):
        inner = affine_of(expr.operand, index)
        if inner is None:
            return None
        return Affine(-inner.coeff, -inner.offset)
    if isinstance(expr, BinOp):
        left = affine_of(expr.left, index)
        right = affine_of(expr.right, index)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return Affine(left.coeff + right.coeff, left.offset + right.offset)
        if expr.op == "-":
            return Affine(left.coeff - right.coeff, left.offset - right.offset)
        if expr.op == "*":
            if left.coeff == 0:
                return Affine(left.offset * right.coeff, left.offset * right.offset)
            if right.coeff == 0:
                return Affine(left.coeff * right.offset, left.offset * right.offset)
            return None
        if expr.op == "/":
            if right.coeff == 0 and right.offset != 0 and left.coeff == 0:
                if left.offset % right.offset == 0:
                    return Affine(0, left.offset // right.offset)
            return None
    return None


def normalize(ref: ArrayRef, index: str) -> Affine | None:
    """Affine form of an array reference's subscript (convenience)."""
    return affine_of(ref.subscript, index)
