"""Data dependence analysis for single-index loops.

This package implements the dependence machinery the paper's pipeline needs:

* :mod:`repro.deps.subscripts` — affine subscript extraction (``a*I + b``).
* :mod:`repro.deps.tests` — ZIV/SIV dependence tests with exact constant
  distances for the strong-SIV case and a GCD existence test otherwise.
* :mod:`repro.deps.analysis` — statement-level dependence graph over a loop
  body (flow/anti/output, loop-carried and loop-independent, array and
  scalar).
* :mod:`repro.deps.classify` — LFD/LBD classification of loop-carried
  dependences and DOALL/DOACROSS/SERIAL loop classification.
"""

from repro.deps.analysis import Dependence, DependenceGraph, DepKind, analyze_loop
from repro.deps.classify import (
    LoopClass,
    classify_dependence,
    classify_loop,
    count_lfd_lbd,
    is_lexically_backward,
)
from repro.deps.subscripts import Affine, affine_of, normalize
from repro.deps.tests import DependenceSolution, solve_siv

# Imported last: the taxonomy reaches into repro.transforms, which imports
# back into this package; by this point every name it needs is bound.
from repro.deps.taxonomy import DoacrossType, classify_doacross, taxonomy_table

__all__ = [
    "DoacrossType",
    "classify_doacross",
    "taxonomy_table",
    "Affine",
    "DepKind",
    "Dependence",
    "DependenceGraph",
    "DependenceSolution",
    "LoopClass",
    "affine_of",
    "analyze_loop",
    "classify_dependence",
    "classify_loop",
    "count_lfd_lbd",
    "is_lexically_backward",
    "normalize",
    "solve_siv",
]
