"""The stable evaluation-options facade: :class:`EvalOptions`.

PR 1 grew :func:`repro.pipeline.evaluate_corpus` and friends a new
keyword argument per subsystem (``apply_restructuring``, ``fuse``,
``cache``, ``exact_simulation``, ...) — a surface that every further
subsystem would widen.  :class:`EvalOptions` freezes that surface into
one immutable value object that travels through ``compile_loop`` →
``evaluate_loop`` → ``evaluate_corpus`` / ``evaluate_program`` →
:class:`~repro.perf.parallel.ParallelEvaluator` unchanged.

The old keyword arguments keep working but emit ``DeprecationWarning``
and are mapped onto an ``EvalOptions`` internally (see
``docs/api.md`` for the deprecation policy)::

    # deprecated (still works):
    evaluate_corpus(name, loops, machine, apply_restructuring=False)
    # stable:
    evaluate_corpus(name, loops, machine,
                    options=EvalOptions(apply_restructuring=False))
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import warnings
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from repro.codegen import FuseStore
from repro.robust.faults import FaultPlan
from repro.robust.harden import RobustPolicy
from repro.sched import Priority, SyncSchedulerOptions

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.obs.explain import DecisionJournal
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer
    from repro.perf.cache import CompileCache

__all__ = ["EvalOptions", "observation_scope"]


@dataclass(frozen=True)
class EvalOptions:
    """Every knob of the evaluation pipeline in one frozen value.

    Compile-time knobs
        ``apply_restructuring`` — run the induction/expansion/reduction
        restructuring passes; ``fuse`` — where the fused store lands.
    Schedule-time knobs
        ``list_priority`` — baseline list-scheduler priority;
        ``sync_options`` — the sync-aware scheduler's ablation switches;
        ``verify`` — re-check schedules against the DFG.
    Simulation knobs
        ``exact_simulation`` — force the full event walk instead of the
        analytic fast path; ``check_semantics`` — execute against real
        memory and compare with serial execution (slow; tests only).
    Execution strategy
        ``cache`` — a :class:`~repro.perf.cache.CompileCache` shared
        across sweep points; ``jobs`` — worker processes for corpus
        evaluation (1 = in-process); ``batch`` — route corpus evaluation
        through the vectorized batch engine
        (:class:`~repro.perf.batch.BatchEvaluator`): unique loops are
        compiled/scheduled once and every sweep cell is answered by flat
        closed-form array passes.  Results are byte-identical to the
        per-loop path; incompatible requests (fault plans, semantic
        checking, an active decision journal) fall back to per-loop
        evaluation with a recorded ``fallback_reason``.
    Robustness
        ``faults`` — a :class:`~repro.robust.faults.FaultPlan` of
        deliberate mis-synchronization injected into the simulators (a
        non-empty plan disqualifies the analytic fast path and is
        recorded as ``fallback_reason``); ``max_cycles`` — runaway
        backstop for the semantic executor (``None`` derives it via
        :func:`repro.sim.executor.default_max_cycles`); ``robust`` — a
        :class:`~repro.robust.harden.RobustPolicy` of degradation knobs
        for sweep evaluation (timeouts, retries, quarantine).
    Observability
        ``tracer`` — a :class:`~repro.obs.trace.Tracer` installed for the
        duration of the call; ``metrics`` — a
        :class:`~repro.obs.metrics.MetricsRegistry` collecting counters
        and histograms for the duration of the call; ``journal`` — a
        :class:`~repro.obs.explain.DecisionJournal` recording scheduler
        decision provenance and simulator stall chains for the duration
        of the call (``repro explain`` consumes it); ``ledger`` — path of
        the append-only run ledger (``repro runs``/``repro dash`` consume
        it; see :func:`repro.obs.ledger.record_run` — the pipeline does
        not write it implicitly); ``progress`` — render live progress
        heartbeats while a corpus/sweep evaluates (an in-place status
        line on a TTY, plain log lines otherwise).
    """

    apply_restructuring: bool = True
    fuse: FuseStore = FuseStore.BEFORE_SEND
    cache: "CompileCache | None" = None
    exact_simulation: bool = False
    jobs: int = 1
    batch: bool = False
    verify: bool = True
    check_semantics: bool = False
    list_priority: Priority = Priority.PROGRAM_ORDER
    sync_options: SyncSchedulerOptions | None = None
    faults: FaultPlan | None = None
    max_cycles: int | None = None
    robust: RobustPolicy | None = None
    min_pool_work: int | None = None
    tracer: "Tracer | None" = None
    metrics: "MetricsRegistry | None" = None
    journal: "DecisionJournal | None" = None
    ledger: str | None = None
    progress: bool = False

    #: Fields that attach collectors or execution strategy rather than
    #: select results; excluded from :meth:`stable_hash` and stripped
    #: before options cross a process boundary.
    COLLECTOR_FIELDS = (
        "cache",
        "jobs",
        "batch",
        "robust",
        "min_pool_work",
        "tracer",
        "metrics",
        "journal",
        "ledger",
        "progress",
    )

    #: Result-determining fields added after the bench-history baseline
    #: format froze.  At their defaults they are dropped from the
    #: :meth:`stable_hash` payload so historical ``options_hash`` values
    #: (e.g. ``benchmarks/baselines/bench_history.jsonl``) stay valid;
    #: any non-default value hashes differently, as it must.
    HASH_IF_SET_FIELDS = ("faults", "max_cycles")

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.max_cycles is not None and self.max_cycles < 1:
            raise ValueError("max_cycles must be >= 1 (or None for the default)")
        if self.min_pool_work is not None and self.min_pool_work < 0:
            raise ValueError("min_pool_work must be >= 0 (or None for the default)")

    def replace(self, **changes: Any) -> "EvalOptions":
        """A copy with ``changes`` applied (the dataclasses idiom)."""
        return dataclasses.replace(self, **changes)

    def as_kwargs(self) -> dict[str, Any]:
        """Field name → value, suitable for ``EvalOptions(**kwargs)``."""
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    def stable_hash(self) -> str:
        """A short stable digest of the *result-determining* fields.

        Collector and execution-strategy fields (``tracer``, ``metrics``,
        ``journal``, ``cache``, ``jobs``) never change results and are
        excluded, so a cached, parallel, or instrumented sweep hashes the
        same as a plain one.  Used to key bench-history records
        (:mod:`repro.obs.regress`).
        """
        payload: dict[str, Any] = {}
        for f in dataclasses.fields(self):
            if f.name in self.COLLECTOR_FIELDS:
                continue
            value = getattr(self, f.name)
            if f.name in self.HASH_IF_SET_FIELDS and value is None:
                continue
            if isinstance(value, enum.Enum):
                value = value.value
            elif dataclasses.is_dataclass(value) and not isinstance(value, type):
                value = {
                    k: (v.value if isinstance(v, enum.Enum) else v)
                    for k, v in dataclasses.asdict(value).items()
                }
            payload[f.name] = value
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        ).hexdigest()
        return digest[:12]

    # -- the deprecated-kwarg shim -------------------------------------------

    @classmethod
    def coerce(
        cls,
        options: "EvalOptions | None" = None,
        _stacklevel: int = 3,
        **legacy: Any,
    ) -> "EvalOptions":
        """Fold deprecated keyword arguments onto an ``EvalOptions``.

        ``legacy`` entries that are ``None`` mean "not passed".  Any
        entry actually passed emits a single ``DeprecationWarning`` and
        overrides the corresponding ``options`` field.
        """
        passed = {name: value for name, value in legacy.items() if value is not None}
        field_names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(passed) - field_names
        if unknown:
            raise TypeError(
                f"unknown evaluation option(s): {sorted(unknown)}; "
                f"valid fields are {sorted(field_names)}"
            )
        base = options if options is not None else cls()
        if not isinstance(base, cls):
            raise TypeError(
                f"options must be an EvalOptions, got {type(base).__name__}; "
                "legacy positional arguments are no longer accepted here"
            )
        if passed:
            warnings.warn(
                f"keyword argument(s) {sorted(passed)} are deprecated; pass "
                f"options=EvalOptions({', '.join(sorted(passed))}=...) instead "
                "(see docs/api.md)",
                DeprecationWarning,
                stacklevel=_stacklevel,
            )
            base = dataclasses.replace(base, **passed)
        return base


@contextmanager
def observation_scope(options: EvalOptions) -> Iterator[None]:
    """Install the options' tracer/metrics/journal for the duration of a
    call.

    Re-entrant: a tracer, registry or journal that is already active
    (e.g. an outer driver installed it before calling an inner one with
    the same options) is left alone.
    """
    from repro.obs.explain import active_journal, disable_journal, enable_journal
    from repro.obs.metrics import active_metrics, disable_metrics, enable_metrics
    from repro.obs.trace import active_tracers, add_tracer, remove_tracer

    with ExitStack() as stack:
        tracer = options.tracer
        if tracer is not None and tracer not in active_tracers():
            add_tracer(tracer)
            stack.callback(remove_tracer, tracer)
        registry = options.metrics
        if registry is not None and registry is not active_metrics():
            previous = active_metrics()
            enable_metrics(registry)

            def restore() -> None:
                disable_metrics()
                if previous is not None:
                    enable_metrics(previous)

            stack.callback(restore)
        journal = options.journal
        if journal is not None and journal is not active_journal():
            previous_journal = active_journal()
            enable_journal(journal)

            def restore_journal() -> None:
                disable_journal()
                if previous_journal is not None:
                    enable_journal(previous_journal)

            stack.callback(restore_journal)
        if options.progress:
            from repro.obs.trace import (
                active_progress_sinks,
                add_progress_sink,
                progress_sink_for,
                remove_progress_sink,
            )

            # An outer driver (e.g. the CLI's --progress flag) may have
            # installed a sink already; re-entrancy means leaving it alone.
            if not active_progress_sinks():
                sink = progress_sink_for()
                add_progress_sink(sink)

                def close_sink() -> None:
                    remove_progress_sink(sink)
                    sink.close()

                stack.callback(close_sink)
        yield
