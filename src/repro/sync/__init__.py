"""Synchronization operation insertion for DOACROSS loops.

Implements the paper's Section 1 scheme: for every loop-carried dependence
with constant distance ``d`` from source statement ``S`` to a sink ``S'``,
insert ``Send_Signal(S)`` immediately after ``S`` and
``Wait_Signal(S, I-d)`` immediately before ``S'``.  One send per source
statement serves all its dependences; waits are deduplicated per
``(sink, source, d)``.

:class:`repro.sync.pairs.SyncPair` ties each dependence to its wait/send
statements so the DFG builder can add the synchronization-condition arcs
and the simulator can route signals.
"""

from repro.sync.insertion import SyncedLoop, insert_synchronization
from repro.sync.pairs import SyncPair, eliminate_redundant_pairs

__all__ = [
    "SyncPair",
    "SyncedLoop",
    "eliminate_redundant_pairs",
    "insert_synchronization",
]
