"""Insertion of Send_Signal / Wait_Signal statements into a DOACROSS loop."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.deps import DependenceGraph, analyze_loop
from repro.deps.analysis import Dependence
from repro.ir.ast_nodes import (
    Assign,
    BinOp,
    Const,
    Loop,
    SendSignal,
    Stmt,
    VarRef,
    WaitSignal,
)
from repro.sync.pairs import SyncPair, eliminate_redundant_pairs


@dataclass
class SyncedLoop:
    """A loop with synchronization statements inserted, plus the pair map.

    ``loop.body`` interleaves the original assignments with
    :class:`WaitSignal`/:class:`SendSignal` statements.  ``pairs`` maps each
    enforced dependence group to its wait/send; ``waits``/``sends`` map a
    ``pair_id`` to the actual statement objects in the new body (one send
    may serve several pairs).
    """

    loop: Loop
    pairs: list[SyncPair] = field(default_factory=list)
    waits: dict[int, WaitSignal] = field(default_factory=dict)
    sends: dict[int, SendSignal] = field(default_factory=dict)

    def pair(self, pair_id: int) -> SyncPair:
        for p in self.pairs:
            if p.pair_id == pair_id:
                return p
        raise KeyError(pair_id)

    def wait_position(self, pair_id: int) -> int:
        return self.loop.stmt_position(self.waits[pair_id])

    def send_position(self, pair_id: int) -> int:
        return self.loop.stmt_position(self.sends[pair_id])

    def lbd_pairs(self) -> list[SyncPair]:
        return [p for p in self.pairs if p.is_lexically_backward]

    def lfd_pairs(self) -> list[SyncPair]:
        return [p for p in self.pairs if not p.is_lexically_backward]


def _ensure_labels(loop: Loop) -> Loop:
    """Give every assignment a unique label (``S1``, ``S2``, ... by position).

    Existing labels are kept; generated ones avoid collision with them.
    """
    taken = {s.label for s in loop.body if isinstance(s, Assign) and s.label}
    if len(taken) != len([s for s in loop.body if isinstance(s, Assign) and s.label]):
        raise ValueError("duplicate statement labels in loop body")
    body: list[Stmt] = []
    counter = 0
    for stmt in loop.body:
        if isinstance(stmt, Assign) and stmt.label is None:
            counter += 1
            while f"S{counter}" in taken:
                counter += 1
            label = f"S{counter}"
            taken.add(label)
            body.append(
                Assign(target=stmt.target, expr=stmt.expr, label=label, guard=stmt.guard)
            )
        else:
            body.append(stmt)
    return Loop(
        index=loop.index,
        lower=loop.lower,
        upper=loop.upper,
        body=body,
        step=loop.step,
        is_doacross=loop.is_doacross,
        name=loop.name,
    )


def _assert_unique_reference_objects(loop: Loop) -> None:
    """Guard the pipeline's object-identity invariant.

    Dependence events are anchored to the *object identity* of each array
    or scalar reference (``id(ref)``), both by the analyzer's bookkeeping
    and by the lowerer's ``ref_iids`` map that places the
    synchronization-condition arcs.  A transform that shares one node
    between two statements would silently mis-anchor those arcs — a
    stale-data hazard — so reject such bodies loudly here.
    """
    from repro.ir.ast_nodes import walk_expr

    seen: dict[int, int] = {}
    for pos, stmt in enumerate(loop.body):
        if not isinstance(stmt, Assign):
            continue
        roots: list = [stmt.expr, stmt.target, *stmt.guard_exprs()]
        for root in roots:
            for node in walk_expr(root):
                key = id(node)
                if key in seen:
                    raise ValueError(
                        f"expression node {node!r} appears twice (statements "
                        f"{seen[key]} and {pos}); transforms must emit fresh "
                        "nodes per occurrence (object identity anchors "
                        "synchronization arcs)"
                    )
                seen[key] = pos


def insert_synchronization(
    loop: Loop,
    graph: DependenceGraph | None = None,
    eliminate_redundant: bool = False,
) -> SyncedLoop:
    """Insert synchronization for every constant-distance carried dependence.

    Raises ``ValueError`` if the loop carries an irregular dependence (a
    SERIAL loop cannot be synchronized with constant-distance signals).

    The body must not already contain synchronization statements; to
    re-synchronize, start from the plain loop.
    """
    if any(isinstance(s, (WaitSignal, SendSignal)) for s in loop.body):
        raise ValueError("loop already contains synchronization statements")
    _assert_unique_reference_objects(loop)
    loop = _ensure_labels(loop)
    if graph is None or graph.loop is not loop:
        graph = analyze_loop(loop)
    carried = graph.loop_carried()
    if any(d.irregular for d in carried):
        raise ValueError("cannot synchronize irregular (non-constant-distance) dependences")

    # Group dependences into pairs keyed by (source stmt, sink stmt, distance).
    grouped: dict[tuple[int, int, int], list[Dependence]] = {}
    for dep in carried:
        assert dep.distance is not None and dep.distance > 0
        grouped.setdefault((dep.source, dep.sink, dep.distance), []).append(dep)

    def label_of(pos: int) -> str:
        stmt = loop.body[pos]
        assert isinstance(stmt, Assign) and stmt.label is not None
        return stmt.label

    pairs = [
        SyncPair(
            pair_id=i,
            source_label=label_of(src),
            source_pos=src,
            sink_pos=snk,
            distance=d,
            deps=deps,
        )
        for i, ((src, snk, d), deps) in enumerate(sorted(grouped.items()))
    ]
    if eliminate_redundant:
        pairs = eliminate_redundant_pairs(pairs)

    # Build the new body: waits immediately before their sink (larger
    # distances first, i.e. older iterations awaited first, as in Fig. 1),
    # one send immediately after each source statement.
    waits_at: dict[int, list[SyncPair]] = {}
    sends_at: dict[int, list[SyncPair]] = {}
    for pair in pairs:
        waits_at.setdefault(pair.sink_pos, []).append(pair)
        sends_at.setdefault(pair.source_pos, []).append(pair)

    synced = SyncedLoop(loop=loop)  # loop replaced below
    body: list[Stmt] = []
    for pos, stmt in enumerate(loop.body):
        for pair in sorted(waits_at.get(pos, ()), key=lambda p: -p.distance):
            wait = WaitSignal(
                source_label=pair.source_label,
                iteration=BinOp("-", VarRef(loop.index), Const(pair.distance)),
                pair_id=pair.pair_id,
            )
            synced.waits[pair.pair_id] = wait
            body.append(wait)
        body.append(stmt)
        pairs_here = sends_at.get(pos, ())
        if pairs_here:
            send = SendSignal(
                source_label=label_of(pos),
                pair_ids=tuple(sorted(p.pair_id for p in pairs_here)),
            )
            for pair in pairs_here:
                synced.sends[pair.pair_id] = send
            body.append(send)

    synced.loop = Loop(
        index=loop.index,
        lower=loop.lower,
        upper=loop.upper,
        body=body,
        step=loop.step,
        is_doacross=True,
        name=loop.name,
    )
    synced.pairs = pairs
    return synced
