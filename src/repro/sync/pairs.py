"""Synchronization pair bookkeeping and redundant-pair elimination."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.deps.analysis import Dependence


@dataclass
class SyncPair:
    """One synchronization requirement: a loop-carried dependence and the
    wait/send that enforce it.

    ``pair_id`` is the paper's "number attached in these triangles": waits
    and sends sharing an id belong together.  ``deps`` lists every
    dependence this pair enforces (several dependences between the same two
    statements with the same distance share one pair).
    """

    pair_id: int
    source_label: str
    source_pos: int  # position of the source statement in the *original* body
    sink_pos: int  # position of the sink statement in the original body
    distance: int
    deps: list[Dependence] = field(default_factory=list)

    @property
    def is_lexically_backward(self) -> bool:
        """LBD per the paper: source not textually before sink."""
        return self.source_pos >= self.sink_pos

    def __str__(self) -> str:  # pragma: no cover - diagnostics
        kind = "LBD" if self.is_lexically_backward else "LFD"
        return (
            f"pair {self.pair_id}: {self.source_label}@{self.source_pos} -> "
            f"S@{self.sink_pos} (d={self.distance}, {kind})"
        )


def eliminate_redundant_pairs(pairs: list[SyncPair]) -> list[SyncPair]:
    """Drop pairs whose ordering is transitively guaranteed by another pair.

    Conservative rule (a small slice of Midkiff & Padua's elimination): a
    pair ``(src, snk, d2)`` is redundant given ``(src, snk, d1)`` between
    the *same* statements when ``d1`` divides ``d2`` and the enforced chain
    runs through the wait (``d1 < d2``): iteration ``k`` waiting on
    ``k - d1`` transitively orders it after ``k - 2*d1``, ..., ``k - d2``,
    because each link of the chain executes its wait before its send
    (guaranteed when source is not before sink, i.e. the pair is LBD, and
    trivially satisfied by same-statement pairs).

    The paper performs no elimination; this is exposed for ablation
    studies and is off by default in :func:`~repro.sync.insertion.insert_synchronization`.
    """
    kept: list[SyncPair] = []
    for pair in pairs:
        covered = False
        for other in pairs:
            if other is pair:
                continue
            if (
                other.source_pos == pair.source_pos
                and other.sink_pos == pair.sink_pos
                and other.distance < pair.distance
                and pair.distance % other.distance == 0
                and other.is_lexically_backward
            ):
                covered = True
                break
        if not covered:
            kept.append(pair)
    return kept
