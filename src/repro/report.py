"""Machine-readable result export.

Downstream users (plotting scripts, CI dashboards) want the evaluation
results as data, not prose.  These helpers serialize the pipeline's result
objects to plain dicts / JSON: schedules with spans, per-loop evaluations,
and whole corpus sweeps in the shape of the paper's Table 2.
"""

from __future__ import annotations

import json
from typing import Any

from repro.pipeline import CorpusEvaluation, LoopEvaluation
from repro.sched.schedule import Schedule
from repro.sched.stats import schedule_stats


def schedule_record(schedule: Schedule) -> dict[str, Any]:
    """A schedule as data: bundles, spans, utilization."""
    stats = schedule_stats(schedule)
    return {
        "scheduler": schedule.scheduler_name,
        "machine": schedule.machine.name,
        "length": schedule.length,
        "bundles": schedule.bundles(),
        "spans": {
            pair.pair_id: schedule.span(pair.pair_id)
            for pair in schedule.lowered.synced.pairs
        },
        "runtime_lbd_pairs": schedule.runtime_lbd_pairs(),
        "ipc": round(stats.ipc, 3),
        "unit_utilization": {
            unit.name: round(unit.utilization, 3) for unit in stats.units
        },
    }


def evaluation_record(evaluation: LoopEvaluation) -> dict[str, Any]:
    """One loop's two-scheduler comparison as data."""
    return {
        "machine": evaluation.machine.name,
        "n": evaluation.n,
        "t_list": evaluation.t_list,
        "t_new": evaluation.t_new,
        "improvement_percent": round(evaluation.improvement, 2),
        "loop": evaluation.compiled.source.name,
        "pairs": len(evaluation.compiled.synced.pairs),
        "schedules": {
            "list": schedule_record(evaluation.schedule_list),
            "new": schedule_record(evaluation.schedule_new),
        },
    }


def corpus_record(corpus: CorpusEvaluation) -> dict[str, Any]:
    """A Table 2 cell pair with its per-loop breakdown."""
    return {
        "benchmark": corpus.name,
        "machine": corpus.machine.name,
        "t_list": corpus.t_list,
        "t_new": corpus.t_new,
        "improvement_percent": round(corpus.improvement, 2),
        "loops": [evaluation_record(e) for e in corpus.evaluations],
    }


def to_json(record: dict[str, Any] | list, indent: int = 2) -> str:
    """Serialize a record to JSON (stable key order for diffs)."""
    return json.dumps(record, indent=indent, sort_keys=True)
