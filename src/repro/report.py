"""Machine-readable result export.

Downstream users (plotting scripts, CI dashboards) want the evaluation
results as data, not prose.  These helpers serialize the pipeline's result
objects to plain dicts / JSON: schedules with spans, per-loop evaluations,
and whole corpus sweeps in the shape of the paper's Table 2.

Every record carries ``schema_version`` (currently
:data:`repro.schema.SCHEMA_VERSION`; the version history lives there and
the documented contract in ``docs/api.md``).  v3 adds the optional
``explain`` block on evaluation records — a
:class:`repro.obs.explain.DecisionJournal` snapshot with the decision
provenance and stall chains behind the numbers (pass ``journal=`` to
:func:`evaluation_record`, or use :func:`explain_record`).
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.explain import DecisionJournal
from repro.pipeline import CorpusEvaluation, LoopEvaluation
from repro.schema import SCHEMA_VERSION
from repro.sched.schedule import Schedule
from repro.sched.stats import schedule_stats
from repro.sim.multiproc import SimulationResult


def _sim_metrics(sim: SimulationResult | None) -> dict[str, Any] | None:
    """One scheduler's simulation metrics (``None`` pre-v2 / not kept)."""
    if sim is None:
        return None
    return {
        "dispatch": sim.dispatch,
        "total_stall_cycles": sim.total_stall,
        "stall_by_pair": {str(k): v for k, v in sorted(sim.stall_by_pair.items())},
        "fallback_reason": sim.fallback_reason,
    }


def schedule_record(schedule: Schedule) -> dict[str, Any]:
    """A schedule as data: bundles, spans, utilization."""
    stats = schedule_stats(schedule)
    return {
        "schema_version": SCHEMA_VERSION,
        "scheduler": schedule.scheduler_name,
        "machine": schedule.machine.name,
        "length": schedule.length,
        "bundles": schedule.bundles(),
        "spans": {
            pair.pair_id: schedule.span(pair.pair_id)
            for pair in schedule.lowered.synced.pairs
        },
        "runtime_lbd_pairs": schedule.runtime_lbd_pairs(),
        "ipc": round(stats.ipc, 3),
        "unit_utilization": {
            unit.name: round(unit.utilization, 3) for unit in stats.units
        },
    }


def explain_record(journal: DecisionJournal) -> dict[str, Any]:
    """A decision journal as data (the v3 ``explain`` block)."""
    return journal.as_dict()


def evaluation_record(
    evaluation: LoopEvaluation, journal: DecisionJournal | None = None
) -> dict[str, Any]:
    """One loop's two-scheduler comparison as data.

    When the evaluation ran with a :class:`DecisionJournal` installed,
    pass it as ``journal`` to embed its snapshot as the optional v3
    ``explain`` block; without one the record shape is exactly v2's.
    """
    record = {
        "schema_version": SCHEMA_VERSION,
        "machine": evaluation.machine.name,
        "n": evaluation.n,
        "t_list": evaluation.t_list,
        "t_new": evaluation.t_new,
        "improvement_percent": round(evaluation.improvement, 2),
        "loop": evaluation.compiled.source.name,
        "pairs": len(evaluation.compiled.synced.pairs),
        "schedules": {
            "list": schedule_record(evaluation.schedule_list),
            "new": schedule_record(evaluation.schedule_new),
        },
        "metrics": {
            "list": _sim_metrics(evaluation.sim_list),
            "new": _sim_metrics(evaluation.sim_new),
        },
    }
    if journal is not None:
        record["explain"] = explain_record(journal)
    return record


def corpus_record(corpus: CorpusEvaluation) -> dict[str, Any]:
    """A Table 2 cell pair with its per-loop breakdown."""
    loops = [evaluation_record(e) for e in corpus.evaluations]

    def total(role: str) -> int | None:
        per_loop = [loop["metrics"][role] for loop in loops]
        if any(m is None for m in per_loop):
            return None
        return sum(m["total_stall_cycles"] for m in per_loop)

    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": corpus.name,
        "machine": corpus.machine.name,
        "t_list": corpus.t_list,
        "t_new": corpus.t_new,
        "improvement_percent": round(corpus.improvement, 2),
        "fallback_reason": corpus.fallback_reason,
        "failures": [f.as_dict() for f in corpus.failures],
        "metrics": {
            "total_stall_cycles": {"list": total("list"), "new": total("new")},
        },
        "loops": loops,
    }


def to_json(record: dict[str, Any] | list, indent: int = 2) -> str:
    """Serialize a record to JSON (stable key order for diffs).

    Any top-level dict (or list element) missing ``schema_version`` is
    stamped with the current :data:`SCHEMA_VERSION` so hand-built records
    stay comparable with the emitted ones.
    """

    def stamp(value):
        if isinstance(value, dict) and "schema_version" not in value:
            return {"schema_version": SCHEMA_VERSION, **value}
        return value

    if isinstance(record, list):
        record = [stamp(item) for item in record]
    else:
        record = stamp(record)
    return json.dumps(record, indent=indent, sort_keys=True)
