"""Loop unrolling for DOACROSS synchronization amortization.

Unrolling by ``u`` merges ``u`` consecutive iterations into one: the body
is replicated with the index rewritten to ``u*(I-1) + j + L - 1`` for copy
``j`` (``L`` the original lower bound), and the trip count divides by
``u``.  For a DOACROSS loop this trades synchronization frequency for
iteration size:

* a carried dependence of distance ``d`` becomes distance ``ceil(d/u)``
  between unrolled iterations — copies less than ``d`` apart inside one
  unrolled iteration become *loop-independent* and need no signals at all;
* each remaining signal covers ``u`` elements, so the per-element
  synchronization stall drops roughly by ``u``;
* the longer body gives the instruction scheduler more independent work to
  hide the remaining stalls behind.

Only constant bounds with ``u`` dividing the trip count are supported (no
remainder loop — the experiments use n = 100 with u in {1, 2, 4, 5, 10}).
"""

from __future__ import annotations

from repro.ir.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Comparison,
    Const,
    Expr,
    Loop,
    SendSignal,
    Stmt,
    UnaryOp,
    VarRef,
    WaitSignal,
)


from repro.ir.ast_nodes import clone_expr as _clone


def _shift_index(expr: Expr, index: str, replacement: Expr) -> Expr:
    """Rewrite the loop index; ALWAYS returns fresh node objects.

    Freshness matters beyond hygiene: downstream passes identify each
    textual reference by object identity (``id``), so two unrolled copies
    of a statement must never share an expression node — a shared node
    would alias their dependence events and mis-anchor synchronization
    arcs (a stale-data bug the differential fuzzer caught).
    """
    if isinstance(expr, VarRef):
        if expr.name == index:
            return _clone(replacement)  # a fresh copy per occurrence
        return VarRef(expr.name)
    if isinstance(expr, Const):
        return Const(expr.value)
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _shift_index(expr.left, index, replacement),
            _shift_index(expr.right, index, replacement),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _shift_index(expr.operand, index, replacement))
    if isinstance(expr, ArrayRef):
        return ArrayRef(expr.name, _shift_index(expr.subscript, index, replacement))
    return expr


def unroll_loop(loop: Loop, factor: int) -> Loop:
    """Unroll ``loop`` by ``factor``; returns a new loop.

    Requires constant bounds, step 1, a factor dividing the trip count,
    and a body free of synchronization statements (unroll before
    synchronizing — the signals of the unrolled loop are different ones).
    """
    if factor < 1:
        raise ValueError("unroll factor must be >= 1")
    if factor == 1:
        return loop
    if loop.step != 1:
        raise ValueError("only unit-step loops can be unrolled")
    if any(isinstance(s, (WaitSignal, SendSignal)) for s in loop.body):
        raise ValueError("unroll before inserting synchronization statements")
    if not (isinstance(loop.lower, Const) and isinstance(loop.upper, Const)):
        raise ValueError("unrolling requires constant loop bounds")
    lower = int(loop.lower.value)
    upper = int(loop.upper.value)
    trip = upper - lower + 1
    if trip % factor != 0:
        raise ValueError(f"unroll factor {factor} does not divide trip count {trip}")

    new_body: list[Stmt] = []
    for j in range(factor):
        # original index for copy j of unrolled iteration I (new I from 1):
        #   u*(I-1) + j + lower
        offset = j + lower - factor
        replacement: Expr = BinOp("*", Const(factor), VarRef(loop.index))
        if offset != 0:
            op = "+" if offset > 0 else "-"
            replacement = BinOp(op, replacement, Const(abs(offset)))
        for stmt in loop.body:
            assert isinstance(stmt, Assign)
            guard = stmt.guard
            if guard is not None:
                guard = Comparison(
                    guard.op,
                    _shift_index(guard.left, loop.index, replacement),
                    _shift_index(guard.right, loop.index, replacement),
                )
            target = stmt.target
            if isinstance(target, ArrayRef):
                target = ArrayRef(
                    target.name, _shift_index(target.subscript, loop.index, replacement)
                )
            else:
                target = VarRef(target.name)  # fresh object per copy
            new_body.append(
                Assign(
                    target=target,
                    expr=_shift_index(stmt.expr, loop.index, replacement),
                    label=f"{stmt.label}u{j}" if stmt.label else None,
                    guard=guard,
                )
            )

    return Loop(
        index=loop.index,
        lower=Const(1),
        upper=Const(trip // factor),
        body=new_body,
        step=1,
        is_doacross=loop.is_doacross,
        name=f"{loop.name}-u{factor}" if loop.name else None,
    )
