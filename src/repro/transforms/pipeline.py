"""Restructuring driver: DO loop → DOACROSS candidate.

Mirrors the paper's statistical model (Fig. 5): take a loop Parafrase could
not make DOALL, apply induction-variable substitution, scalar expansion and
reduction replacement, then reclassify.  A loop that comes out DOACROSS
proceeds to synchronization insertion; DOALL needs no synchronization;
SERIAL is dropped from the study (as the paper's type-6 "others" mostly
were).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.deps import DependenceGraph, LoopClass, analyze_loop, classify_loop
from repro.ir.ast_nodes import Loop
from repro.transforms.induction import InductionInfo, substitute_induction
from repro.transforms.reduction import ReductionInfo, replace_reductions
from repro.transforms.scalar_expansion import expand_scalars


@dataclass
class RestructureResult:
    """Everything the rest of the pipeline needs about a restructured loop."""

    original: Loop
    loop: Loop
    classification: LoopClass
    graph: DependenceGraph
    expanded_scalars: list[str] = field(default_factory=list)
    reductions: list[ReductionInfo] = field(default_factory=list)
    inductions: list[InductionInfo] = field(default_factory=list)

    @property
    def is_doacross(self) -> bool:
        return self.classification is LoopClass.DOACROSS


def restructure(
    loop: Loop,
    induction_bases: dict[str, int] | None = None,
    apply_induction: bool = True,
    apply_expansion: bool = True,
    apply_reduction: bool = True,
) -> RestructureResult:
    """Apply the three transforms (each optional, for ablations) and classify.

    Order matters and matches practice: induction substitution first (it
    restores affine subscripts the other analyses need), then reduction
    replacement (before expansion, because an expanded accumulator would no
    longer match the ``s = s + e`` pattern), then scalar expansion for the
    remaining temporaries.
    """
    original = loop
    inductions: list[InductionInfo] = []
    reductions: list[ReductionInfo] = []
    expanded: list[str] = []

    if apply_induction:
        loop, inductions = substitute_induction(loop, bases=induction_bases)
    if apply_reduction:
        loop, reductions = replace_reductions(loop)
    if apply_expansion:
        loop, expanded = expand_scalars(loop)

    graph = analyze_loop(loop)
    classification = classify_loop(graph)
    if classification is LoopClass.DOACROSS:
        loop = Loop(
            index=loop.index,
            lower=loop.lower,
            upper=loop.upper,
            body=loop.body,
            step=loop.step,
            is_doacross=True,
            name=loop.name,
        )
        graph = analyze_loop(loop)

    return RestructureResult(
        original=original,
        loop=loop,
        classification=classification,
        graph=graph,
        expanded_scalars=expanded,
        reductions=reductions,
        inductions=inductions,
    )
