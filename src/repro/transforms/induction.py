"""Induction variable substitution.

An auxiliary induction variable — ``j = j + c`` with constant ``c``,
incremented exactly once per iteration — makes every subscript using ``j``
non-affine to the analyzer and carries a flow dependence that serializes the
loop.  Its value is nevertheless a closed form of the loop index::

    before the increment:  j0 + c * (I - L)
    after  the increment:  j0 + c * (I - L + 1)

where ``L`` is the loop lower bound and ``j0`` the value on loop entry.
Substituting the closed form and deleting the increment removes the carried
dependence and restores affine subscripts.

``j0`` is a loop-entry value our single-loop IR cannot see; callers supply
it via ``bases`` (default 0).  Distances between subscripts that share the
same induction variable do not depend on ``j0``, so the default preserves
all dependence behaviour; only absolute addresses shift.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Const,
    Expr,
    Loop,
    Stmt,
    UnaryOp,
    VarRef,
    walk_expr,
)


@dataclass(frozen=True)
class InductionInfo:
    """A recognized induction variable: ``name = name + step`` at ``stmt_pos``."""

    name: str
    step: int
    stmt_pos: int


def _match_increment(stmt: Assign) -> tuple[str, int] | None:
    """Match ``j = j + c`` / ``j = j - c`` / ``j = c + j`` (c an int const)."""
    if stmt.guard is not None:
        return None  # a conditional increment has no closed form
    if not isinstance(stmt.target, VarRef):
        return None
    j = stmt.target.name
    e = stmt.expr
    if not isinstance(e, BinOp) or e.op not in ("+", "-"):
        return None
    left_is_j = isinstance(e.left, VarRef) and e.left.name == j
    right_is_j = isinstance(e.right, VarRef) and e.right.name == j
    if left_is_j and isinstance(e.right, Const) and isinstance(e.right.value, int):
        c = e.right.value
        return j, (c if e.op == "+" else -c)
    if e.op == "+" and right_is_j and isinstance(e.left, Const) and isinstance(e.left.value, int):
        return j, e.left.value
    return None


def find_induction_variables(loop: Loop) -> list[InductionInfo]:
    """Recognize scalars incremented by a constant exactly once per iteration
    and written nowhere else in the body."""
    increments: dict[str, list[tuple[int, int]]] = {}
    other_writes: set[str] = set()
    for pos, stmt in enumerate(loop.body):
        if not isinstance(stmt, Assign):
            continue
        match = _match_increment(stmt)
        if match is not None:
            increments.setdefault(match[0], []).append((pos, match[1]))
        elif isinstance(stmt.target, VarRef):
            other_writes.add(stmt.target.name)
    infos = []
    for name, incs in sorted(increments.items()):
        if len(incs) == 1 and name not in other_writes and name != loop.index:
            pos, step = incs[0]
            infos.append(InductionInfo(name=name, step=step, stmt_pos=pos))
    return infos


def _closed_form(info: InductionInfo, loop: Loop, base: int, after: bool) -> Expr:
    """Build ``base + step*(I - L [+ 1])`` as an expression tree."""
    offset_expr: Expr = BinOp("-", VarRef(loop.index), loop.lower)
    if after:
        offset_expr = BinOp("+", offset_expr, Const(1))
    scaled: Expr = (
        offset_expr if info.step == 1 else BinOp("*", Const(info.step), offset_expr)
    )
    if base == 0:
        return scaled
    return BinOp("+", Const(base), scaled)


def _substitute(expr: Expr, name: str, replacement: Expr) -> Expr:
    if isinstance(expr, VarRef):
        if expr.name == name:
            from repro.ir.ast_nodes import clone_expr

            return clone_expr(replacement)  # fresh nodes per occurrence
        return expr
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _substitute(expr.left, name, replacement),
            _substitute(expr.right, name, replacement),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _substitute(expr.operand, name, replacement))
    if isinstance(expr, ArrayRef):
        return ArrayRef(expr.name, _substitute(expr.subscript, name, replacement))
    return expr


def substitute_induction(
    loop: Loop,
    infos: list[InductionInfo] | None = None,
    bases: dict[str, int] | None = None,
) -> tuple[Loop, list[InductionInfo]]:
    """Substitute closed forms for induction variables and drop the increments.

    Substitution requires a constant integer lower bound (so the closed form
    stays affine); loops with symbolic lower bounds are returned unchanged.
    """
    if not isinstance(loop.lower, Const):
        return loop, []
    if infos is None:
        infos = find_induction_variables(loop)
    if not infos:
        return loop, []
    bases = bases or {}

    increment_positions = {info.stmt_pos: info for info in infos}
    new_body: list[Stmt] = []
    for pos, stmt in enumerate(loop.body):
        if pos in increment_positions:
            continue  # the increment statement is deleted
        if not isinstance(stmt, Assign):
            new_body.append(stmt)
            continue
        expr = stmt.expr
        guard = stmt.guard
        target: VarRef | ArrayRef = stmt.target
        for info in infos:
            after = pos > info.stmt_pos
            replacement = _closed_form(info, loop, bases.get(info.name, 0), after)
            expr = _substitute(expr, info.name, replacement)
            if guard is not None:
                from repro.ir.ast_nodes import Comparison

                guard = Comparison(
                    guard.op,
                    _substitute(guard.left, info.name, replacement),
                    _substitute(guard.right, info.name, replacement),
                )
            if isinstance(target, ArrayRef):
                target = ArrayRef(
                    target.name, _substitute(target.subscript, info.name, replacement)
                )
        new_body.append(Assign(target=target, expr=expr, label=stmt.label, guard=guard))

    new_loop = Loop(
        index=loop.index,
        lower=loop.lower,
        upper=loop.upper,
        body=new_body,
        step=loop.step,
        is_doacross=loop.is_doacross,
        name=loop.name,
    )
    return new_loop, infos


def induction_free(loop: Loop) -> bool:
    """True when no recognized induction variable remains (fixed point)."""
    return not find_induction_variables(loop)
