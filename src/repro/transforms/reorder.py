"""Source-level statement reordering to convert LBDs into LFDs.

A lexically *backward* dependence exists only because the source statement
sits at or after its sink in the text.  When the loop-independent
dependences allow it, moving the source statement earlier makes the
dependence lexically forward — the synchronization-operation insertion then
naturally produces a send before its wait, which even plain list
scheduling can keep stall-free.  This is the source-level cousin of the
paper's scheduler-level conversion (and of the author's earlier
"synchronization migration" work, the paper's refs [15, 17]); the
benchmark harness uses it to separate how much of the win needs the
instruction scheduler at all.

The reordering must respect every loop-independent dependence (``d == 0``
edges fix a partial order within the iteration); loop-carried dependences
do not constrain the textual order.  Among valid orders we greedily pick
one minimizing the number of remaining LBDs: statements are emitted in
topological order of the ``d == 0`` dependence DAG, preferring (a)
statements that are carried-dependence sources wanted by already-known
sinks, then (b) original position (stability).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.deps import DependenceGraph, analyze_loop, count_lfd_lbd
from repro.ir.ast_nodes import Assign, Loop, SendSignal, Stmt, WaitSignal


@dataclass
class ReorderResult:
    original: Loop
    loop: Loop
    permutation: list[int]  # new body position -> original body position
    lbd_before: int = 0
    lbd_after: int = 0

    @property
    def converted(self) -> int:
        return self.lbd_before - self.lbd_after


def reorder_statements(loop: Loop, graph: DependenceGraph | None = None) -> ReorderResult:
    """Reorder ``loop``'s statements to minimize LBD count (greedy).

    The loop must not contain synchronization statements (reorder before
    inserting synchronization).  Returns a new loop; the original is
    untouched.
    """
    if any(isinstance(s, (WaitSignal, SendSignal)) for s in loop.body):
        raise ValueError("reorder before inserting synchronization statements")
    if graph is None or graph.loop is not loop:
        graph = analyze_loop(loop)

    n = len(loop.body)
    # d == 0 dependences constrain the within-iteration order.
    succ: dict[int, set[int]] = {i: set() for i in range(n)}
    indeg = {i: 0 for i in range(n)}
    for dep in graph.loop_independent():
        if dep.sink not in succ[dep.source]:
            succ[dep.source].add(dep.sink)
            indeg[dep.sink] += 1

    # Carried dependences we would like forward: source before sink.
    carried = [(d.source, d.sink) for d in graph.loop_carried() if d.source != d.sink]

    order: list[int] = []
    placed: set[int] = set()
    available = {i for i in range(n) if indeg[i] == 0}
    while available:
        # Prefer statements whose placement converts a backward dependence:
        # a carried source not yet placed whose sink is also not yet placed
        # wants to go first.
        def score(i: int) -> tuple:
            wants_first = sum(1 for src, snk in carried if src == i and snk not in placed)
            blocks = sum(1 for src, snk in carried if snk == i and src not in placed)
            return (-wants_first, blocks, i)

        best = min(available, key=score)
        available.discard(best)
        placed.add(best)
        order.append(best)
        for nxt in succ[best]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                available.add(nxt)

    assert len(order) == n, "loop-independent dependences formed a cycle"
    new_body: list[Stmt] = [loop.body[i] for i in order]
    new_loop = Loop(
        index=loop.index,
        lower=loop.lower,
        upper=loop.upper,
        body=new_body,
        step=loop.step,
        is_doacross=loop.is_doacross,
        name=loop.name,
    )
    before = count_lfd_lbd(graph).lbd
    after = count_lfd_lbd(analyze_loop(new_loop)).lbd
    return ReorderResult(
        original=loop,
        loop=new_loop,
        permutation=order,
        lbd_before=before,
        lbd_after=after,
    )
