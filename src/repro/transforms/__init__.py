"""Loop restructuring transforms.

The paper (following Chen & Yew's measurements of which transformations
actually matter) converts DO loops into DOACROSS form with three
transforms, implemented here:

* :mod:`repro.transforms.scalar_expansion` — expand iteration-local scalars
  into per-iteration array elements, removing carried anti/flow/output
  dependences on temporaries.
* :mod:`repro.transforms.reduction` — replace recognized reductions
  (``s = s ⊕ expr``) with per-iteration partial results combined after the
  loop, removing the carried flow dependence on the accumulator.
* :mod:`repro.transforms.induction` — substitute closed forms for
  ``j = j + c`` induction variables so subscripts become affine.

:mod:`repro.transforms.pipeline` runs all three to a fixed point and
reclassifies the loop.
"""

from repro.transforms.induction import InductionInfo, find_induction_variables, substitute_induction
from repro.transforms.pipeline import RestructureResult, restructure
from repro.transforms.reduction import ReductionInfo, find_reductions, replace_reductions
from repro.transforms.reorder import ReorderResult, reorder_statements
from repro.transforms.scalar_expansion import expandable_scalars, expand_scalars
from repro.transforms.unroll import unroll_loop

__all__ = [
    "InductionInfo",
    "ReductionInfo",
    "ReorderResult",
    "RestructureResult",
    "expand_scalars",
    "expandable_scalars",
    "find_induction_variables",
    "find_reductions",
    "reorder_statements",
    "replace_reductions",
    "restructure",
    "substitute_induction",
    "unroll_loop",
]
