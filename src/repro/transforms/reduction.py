"""Reduction replacement.

A statement of the form ``s = s ⊕ expr`` (⊕ ∈ {+, *}, or ``s = s - expr``)
whose accumulator ``s`` appears nowhere else in the loop is a reduction.
The carried flow dependence on ``s`` serializes the loop, but because ⊕ is
associative the partial results can be computed independently per iteration
and combined after the loop.

The transform rewrites the statement to ``s_red(I) = expr`` and records a
:class:`ReductionInfo` so a runtime (or our simulator's semantic checker)
knows to fold ``s = s0 ⊕ s_red(1) ⊕ ... ⊕ s_red(n)`` afterwards.
Subtraction folds as a sum of negated terms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.ast_nodes import ArrayRef, Assign, BinOp, Expr, Loop, Stmt, VarRef, walk_expr

REDUCTION_SUFFIX = "_red"


@dataclass(frozen=True)
class ReductionInfo:
    """One recognized reduction.

    ``accumulator`` is the scalar, ``op`` the combining operator (``+`` or
    ``*``; ``-`` is recorded as ``+`` over negated partials), ``stmt_pos``
    the body position, ``partial_array`` the array holding per-iteration
    partial results after the rewrite.
    """

    accumulator: str
    op: str
    stmt_pos: int
    partial_array: str
    negate_partials: bool = False


def _match_reduction(stmt: Assign) -> tuple[str, str, Expr] | None:
    """Match ``s = s op expr`` / ``s = expr + s``; return (s, op, expr)."""
    if stmt.guard is not None:
        return None  # a conditional accumulation is not a plain reduction
    if not isinstance(stmt.target, VarRef):
        return None
    s = stmt.target.name
    e = stmt.expr
    if not isinstance(e, BinOp) or e.op not in ("+", "*", "-"):
        return None
    if isinstance(e.left, VarRef) and e.left.name == s:
        rest = e.right
    elif e.op in ("+", "*") and isinstance(e.right, VarRef) and e.right.name == s:
        rest = e.left
    else:
        return None
    # The accumulator may not appear in the remaining expression.
    if any(isinstance(n, VarRef) and n.name == s for n in walk_expr(rest)):
        return None
    return s, e.op, rest


def find_reductions(loop: Loop) -> list[ReductionInfo]:
    """Recognize reductions whose accumulator is used nowhere else."""
    # Count accumulator uses outside the candidate statement.
    uses: dict[str, int] = {}
    candidates: list[tuple[int, str, str]] = []
    for pos, stmt in enumerate(loop.body):
        if not isinstance(stmt, Assign):
            continue
        match = _match_reduction(stmt)
        exprs: list[Expr] = [stmt.expr, *stmt.guard_exprs()]
        if isinstance(stmt.target, ArrayRef):
            exprs.append(stmt.target.subscript)
        for root in exprs:
            for node in walk_expr(root):
                if isinstance(node, VarRef):
                    uses[node.name] = uses.get(node.name, 0) + 1
        if isinstance(stmt.target, VarRef):
            uses[stmt.target.name] = uses.get(stmt.target.name, 0) + 1
        if match is not None:
            candidates.append((pos, match[0], match[1]))

    infos: list[ReductionInfo] = []
    seen_acc: set[str] = set()
    for pos, acc, op in candidates:
        # s = s op expr accounts for exactly 2 uses (target + one operand);
        # any extra use disqualifies the reduction.
        if uses.get(acc, 0) != 2 or acc in seen_acc:
            continue
        seen_acc.add(acc)
        infos.append(
            ReductionInfo(
                accumulator=acc,
                op="+" if op == "-" else op,
                stmt_pos=pos,
                partial_array=acc + REDUCTION_SUFFIX,
                negate_partials=(op == "-"),
            )
        )
    return infos


def replace_reductions(
    loop: Loop, infos: list[ReductionInfo] | None = None
) -> tuple[Loop, list[ReductionInfo]]:
    """Rewrite recognized reductions to partial-result array stores."""
    if infos is None:
        infos = find_reductions(loop)
    if not infos:
        return loop, []
    by_pos = {info.stmt_pos: info for info in infos}
    new_body: list[Stmt] = []
    for pos, stmt in enumerate(loop.body):
        info = by_pos.get(pos)
        if info is None or not isinstance(stmt, Assign):
            new_body.append(stmt)
            continue
        match = _match_reduction(stmt)
        assert match is not None, "find_reductions produced a non-reduction position"
        _, _, rest = match
        new_body.append(
            Assign(
                target=ArrayRef(info.partial_array, VarRef(loop.index)),
                expr=rest,
                label=stmt.label,
            )
        )
    new_loop = Loop(
        index=loop.index,
        lower=loop.lower,
        upper=loop.upper,
        body=new_body,
        step=loop.step,
        is_doacross=loop.is_doacross,
        name=loop.name,
    )
    return new_loop, infos
