"""Scalar expansion.

A scalar temporary ``T`` that is (re)defined in every iteration creates
spurious loop-carried anti and output dependences (iteration ``k+1``'s write
collides with iteration ``k``'s accesses to the single location ``T``).
Expanding ``T`` into a per-iteration array element ``T_exp(I)`` privatizes
it and removes those carried dependences.

Expansion is legal for a scalar whose every read inside the loop is
*covered* — preceded by a write in the same iteration — so no value flows
between iterations through it.  (An uncovered read means the scalar carries
a genuine recurrence; that is reduction/induction territory, not
expansion.)  The loop index is never expanded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Expr,
    Loop,
    Stmt,
    UnaryOp,
    VarRef,
)

EXPANSION_SUFFIX = "_exp"


@dataclass(frozen=True)
class _Usage:
    writes: tuple[int, ...]  # body positions writing the scalar
    reads: tuple[int, ...]  # body positions reading it
    covered: bool  # every read preceded by a same-iteration write


def _scalar_usage(loop: Loop) -> dict[str, _Usage]:
    writes: dict[str, list[int]] = {}
    reads: dict[str, list[int]] = {}
    uncovered: set[str] = set()
    written_so_far: set[str] = set()

    def note_reads(expr: Expr, pos: int) -> None:
        from repro.ir.ast_nodes import walk_expr

        for node in walk_expr(expr):
            if isinstance(node, VarRef) and node.name != loop.index:
                reads.setdefault(node.name, []).append(pos)
                if node.name not in written_so_far:
                    uncovered.add(node.name)

    for pos, stmt in enumerate(loop.body):
        if not isinstance(stmt, Assign):
            continue
        note_reads(stmt.expr, pos)
        for guard_expr in stmt.guard_exprs():
            note_reads(guard_expr, pos)
        if isinstance(stmt.target, ArrayRef):
            note_reads(stmt.target.subscript, pos)
        else:
            writes.setdefault(stmt.target.name, []).append(pos)
            # A guarded write may not execute, so it covers nothing: later
            # reads may still see the previous iteration's value.
            if stmt.guard is None:
                written_so_far.add(stmt.target.name)
            else:
                uncovered.add(stmt.target.name)

    usage: dict[str, _Usage] = {}
    for name in set(writes) | set(reads):
        usage[name] = _Usage(
            writes=tuple(writes.get(name, ())),
            reads=tuple(reads.get(name, ())),
            covered=name not in uncovered,
        )
    return usage


def expandable_scalars(loop: Loop) -> list[str]:
    """Scalars legal to expand: written in the loop, every read covered."""
    return sorted(
        name
        for name, u in _scalar_usage(loop).items()
        if u.writes and u.covered
    )


def _rewrite_expr(expr: Expr, names: frozenset[str], index: str) -> Expr:
    """Replace reads of expanded scalars with ``name_exp(index)``."""
    if isinstance(expr, VarRef):
        if expr.name in names:
            return ArrayRef(expr.name + EXPANSION_SUFFIX, VarRef(index))
        return expr
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _rewrite_expr(expr.left, names, index),
            _rewrite_expr(expr.right, names, index),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _rewrite_expr(expr.operand, names, index))
    if isinstance(expr, ArrayRef):
        return ArrayRef(expr.name, _rewrite_expr(expr.subscript, names, index))
    return expr


def expand_scalars(loop: Loop, names: list[str] | None = None) -> tuple[Loop, list[str]]:
    """Expand ``names`` (default: every expandable scalar) in ``loop``.

    Returns the rewritten loop and the list of scalars actually expanded.
    The rewrite is non-destructive: a new loop object with a new body is
    returned (expression trees are rebuilt where they change).
    """
    candidates = expandable_scalars(loop)
    if names is None:
        chosen = candidates
    else:
        illegal = sorted(set(names) - set(candidates))
        if illegal:
            raise ValueError(f"scalars not legal to expand: {illegal}")
        chosen = sorted(names)
    if not chosen:
        return loop, []

    chosen_set = frozenset(chosen)
    new_body: list[Stmt] = []
    for stmt in loop.body:
        if not isinstance(stmt, Assign):
            new_body.append(stmt)
            continue
        new_expr = _rewrite_expr(stmt.expr, chosen_set, loop.index)
        new_guard = stmt.guard
        if new_guard is not None:
            from repro.ir.ast_nodes import Comparison

            new_guard = Comparison(
                new_guard.op,
                _rewrite_expr(new_guard.left, chosen_set, loop.index),
                _rewrite_expr(new_guard.right, chosen_set, loop.index),
            )
        target = stmt.target
        if isinstance(target, VarRef) and target.name in chosen_set:
            new_target: VarRef | ArrayRef = ArrayRef(
                target.name + EXPANSION_SUFFIX, VarRef(loop.index)
            )
        elif isinstance(target, ArrayRef):
            new_target = ArrayRef(
                target.name, _rewrite_expr(target.subscript, chosen_set, loop.index)
            )
        else:
            new_target = target
        new_body.append(
            Assign(target=new_target, expr=new_expr, label=stmt.label, guard=new_guard)
        )

    new_loop = Loop(
        index=loop.index,
        lower=loop.lower,
        upper=loop.upper,
        body=new_body,
        step=loop.step,
        is_doacross=loop.is_doacross,
        name=loop.name,
    )
    return new_loop, list(chosen)
