"""Command-line interface: ``python -m repro <command>`` (or the ``repro``
console script).

Since the service split (PR 7) this module is a thin argparse client of
:mod:`repro.service.ops`: every subcommand is an entry in
:data:`repro.service.ops.OP_REGISTRY`, which contributes its subparser,
its ``--help`` epilogue row, and its implementation (a typed op
returning an :class:`~repro.service.ops.OpResult`).  The HTTP service
(``repro serve``, :mod:`repro.service.server`) is a second client of the
same registry, so the two surfaces cannot drift on supported
operations.  Subcommand output is byte-identical to the pre-split
driver — enforced by ``tests/integration/test_cli_parity.py``.

Global flags work with every command: ``--profile`` times the pipeline
stages and prints a table to stderr; ``--trace-out FILE`` records
hierarchical spans and writes a Chrome trace-event file (load it at
``chrome://tracing`` or https://ui.perfetto.dev); ``--journal-out FILE``
writes the same spans plus a metrics snapshot as JSON lines.  See
``docs/observability.md`` and ``docs/service.md``.

The pre-split helpers (``cmd_compile`` … ``cmd_dash``, ``SCHEDULERS``,
``_read_source``, ``_sweep_results``, …) are importable here as
deprecation shims; new code should import from
:mod:`repro.service.ops`.
"""

from __future__ import annotations

import argparse
import sys
import warnings

from repro.service import ops as _ops
from repro.service.ops import OP_REGISTRY, OpResult, op_epilog


def build_parser() -> argparse.ArgumentParser:
    from repro.obs.ledger import DEFAULT_LEDGER

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hwang (IPPS 1997) instruction-scheduling reproduction toolkit",
        epilog=op_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="time the pipeline stages and print a report to stderr",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="record pipeline spans and write a Chrome trace-event file",
    )
    parser.add_argument(
        "--journal-out",
        metavar="FILE",
        default=None,
        help="record pipeline spans/metrics and write a JSON-lines journal",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _ledger_flag(p) -> None:
        """Arm the run ledger for this subcommand (``repro sweep --ledger
        ...``; argparse global flags would have to precede the
        subcommand, so the flag lives on each subparser instead)."""
        p.add_argument(
            "--ledger",
            metavar="FILE",
            nargs="?",
            default=None,
            const=DEFAULT_LEDGER,
            help="append a run record to this JSONL ledger "
            f"(bare --ledger means {DEFAULT_LEDGER}; see `repro runs` / "
            "`repro dash`; default: off)",
        )

    for spec in OP_REGISTRY.values():
        spec.configure(sub, _ledger_flag)
    return parser


def _emit(result: OpResult) -> None:
    """Write an op's captured streams to the real stdout/stderr."""
    if result.stdout:
        sys.stdout.write(result.stdout)
    if result.stderr:
        sys.stderr.write(result.stderr)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    raw_argv = list(argv) if argv is not None else sys.argv[1:]
    profiler = None
    if args.profile:
        from repro.perf import enable_profiling

        profiler = enable_profiling()
    recorder = None
    journal_registry = None
    progress_sink = None
    if args.trace_out or args.journal_out:
        from repro.obs import RecordingTracer, add_tracer

        recorder = RecordingTracer()
        add_tracer(recorder)
        if args.journal_out and args.command != "metrics":
            from repro.obs import enable_metrics

            journal_registry = enable_metrics()
        if args.journal_out:
            from repro.obs import RecordingProgressSink, add_progress_sink

            progress_sink = RecordingProgressSink()
            add_progress_sink(progress_sink)
    # --ledger on a workload subcommand arms the run recorder.  The query
    # ops (spec.records=False: `runs`, `dash`, `serve`, `loadtest`) take
    # --ledger as the store to READ/serve and never record themselves.
    run_recorder = None
    if getattr(args, "ledger", None) and args.spec.records:
        from repro.obs.ledger import RunRecorder, _set_recorder

        command = args.command
        if getattr(args, "bench_command", None):
            command = f"{args.command} {args.bench_command}"
        run_recorder = RunRecorder(command, args.ledger, argv=raw_argv)
        _set_recorder(run_recorder)
    exit_code: int | None = None
    try:
        result = args.spec.run(args)
        _emit(result)
        exit_code = result.exit_code
        return exit_code
    except BrokenPipeError:
        # stdout consumer (e.g. `head`) went away; not an error
        try:
            sys.stdout.close()
        except OSError:
            pass
        exit_code = 0
        return 0
    except BaseException as err:
        if run_recorder is not None:
            run_recorder.finish("error", f"{type(err).__name__}: {err}")
        raise
    finally:
        if recorder is not None:
            from repro.obs import remove_tracer

            remove_tracer(recorder)
            if journal_registry is not None:
                from repro.obs import disable_metrics

                disable_metrics()
            if progress_sink is not None:
                from repro.obs import remove_progress_sink

                remove_progress_sink(progress_sink)
            if args.trace_out:
                from repro.obs import write_chrome_trace

                write_chrome_trace(args.trace_out, recorder.events)
                print(f"wrote {len(recorder.events)} spans to {args.trace_out}", file=sys.stderr)
            if args.journal_out:
                from repro.obs import write_journal

                write_journal(
                    args.journal_out,
                    recorder.events,
                    journal_registry,
                    progress=progress_sink.events if progress_sink else None,
                )
                print(f"wrote journal to {args.journal_out}", file=sys.stderr)
        if run_recorder is not None:
            from repro.obs.ledger import _set_recorder

            if args.trace_out:
                run_recorder.add_artifact(args.trace_out)
            if args.journal_out:
                run_recorder.add_artifact(args.journal_out)
            outcome = "ok" if exit_code in (0, None) else f"exit {exit_code}"
            run_recorder.finish(outcome)
            _set_recorder(None)
        if profiler is not None:
            from repro.perf import disable_profiling

            disable_profiling()
            print(f"\n== pipeline stage profile ==\n{profiler.format()}", file=sys.stderr)


# -- deprecation shims for the pre-split module surface ------------------------


def _shim(result_fn):
    """Wrap an OpResult-returning callable as a legacy ``(args) -> int``."""

    def legacy(args: argparse.Namespace) -> int:
        result = result_fn(args)
        _emit(result)
        return result.exit_code

    return legacy


def _legacy_sweep_results(*args, **kwargs):
    results, cases, notes = _ops.sweep_results(*args, **kwargs)
    for note in notes:
        print(note, file=sys.stderr)
    return results, cases


#: moved name -> factory returning its replacement (evaluated lazily so
#: the shim table itself costs nothing at import time).
_LEGACY_SHIMS = {
    "SCHEDULERS": lambda: _ops.SCHEDULERS,
    "_read_source": lambda: _ops.read_source,
    "_machine": lambda: (lambda a: _ops.paper_machine(a.issue, a.fu)),
    "_sweep_results": lambda: _legacy_sweep_results,
    "cmd_compile": lambda: _shim(OP_REGISTRY["compile"].run),
    "cmd_schedule": lambda: _shim(OP_REGISTRY["schedule"].run),
    "cmd_modulo": lambda: _shim(OP_REGISTRY["modulo"].run),
    "cmd_simulate": lambda: _shim(OP_REGISTRY["simulate"].run),
    "cmd_fuzz": lambda: _shim(OP_REGISTRY["fuzz"].run),
    "cmd_sweep": lambda: _shim(OP_REGISTRY["sweep"].run),
    "cmd_metrics": lambda: _shim(OP_REGISTRY["metrics"].run),
    "cmd_explain": lambda: _shim(OP_REGISTRY["explain"].run),
    "cmd_dot": lambda: _shim(OP_REGISTRY["dot"].run),
    "cmd_dash": lambda: _shim(OP_REGISTRY["dash"].run),
    "cmd_bench_record": lambda: _shim(
        lambda a: _ops.bench_record_op(a.history, suite=a.suite, n=a.n)
    ),
    "cmd_bench_list": lambda: _shim(lambda a: _ops.bench_list_op(a.history)),
    "cmd_bench_diff": lambda: _shim(
        lambda a: _ops.bench_diff_op(a.history, a.run_a, a.run_b)
    ),
    "cmd_bench_check": lambda: _shim(
        lambda a: _ops.bench_check_op(
            a.history, suite=a.suite, baseline=a.baseline,
            wall_tolerance=a.wall_tolerance,
        )
    ),
    "cmd_runs_list": lambda: _shim(lambda a: _ops.runs_list_op(a.ledger)),
    "cmd_runs_show": lambda: _shim(
        lambda a: _ops.runs_show_op(a.ledger, a.run_id)
    ),
    "cmd_runs_diff": lambda: _shim(
        lambda a: _ops.runs_diff_op(
            a.ledger, a.run_a, a.run_b, all_metrics=a.all_metrics
        )
    ),
}


def __getattr__(name: str):
    if name in _LEGACY_SHIMS:
        warnings.warn(
            f"repro.cli.{name} moved to repro.service.ops in the service "
            "split (schema v7); import from repro.service.ops instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return _LEGACY_SHIMS[name]()
    raise AttributeError(f"module 'repro.cli' has no attribute {name!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
