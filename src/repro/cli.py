"""Command-line interface: ``python -m repro <command>`` (or the ``repro``
console script).

Commands
--------

``compile``   parse + analyze + synchronize + lower a loop; print the
              artifacts (Fig. 1b / Fig. 2 style).
``schedule``  run one or all schedulers on a machine; print bundle tables,
              spans, utilization, optional Gantt/pressure views and the
              simulated parallel time.
``modulo``    software-pipeline the loop (extension): kernel, II, times.
``simulate``  simulate one scheduled loop, optionally under an injected
              fault plan (``--inject drop:pair=0,iter=3`` and friends —
              see :mod:`repro.robust.faults`); a diagnosed deadlock
              prints the wait-for analysis over the sync timeline and
              exits 2.
``fuzz``      the seeded differential fuzz harness
              (:mod:`repro.robust.fuzz`): random loops × random fault
              plans, fast path vs event walk vs semantic executor.
``sweep``     regenerate Tables 2/3 over the Perfect corpora, optionally
              cached (default), process-parallel (``--jobs``), with the
              analytic fast path disabled (``--exact-sim``), or with the
              compile cache persisted across runs (``--cache-file``).
``metrics``   run the Perfect sweep with the metrics registry enabled and
              print the collected counters/histograms (``--json`` for
              machine-readable output).
``explain``   schedule with a decision journal installed and answer "why
              is op X at cycle c" / "why is the Wait→Send span of pair S
              equal to k" (``--op`` / ``--pair``), with optional ASCII
              timelines (``--timeline``) and a self-contained HTML export
              (``--html FILE``).  See :mod:`repro.obs.explain`.
``bench``     the benchmark-regression tracker (:mod:`repro.obs.regress`):
              ``bench record`` appends a run to the JSONL history,
              ``bench list`` shows it, ``bench diff A B`` compares two
              runs, and ``bench check`` re-runs the suites and fails on
              any cycle-count drift against the recorded baseline (CI's
              regression gate).
``dot``       emit the DFG as Graphviz DOT.

Each command reads the loop from a file argument or stdin (``-``).  Global
flags work with every command: ``--profile`` times the pipeline stages and
prints a table to stderr; ``--trace-out FILE`` records hierarchical spans
and writes a Chrome trace-event file (load it at ``chrome://tracing`` or
https://ui.perfetto.dev); ``--journal-out FILE`` writes the same spans
plus a metrics snapshot as JSON lines.  See ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.codegen import format_listing
from repro.dfg import find_sync_paths, partition, to_dot
from repro.ir import format_loop
from repro.pipeline import compile_loop
from repro.sched import (
    Schedule,
    assert_valid,
    list_schedule,
    marker_schedule,
    paper_machine,
    schedule_stats,
    sync_schedule,
)
from repro.sim import simulate_doacross
from repro.sim.metrics import improvement_percent
from repro.workloads import PERFECT_BENCHMARKS, perfect_suite

SCHEDULERS = {
    "list": list_schedule,
    "marker": marker_schedule,
    "sync": sync_schedule,
}


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _machine(args: argparse.Namespace):
    return paper_machine(args.issue, args.fu)


def cmd_compile(args: argparse.Namespace) -> int:
    compiled = compile_loop(_read_source(args.loop))
    print("== synchronized loop ==")
    print(format_loop(compiled.synced.loop))
    print("\n== three-address code ==")
    print(format_listing(compiled.lowered))
    print("\n== synchronization pairs ==")
    for pair in compiled.synced.pairs:
        print(f"  {pair}")
    components = partition(compiled.graph, compiled.lowered)
    print("\n== DFG partition ==")
    for component in components:
        print(f"  {component.kind.value:7s}: {sorted(component.nodes)}")
    for path in find_sync_paths(compiled.graph, compiled.lowered, components):
        print(f"  SP(pair {path.pair_id}) = {list(path.nodes)}")
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    compiled = compile_loop(_read_source(args.loop))
    machine = _machine(args)
    names = list(SCHEDULERS) if args.scheduler == "all" else [args.scheduler]
    results: list[tuple[str, Schedule, int]] = []
    from repro.perf import profiled

    for name in names:
        with profiled("schedule"):
            schedule = SCHEDULERS[name](compiled.lowered, compiled.graph, machine)
        with profiled("verify"):
            assert_valid(schedule, compiled.graph)
        with profiled("simulate"):
            sim = simulate_doacross(schedule, args.n)
        results.append((name, schedule, sim.parallel_time))
        print(f"== {name} scheduling on {machine.name} ==")
        print(schedule.format())
        spans = {p.pair_id: schedule.span(p.pair_id) for p in compiled.synced.pairs}
        print(f"length = {schedule.length}  spans = {spans}")
        print(schedule_stats(schedule).format())
        if args.gantt:
            from repro.sched.gantt import gantt

            print(gantt(schedule))
        if args.pressure:
            from repro.sched import register_pressure

            profile = register_pressure(schedule)
            print(
                f"register pressure: peak {profile.max_pressure} at cycle "
                f"{profile.cycle_of_peak()} ({profile.temporaries} temporaries)"
            )
        print(f"parallel time (n={args.n}) = {sim.parallel_time}\n")
    if len(results) > 1:
        base = results[0][2]
        for name, _, t in results[1:]:
            print(
                f"{name} vs {results[0][0]}: {improvement_percent(base, t):+.1f}% improvement"
            )
    return 0


def cmd_modulo(args: argparse.Namespace) -> int:
    from repro.ir.parser import parse_loop
    from repro.sched.modulo import modulo_schedule, verify_modulo

    loop = parse_loop(_read_source(args.loop))
    machine = _machine(args)
    kernel = modulo_schedule(loop, machine)
    violations = verify_modulo(kernel)
    print(
        f"II = {kernel.ii} (ResMII {kernel.mii_resource}, RecMII "
        f"{kernel.mii_recurrence}), makespan {kernel.makespan}"
    )
    for iid, cycle in sorted(kernel.cycle_of.items(), key=lambda kv: (kv[1], kv[0])):
        instr = kernel.lowered.instruction(iid)
        print(f"  cycle {cycle:>3} (slot {cycle % kernel.ii}): {iid:>3}: {instr}")
    print(f"pipelined time (1 processor, n={args.n}) = {kernel.parallel_time(args.n)}")
    if violations:
        print("VIOLATIONS:", *violations, sep="\n  ")
        return 1
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.robust import DeadlockError, FaultPlan
    from repro.sim import MemoryImage, execute_parallel

    compiled = compile_loop(_read_source(args.loop))
    machine = _machine(args)
    schedule = SCHEDULERS[args.scheduler](compiled.lowered, compiled.graph, machine)
    assert_valid(schedule, compiled.graph)
    try:
        plan = FaultPlan.parse(args.inject) if args.inject else None
    except ValueError as err:
        print(f"bad --inject spec: {err}", file=sys.stderr)
        return 1
    if plan:
        print(f"fault plan: {plan.describe()}")
    from repro.obs.ledger import active_recorder

    run_recorder = active_recorder()
    try:
        sim = simulate_doacross(
            schedule, args.n, exact_simulation=args.exact_sim, faults=plan
        )
    except DeadlockError as err:
        if run_recorder is not None:
            run_recorder.note_error("deadlock", f"DeadlockError: {err}")
            from repro.sched.gantt import sync_timeline

            run_recorder.add_timeline("sync", sync_timeline(schedule))
        print(err.render(schedule))
        return 2
    if run_recorder is not None:
        from repro.sched.gantt import sync_timeline

        run_recorder.add_timeline("sync", sync_timeline(schedule))
    print(f"== {args.scheduler} scheduling on {machine.name} ==")
    print(f"schedule length = {schedule.length}, dispatch = {sim.dispatch}")
    if sim.fallback_reason:
        print(f"fast path declined: {sim.fallback_reason}")
    print(f"parallel time (n={args.n}) = {sim.parallel_time}")
    if sim.stall_by_pair:
        for pair_id, stall in sorted(sim.stall_by_pair.items()):
            print(f"  pair {pair_id}: total stall {stall} cycle(s)")
    if args.executor:
        try:
            result = execute_parallel(
                schedule,
                MemoryImage(),
                args.n,
                max_cycles=args.max_cycles,
                faults=plan,
                graph=compiled.graph,
            )
        except DeadlockError as err:
            print(err.render(schedule))
            return 2
        agree = "agrees" if result.parallel_time == sim.parallel_time else "DISAGREES"
        print(f"semantic executor: {result.parallel_time} cycles ({agree})")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.robust.fuzz import run_fuzz

    report = run_fuzz(
        cases=args.cases, seed=args.seed, executor_every=args.executor_every
    )
    print(report.summary())
    return 0 if report.ok else 1


def _sweep_results(
    names,
    n,
    workers,
    exact_sim,
    no_cache=False,
    cache_file=None,
    min_pool_work=None,
    progress=False,
    batch=False,
):
    """Run the Perfect sweep and return evaluations, one per sweep point."""
    from repro.obs.ledger import active_recorder
    from repro.options import EvalOptions

    suite = perfect_suite()
    cases = [(2, 1), (2, 2), (4, 1), (4, 2)]
    jobs = [
        (name, suite[name], paper_machine(*case)) for name in names for case in cases
    ]
    options = EvalOptions(
        exact_simulation=exact_sim, min_pool_work=min_pool_work, progress=progress,
        batch=batch,
    )
    run_recorder = active_recorder()
    if run_recorder is not None:
        run_recorder.note_options(options)
    if workers > 1:
        from repro.perf import ParallelEvaluator

        evaluator = ParallelEvaluator(max_workers=workers)
        results = evaluator.evaluate_corpora(jobs, n=n, options=options)
        benign = evaluator.fallback_reason in (None, "max_workers=1", "single job") or (
            evaluator.fallback_reason or ""
        ).startswith("below min-work threshold")
        if not evaluator.used_pool and not benign:
            print(
                f"note: process pool unavailable, ran serially "
                f"({evaluator.fallback_reason})",
                file=sys.stderr,
            )
    else:
        from repro.perf import CompileCache
        from repro.pipeline import evaluate_corpus

        if run_recorder is not None:
            run_recorder.note_mode(
                "batch (whole-grid vectorized, no pool requested)"
                if batch
                else "serial (no pool requested)"
            )
        cache = None
        if cache_file:
            cache = CompileCache.load(cache_file)
        elif not no_cache:
            cache = CompileCache()
        if cache is not None:
            options = options.replace(cache=cache)
        if batch:
            # The whole grid goes through one vectorized dispatch instead
            # of a per-corpus loop (CLI sweeps never carry the options the
            # batch engine declines, so there is no fallback leg here).
            from repro.perf import BatchEvaluator, shared_batch_evaluator

            engine = BatchEvaluator() if no_cache else shared_batch_evaluator()
            results = engine.evaluate_corpora(jobs, n=n, options=options)
        else:
            results = [
                evaluate_corpus(name, loops, machine, n, options)
                for name, loops, machine in jobs
            ]
        if cache_file and cache is not None:
            cache.save(cache_file)
    if run_recorder is not None:
        for corpus in results:
            run_recorder.note_failures(corpus.failures)
    return results, cases


def cmd_sweep(args: argparse.Namespace) -> int:
    names = args.benchmarks or list(PERFECT_BENCHMARKS)
    if args.no_cache and args.jobs > 1:
        print(
            "note: --no-cache has no effect with --jobs > 1 "
            "(workers keep their own caches)",
            file=sys.stderr,
        )
    if args.cache_file and args.jobs > 1:
        print(
            "note: --cache-file has no effect with --jobs > 1 "
            "(workers keep their own caches)",
            file=sys.stderr,
        )
    results, cases = _sweep_results(
        names, args.n, args.jobs, args.exact_sim, args.no_cache, args.cache_file,
        min_pool_work=args.min_pool_work, progress=args.progress, batch=args.batch,
    )
    by_point = {(ev.name, ev.machine.name): ev for ev in results}
    print(f"{'bench':8s}" + "".join(f"{f'{w}i/{f}fu':>16s}" for w, f in cases))
    for name in names:
        cells = []
        for case in cases:
            ev = by_point[(name, paper_machine(*case).name)]
            cells.append(f"{ev.t_list}/{ev.t_new} {ev.improvement:4.0f}%")
        print(f"{name:8s}" + "".join(f"{c:>16s}" for c in cells))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import enable_metrics, disable_metrics, metrics_snapshot

    names = args.benchmarks or list(PERFECT_BENCHMARKS)
    registry = enable_metrics()
    try:
        _sweep_results(names, args.n, args.jobs, args.exact_sim)
    finally:
        disable_metrics()
    if args.json:
        print(_json.dumps(metrics_snapshot(registry), indent=2, sort_keys=True))
    else:
        print(registry.format())
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs.explain import (
        DecisionJournal,
        explain_op,
        explain_pair,
        explain_summary,
        journal_scope,
    )
    from repro.sched import figure4_machine

    compiled = compile_loop(_read_source(args.loop))
    machine = figure4_machine() if args.fig4 else _machine(args)
    scheduler = SCHEDULERS[args.scheduler]
    journal = DecisionJournal()
    with journal_scope(journal):
        schedule = scheduler(compiled.lowered, compiled.graph, machine)
        assert_valid(schedule, compiled.graph)
        sim = simulate_doacross(schedule, args.n)
    printed = False
    if args.op is not None:
        print(explain_op(schedule, journal, args.op))
        printed = True
    if args.pair is not None:
        if printed:
            print()
        print(explain_pair(schedule, journal, compiled.graph, args.pair, sim=sim))
        printed = True
    if not printed:
        print(explain_summary(schedule, journal, compiled.graph, sim=sim))
    from repro.obs.ledger import active_recorder

    run_recorder = active_recorder()
    if run_recorder is not None:
        from repro.sched.gantt import sync_timeline

        run_recorder.add_timeline("sync", sync_timeline(schedule))
    if args.timeline:
        from repro.sched.gantt import execution_timeline, sync_timeline

        print()
        print(sync_timeline(schedule))
        print()
        print(execution_timeline(schedule, n=min(args.n, args.timeline_n)))
    if args.html:
        from repro.sched.gantt import timeline_html

        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(timeline_html(schedule, n=min(args.n, args.timeline_n)))
        print(f"wrote timeline to {args.html}", file=sys.stderr)
        if run_recorder is not None:
            run_recorder.add_artifact(args.html)
    return 0


def _bench_history(args: argparse.Namespace):
    from repro.obs.regress import BenchHistory

    return BenchHistory(args.history)


def cmd_bench_record(args: argparse.Namespace) -> int:
    from repro.obs.regress import collect_run, suites

    history = _bench_history(args)
    from repro.obs.ledger import active_recorder

    run_recorder = active_recorder()
    for suite in suites(args.suite):
        run = collect_run(suite, n=args.n)
        history.append(run)
        print(f"recorded {run.summary()}")
    if run_recorder is not None:
        run_recorder.add_artifact(history.path)
    print(f"history: {history.path}", file=sys.stderr)
    return 0


def cmd_bench_list(args: argparse.Namespace) -> int:
    history = _bench_history(args)
    runs = history.load()
    if not runs:
        print(f"no runs recorded in {history.path}")
        return 0
    for run in runs:
        print(run.summary())
    return 0


def cmd_bench_diff(args: argparse.Namespace) -> int:
    from repro.obs.regress import diff_runs, format_diff

    history = _bench_history(args)
    diff = diff_runs(history.get(args.run_a), history.get(args.run_b))
    print(format_diff(diff))
    return 1 if diff.cycle_drift else 0


def cmd_bench_check(args: argparse.Namespace) -> int:
    from repro.obs.regress import BenchHistory, check_run, collect_run, suites

    baseline_store = BenchHistory(args.baseline) if args.baseline else _bench_history(args)
    failed = False
    checked = 0
    for suite in suites(args.suite):
        baseline = baseline_store.latest(suite)
        if baseline is None:
            print(
                f"{suite}: no baseline recorded in {baseline_store.path} "
                "(run `repro bench record` first)",
                file=sys.stderr,
            )
            failed = True
            continue
        candidate = collect_run(suite, n=baseline.n)
        violations = check_run(
            baseline, candidate, wall_tolerance=args.wall_tolerance
        )
        checked += 1
        if violations:
            failed = True
            print(f"{suite}: REGRESSION vs baseline {baseline.run_id}:")
            for violation in violations:
                print(f"  {violation}")
        else:
            print(
                f"{suite}: OK — {len(candidate.points)} point(s) match baseline "
                f"{baseline.run_id} exactly"
            )
    return 1 if failed or checked == 0 else 0


def cmd_dot(args: argparse.Namespace) -> int:
    compiled = compile_loop(_read_source(args.loop))
    print(to_dot(compiled.graph, compiled.lowered, title=args.title))
    return 0


def _run_ledger(args: argparse.Namespace):
    from repro.obs.ledger import RunLedger

    return RunLedger(args.ledger)


def cmd_runs_list(args: argparse.Namespace) -> int:
    ledger = _run_ledger(args)
    records = ledger.load()
    if not records:
        print(f"no runs recorded in {ledger.path}")
        return 0
    for record in records:
        print(record.summary())
    return 0


def cmd_runs_show(args: argparse.Namespace) -> int:
    ledger = _run_ledger(args)
    try:
        record = ledger.get(args.run_id)
    except KeyError as err:
        print(err.args[0], file=sys.stderr)
        return 1
    print(record.describe())
    return 0


def cmd_runs_diff(args: argparse.Namespace) -> int:
    from repro.obs.ledger import diff_run_metrics, format_run_diff

    ledger = _run_ledger(args)
    try:
        old, new = ledger.get(args.run_a), ledger.get(args.run_b)
    except KeyError as err:
        print(err.args[0], file=sys.stderr)
        return 1
    diff = diff_run_metrics(old, new, deterministic_only=not args.all_metrics)
    print(format_run_diff(diff))
    return 1 if diff.comparable and not diff.identical else 0


def cmd_dash(args: argparse.Namespace) -> int:
    from repro.obs.dash import build_dashboard, walkthrough_timelines
    from repro.obs.ledger import RunLedger, active_recorder
    from repro.obs.regress import BenchHistory

    runs = RunLedger(args.ledger).load()
    bench_runs = BenchHistory(args.history).load()
    walkthrough = None if args.no_walkthrough else walkthrough_timelines()
    html = build_dashboard(runs, bench_runs, walkthrough=walkthrough)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(html)
    run_recorder = active_recorder()
    if run_recorder is not None:
        run_recorder.add_artifact(args.out)
    print(
        f"wrote dashboard ({len(runs)} ledger run(s), {len(bench_runs)} bench "
        f"run(s)) to {args.out}",
        file=sys.stderr,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.obs.ledger import DEFAULT_LEDGER

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hwang (IPPS 1997) instruction-scheduling reproduction toolkit",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="time the pipeline stages and print a report to stderr",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="record pipeline spans and write a Chrome trace-event file",
    )
    parser.add_argument(
        "--journal-out",
        metavar="FILE",
        default=None,
        help="record pipeline spans/metrics and write a JSON-lines journal",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _ledger_flag(p) -> None:
        """Arm the run ledger for this subcommand (``repro sweep --ledger
        ...``; argparse global flags would have to precede the
        subcommand, so the flag lives on each subparser instead)."""
        p.add_argument(
            "--ledger",
            metavar="FILE",
            nargs="?",
            default=None,
            const=DEFAULT_LEDGER,
            help="append a run record to this JSONL ledger "
            f"(bare --ledger means {DEFAULT_LEDGER}; see `repro runs` / "
            "`repro dash`; default: off)",
        )

    p_compile = sub.add_parser("compile", help="compile a loop and print artifacts")
    p_compile.add_argument("loop", help="loop source file, or - for stdin")
    _ledger_flag(p_compile)
    p_compile.set_defaults(func=cmd_compile)

    p_sched = sub.add_parser("schedule", help="schedule a loop and simulate")
    p_sched.add_argument("loop", help="loop source file, or - for stdin")
    p_sched.add_argument(
        "--scheduler", choices=[*SCHEDULERS, "all"], default="all"
    )
    p_sched.add_argument("--issue", type=int, default=4, help="issue width")
    p_sched.add_argument("--fu", type=int, default=1, help="units per class")
    p_sched.add_argument("--n", type=int, default=100, help="iterations")
    p_sched.add_argument("--gantt", action="store_true", help="occupancy chart")
    p_sched.add_argument("--pressure", action="store_true", help="register pressure")
    _ledger_flag(p_sched)
    p_sched.set_defaults(func=cmd_schedule)

    p_mod = sub.add_parser("modulo", help="software-pipeline a loop (extension)")
    p_mod.add_argument("loop", help="loop source file, or - for stdin")
    p_mod.add_argument("--issue", type=int, default=4)
    p_mod.add_argument("--fu", type=int, default=1)
    p_mod.add_argument("--n", type=int, default=100)
    p_mod.set_defaults(func=cmd_modulo)

    p_sim = sub.add_parser(
        "simulate", help="simulate one loop, optionally under injected faults"
    )
    p_sim.add_argument("loop", help="loop source file, or - for stdin")
    p_sim.add_argument("--scheduler", choices=list(SCHEDULERS), default="sync")
    p_sim.add_argument("--issue", type=int, default=4, help="issue width")
    p_sim.add_argument("--fu", type=int, default=1, help="units per class")
    p_sim.add_argument("--n", type=int, default=100, help="iterations")
    p_sim.add_argument(
        "--inject",
        action="append",
        metavar="SPEC",
        default=None,
        help="fault spec, repeatable: drop[:pair=P][,iter=K] | "
        "delay:extra=E[,pair=P][,iter=K] | stall:iter=K,at=C,cycles=S | "
        "jitter:seed=S[,max=M][,prob=F]",
    )
    p_sim.add_argument(
        "--exact-sim",
        action="store_true",
        help="force the full event walk (skip the analytic fast path)",
    )
    p_sim.add_argument(
        "--executor",
        action="store_true",
        help="also run the semantic executor and cross-check the timing",
    )
    p_sim.add_argument(
        "--max-cycles",
        type=int,
        default=None,
        help="executor cycle budget (default: derived from the schedule)",
    )
    _ledger_flag(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_fuzz = sub.add_parser(
        "fuzz", help="seeded differential fuzz: random loops x random fault plans"
    )
    p_fuzz.add_argument("--cases", type=int, default=200)
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument(
        "--executor-every",
        type=int,
        default=1,
        help="run the semantic-executor oracle on every k-th case",
    )
    _ledger_flag(p_fuzz)
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_sweep = sub.add_parser("sweep", help="Tables 2/3 over the Perfect corpora")
    p_sweep.add_argument("benchmarks", nargs="*", help="subset of corpora")
    p_sweep.add_argument("--n", type=int, default=100)
    p_sweep.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = in-process)"
    )
    p_sweep.add_argument(
        "--no-cache", action="store_true", help="disable the compile/schedule cache"
    )
    p_sweep.add_argument(
        "--cache-file",
        metavar="FILE",
        default=None,
        help="persist the compile/schedule cache to FILE across runs "
        "(corrupt or stale files are discarded, counted in robust.cache.corrupt)",
    )
    p_sweep.add_argument(
        "--exact-sim",
        action="store_true",
        help="force the full event simulation (skip the analytic fast path)",
    )
    p_sweep.add_argument(
        "--batch",
        action="store_true",
        help="answer the whole grid through the vectorized batch engine "
        "(one closed-form pass; results identical to the per-loop path)",
    )
    p_sweep.add_argument(
        "--min-pool-work",
        type=int,
        default=None,
        metavar="N",
        help="loop evaluations below which --jobs stays serial "
        "(0 forces the pool; default: the perf-layer threshold)",
    )
    p_sweep.add_argument(
        "--progress",
        action="store_true",
        help="render live progress (an in-place status line on a TTY, "
        "plain log lines otherwise)",
    )
    _ledger_flag(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_metrics = sub.add_parser(
        "metrics", help="run the Perfect sweep and print collected metrics"
    )
    p_metrics.add_argument("benchmarks", nargs="*", help="subset of corpora")
    p_metrics.add_argument("--n", type=int, default=100)
    p_metrics.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = in-process)"
    )
    p_metrics.add_argument(
        "--exact-sim",
        action="store_true",
        help="force the full event simulation (skip the analytic fast path)",
    )
    p_metrics.add_argument(
        "--json", action="store_true", help="print the metrics snapshot as JSON"
    )
    _ledger_flag(p_metrics)
    p_metrics.set_defaults(func=cmd_metrics)

    p_explain = sub.add_parser(
        "explain", help="why is op X at cycle c / why is pair S's span k"
    )
    p_explain.add_argument("loop", help="loop source file, or - for stdin")
    p_explain.add_argument(
        "--scheduler",
        choices=["list", "sync"],
        default="sync",
        help="which scheduler's decisions to journal and explain",
    )
    p_explain.add_argument("--issue", type=int, default=4, help="issue width")
    p_explain.add_argument("--fu", type=int, default=1, help="units per class")
    p_explain.add_argument(
        "--fig4",
        action="store_true",
        help="use the paper's Fig. 4 walkthrough machine instead of --issue/--fu",
    )
    p_explain.add_argument("--n", type=int, default=100, help="iterations")
    p_explain.add_argument(
        "--op", type=int, default=None, help="explain this instruction's placement"
    )
    p_explain.add_argument(
        "--pair", type=int, default=None, help="explain this sync pair's span"
    )
    p_explain.add_argument(
        "--timeline",
        action="store_true",
        help="also print the sync and cross-iteration ASCII timelines",
    )
    p_explain.add_argument(
        "--timeline-n",
        type=int,
        default=6,
        help="iterations shown by the cross-iteration timeline views",
    )
    p_explain.add_argument(
        "--html",
        metavar="FILE",
        default=None,
        help="write a self-contained HTML timeline to FILE",
    )
    _ledger_flag(p_explain)
    p_explain.set_defaults(func=cmd_explain)

    from repro.obs.regress import DEFAULT_HISTORY, DEFAULT_WALL_TOLERANCE

    p_bench = sub.add_parser(
        "bench", help="record / diff / check benchmark-regression history"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    def _bench_common(p) -> None:
        p.add_argument(
            "--history",
            metavar="FILE",
            default=DEFAULT_HISTORY,
            help=f"JSONL history file (default: {DEFAULT_HISTORY})",
        )

    p_record = bench_sub.add_parser("record", help="run suites and append to history")
    p_record.add_argument(
        "--suite", choices=["fig", "perfect", "batch", "all"], default="all"
    )
    p_record.add_argument("--n", type=int, default=100)
    _bench_common(p_record)
    _ledger_flag(p_record)
    p_record.set_defaults(func=cmd_bench_record)

    p_list = bench_sub.add_parser("list", help="show recorded runs")
    _bench_common(p_list)
    p_list.set_defaults(func=cmd_bench_list)

    p_diff = bench_sub.add_parser("diff", help="compare two recorded runs")
    p_diff.add_argument("run_a", help="baseline run id (prefix ok)")
    p_diff.add_argument("run_b", help="candidate run id (prefix ok)")
    _bench_common(p_diff)
    p_diff.set_defaults(func=cmd_bench_diff)

    p_check = bench_sub.add_parser(
        "check", help="re-run suites and fail on drift vs the baseline"
    )
    p_check.add_argument(
        "--suite", choices=["fig", "perfect", "batch", "all"], default="all"
    )
    p_check.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline history file (default: --history)",
    )
    p_check.add_argument(
        "--wall-tolerance",
        type=float,
        default=DEFAULT_WALL_TOLERANCE,
        help="allowed relative wall-clock slowdown on the same machine",
    )
    _bench_common(p_check)
    _ledger_flag(p_check)
    p_check.set_defaults(func=cmd_bench_check)

    p_dot = sub.add_parser("dot", help="emit the DFG as Graphviz DOT")
    p_dot.add_argument("loop", help="loop source file, or - for stdin")
    p_dot.add_argument("--title", default=None)
    p_dot.set_defaults(func=cmd_dot)

    p_runs = sub.add_parser(
        "runs", help="list / show / diff runs recorded in the ledger"
    )
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)

    def _runs_common(p) -> None:
        p.add_argument(
            "--ledger",
            metavar="FILE",
            default=DEFAULT_LEDGER,
            help=f"JSONL run ledger to read (default: {DEFAULT_LEDGER})",
        )

    p_runs_list = runs_sub.add_parser("list", help="show recorded runs")
    _runs_common(p_runs_list)
    p_runs_list.set_defaults(func=cmd_runs_list)

    p_runs_show = runs_sub.add_parser("show", help="full detail for one run")
    p_runs_show.add_argument("run_id", help="run id (prefix ok)")
    _runs_common(p_runs_show)
    p_runs_show.set_defaults(func=cmd_runs_show)

    p_runs_diff = runs_sub.add_parser(
        "diff", help="compare two runs' final metrics snapshots"
    )
    p_runs_diff.add_argument("run_a", help="old run id (prefix ok)")
    p_runs_diff.add_argument("run_b", help="new run id (prefix ok)")
    p_runs_diff.add_argument(
        "--all-metrics",
        action="store_true",
        help="compare every metrics namespace, not just the deterministic "
        "sim.*/sched.* subset",
    )
    _runs_common(p_runs_diff)
    p_runs_diff.set_defaults(func=cmd_runs_diff)

    p_dash = sub.add_parser(
        "dash", help="build the self-contained HTML dashboard"
    )
    p_dash.add_argument(
        "--out",
        metavar="FILE",
        default="dashboard.html",
        help="output HTML file (default: dashboard.html)",
    )
    p_dash.add_argument(
        "--history",
        metavar="FILE",
        default=DEFAULT_HISTORY,
        help=f"bench history to chart (default: {DEFAULT_HISTORY})",
    )
    p_dash.add_argument(
        "--no-walkthrough",
        action="store_true",
        help="skip the generated Fig. 4 walkthrough timelines",
    )
    p_dash.add_argument(
        "--ledger",
        metavar="FILE",
        default=DEFAULT_LEDGER,
        help=f"JSONL run ledger to aggregate (default: {DEFAULT_LEDGER})",
    )
    p_dash.set_defaults(func=cmd_dash)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    raw_argv = list(argv) if argv is not None else sys.argv[1:]
    profiler = None
    if args.profile:
        from repro.perf import enable_profiling

        profiler = enable_profiling()
    recorder = None
    journal_registry = None
    progress_sink = None
    if args.trace_out or args.journal_out:
        from repro.obs import RecordingTracer, add_tracer

        recorder = RecordingTracer()
        add_tracer(recorder)
        if args.journal_out and args.command != "metrics":
            from repro.obs import enable_metrics

            journal_registry = enable_metrics()
        if args.journal_out:
            from repro.obs import RecordingProgressSink, add_progress_sink

            progress_sink = RecordingProgressSink()
            add_progress_sink(progress_sink)
    # --ledger on a workload subcommand arms the run recorder.  The
    # query commands (`runs`, `dash`) take --ledger as the store to READ
    # and never record themselves.
    run_recorder = None
    if getattr(args, "ledger", None) and args.command not in ("runs", "dash"):
        from repro.obs.ledger import RunRecorder, _set_recorder

        command = args.command
        if getattr(args, "bench_command", None):
            command = f"{args.command} {args.bench_command}"
        run_recorder = RunRecorder(command, args.ledger, argv=raw_argv)
        _set_recorder(run_recorder)
    exit_code: int | None = None
    try:
        exit_code = args.func(args)
        return exit_code
    except BrokenPipeError:
        # stdout consumer (e.g. `head`) went away; not an error
        try:
            sys.stdout.close()
        except OSError:
            pass
        exit_code = 0
        return 0
    except BaseException as err:
        if run_recorder is not None:
            run_recorder.finish("error", f"{type(err).__name__}: {err}")
        raise
    finally:
        if recorder is not None:
            from repro.obs import remove_tracer

            remove_tracer(recorder)
            if journal_registry is not None:
                from repro.obs import disable_metrics

                disable_metrics()
            if progress_sink is not None:
                from repro.obs import remove_progress_sink

                remove_progress_sink(progress_sink)
            if args.trace_out:
                from repro.obs import write_chrome_trace

                write_chrome_trace(args.trace_out, recorder.events)
                print(f"wrote {len(recorder.events)} spans to {args.trace_out}", file=sys.stderr)
            if args.journal_out:
                from repro.obs import write_journal

                write_journal(
                    args.journal_out,
                    recorder.events,
                    journal_registry,
                    progress=progress_sink.events if progress_sink else None,
                )
                print(f"wrote journal to {args.journal_out}", file=sys.stderr)
        if run_recorder is not None:
            from repro.obs.ledger import _set_recorder

            if args.trace_out:
                run_recorder.add_artifact(args.trace_out)
            if args.journal_out:
                run_recorder.add_artifact(args.journal_out)
            outcome = "ok" if exit_code in (0, None) else f"exit {exit_code}"
            run_recorder.finish(outcome)
            _set_recorder(None)
        if profiler is not None:
            from repro.perf import disable_profiling

            disable_profiling()
            print(f"\n== pipeline stage profile ==\n{profiler.format()}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
