"""The record-format version shared by every machine-readable emitter.

Lives in its own dependency-free module so that :mod:`repro.report`,
:mod:`repro.obs.export`, :mod:`repro.obs.regress` and
:mod:`repro.obs.ledger` can all stamp their documents without import
cycles (``repro.obs`` must not import ``repro.report``, which pulls in
the whole pipeline).

Version history — the documented contract lives in ``docs/api.md``:

* **v1** (implicit; records had no version field) — the original PR 1
  shape: timings, spans, utilization.
* **v2** — ``schema_version`` on report records, ``metrics`` blocks,
  ``fallback_reason`` on corpus records.
* **v3** — ``schema_version`` at the top level of *every* emitted
  document (journal lines, ``repro metrics --json``, Chrome trace
  metadata, bench-history records), an optional ``explain`` block on
  evaluation records (decision provenance + stall chains, see
  :mod:`repro.obs.explain`), and the ``bench_run`` record family of
  :mod:`repro.obs.regress`.  Consumers written against v2 keep working:
  v3 only adds keys.
* **v4** — robustness fields (see ``docs/robustness.md``):
  ``fallback_reason`` inside each per-scheduler simulation-metrics block
  (why the analytic fast path declined — ``None`` when it answered) and
  a ``failures`` list on corpus records (quarantined loops/jobs as
  structured :class:`~repro.robust.harden.FailureRecord` dicts, empty on
  a clean run).  The on-disk :class:`~repro.perf.cache.CompileCache`
  format is also stamped with this version and refuses to load any
  other.  Again additive: v3 consumers keep working.
* **v5** — the run ledger and live progress (see
  ``docs/observability.md``, "Run ledger & dashboard"): the ``run``
  record kind of :mod:`repro.obs.ledger` (one JSONL line per
  ``compile``/``simulate``/``sweep``/``fuzz``/``bench`` invocation:
  options hash, git SHA, machine fingerprint, wall time, outcome,
  quarantined failures, final metrics snapshot, emitted artifacts) and
  the ``progress`` event lines emitted through the
  :class:`~repro.obs.trace.ProgressSink` seam and journaled by
  ``repro --journal-out``.  Additive: v4 consumers keep working.
* **v6** — the batch evaluation engine and persistent worker pool (see
  ``docs/performance.md``): ``run`` records gain an optional
  ``calibration`` block (how ``min_pool_work`` was chosen: source,
  measured per-eval cost, probe cost), and the on-disk
  :class:`~repro.perf.cache.CompileCache` payload changes shape —
  :class:`~repro.codegen.lower.LoweredLoop` now pickles its ``ref_iids``
  map as identity-preserving ``(ref, iid)`` pairs so cached compiled
  loops survive a process boundary.  v5 cache files are rejected (and
  recompiled); JSONL consumers keep working — the new key is optional.
* **v7** — compilation-as-a-service (see ``docs/service.md``): the
  ``result`` and ``error`` record kinds of :mod:`repro.service.server`
  (every HTTP response body, and the terminal line of a streamed
  submission, is one of them), and ``run`` records written by the
  service carry ``command: "service <op>"`` with ``metrics: null`` (a
  per-request metrics snapshot would dominate service latency).  JSONL
  consumers keep working — the new kinds are additive; v6 cache files
  are rejected and recompiled, as every bump does by construction.
* **v8** — service telemetry (see ``docs/service.md``, "Operating the
  service"): every service response body carries a ``request_id``
  echoed from the server's per-request trace; ``GET /v1/metrics``
  returns a stamped snapshot whose registry block may carry the new
  optional ``distributions`` (fixed-bucket histograms with p50/p95/p99)
  and ``gauges`` keys — **present only when non-empty**, so one-shot
  pipeline snapshots stay byte-identical to v7; ``GET
  /v1/trace/<request_id>`` serves retained flight-recorder traces; and
  the ``access`` JSONL kind is the structured per-request access log
  written by ``repro serve --access-log FILE``.  Additive throughout:
  v7 consumers keep working.
* **v9** — the service resilience layer (see ``docs/robustness.md``,
  "Operating under failure"): service ``error`` bodies may carry the
  overload fields ``retry_after_s`` (shed ``429`` responses, mirrored in
  the ``Retry-After`` header) and ``hint`` (deadline ``504`` responses:
  a structured block naming where the request's budget went); ``run``
  records written by the service may carry ``outcome: "inflight"``
  (journaled before evaluation, finalized by a terminal record sharing
  the same ``request_id`` in ``argv``) and ``outcome: "lost"`` (a
  finalizer appended by ``repro serve --recover`` for in-flight work a
  killed process never finished); circuit-breaker transitions append
  ``command: "service breaker"`` run records and drive the
  ``service.breaker.state`` gauge on ``GET /v1/metrics``.  Additive
  throughout: v8 consumers keep working.
* **v10** — continuous CPU profiling (see ``docs/observability.md``,
  "Continuous profiling"): the ``profile`` record kind of
  :mod:`repro.obs.prof` (collapsed sample stacks with per-stage
  attribution, appended to ``.repro/profiles.jsonl`` and served by
  ``GET /v1/profile``); ``bench_run`` records gain ``wall_repeats``
  (how many timed repeats the recorded wall clock is the median of);
  service flight-recorder traces and ``GET /v1/metrics`` may carry
  per-op CPU sample counters (``cpu_samples`` /
  ``service.cpu.samples.<op>``) when profiling is armed.  Additive
  throughout: v9 consumers keep working; v9 cache files are rejected
  and recompiled, as every bump does by construction.
"""

from __future__ import annotations

import json
from typing import Any

#: Record format version; bump when any record's shape changes (docs/api.md).
SCHEMA_VERSION = 10

#: Every ``kind`` that may appear as a top-level JSONL line.  Nested
#: records (``schedule``/``evaluation``/``corpus`` report blocks) are
#: stamped with ``schema_version`` but carry no ``kind`` — they are
#: documents, not stream lines.  ``result``/``error`` are the service's
#: response bodies and ndjson stream lines (:mod:`repro.service.server`);
#: ``access`` is its per-request access-log line (``--access-log``).
JSONL_KINDS = (
    "span", "metrics", "progress", "bench_run", "run", "result", "error",
    "access", "profile",
)

__all__ = [
    "JSONL_KINDS",
    "SCHEMA_VERSION",
    "dump_line",
    "parse_line",
    "stamped",
]


def stamped(kind: str | None, record: dict[str, Any]) -> dict[str, Any]:
    """``record`` with ``schema_version`` (and ``kind``) stamped first.

    The stamp wins over any stale version already present, so re-emitting
    a loaded record always carries the current version.
    """
    head: dict[str, Any] = {"schema_version": SCHEMA_VERSION}
    if kind is not None:
        head["kind"] = kind
    return {**head, **{k: v for k, v in record.items() if k not in head}}


def dump_line(record: dict[str, Any]) -> str:
    """Serialize one JSONL record (stable key order, no trailing newline).

    Refuses records without a top-level ``schema_version`` — every line
    this repository emits must be self-describing (the v3 contract).
    """
    if "schema_version" not in record:
        raise ValueError(
            "record is missing a top-level schema_version; "
            "build it with schema.stamped(kind, record)"
        )
    return json.dumps(record, sort_keys=True)


def parse_line(line: str) -> dict[str, Any]:
    """Parse one JSONL record and check its version envelope.

    Raises ``ValueError`` for non-object lines, missing/non-integer
    ``schema_version``, or a version newer than this code understands
    (older versions load fine — the schema only ever adds keys).
    """
    record = json.loads(line)
    if not isinstance(record, dict):
        raise ValueError(f"JSONL line is not an object: {line[:80]!r}")
    version = record.get("schema_version")
    if not isinstance(version, int):
        raise ValueError(
            f"record has no integer schema_version: {sorted(record)[:8]}"
        )
    if version > SCHEMA_VERSION:
        raise ValueError(
            f"record schema_version {version} is newer than this code "
            f"understands (v{SCHEMA_VERSION}); upgrade to read it"
        )
    return record
