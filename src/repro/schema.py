"""The record-format version shared by every machine-readable emitter.

Lives in its own dependency-free module so that :mod:`repro.report`,
:mod:`repro.obs.export` and :mod:`repro.obs.regress` can all stamp their
documents without import cycles (``repro.obs`` must not import
``repro.report``, which pulls in the whole pipeline).

Version history — the documented contract lives in ``docs/api.md``:

* **v1** (implicit; records had no version field) — the original PR 1
  shape: timings, spans, utilization.
* **v2** — ``schema_version`` on report records, ``metrics`` blocks,
  ``fallback_reason`` on corpus records.
* **v3** — ``schema_version`` at the top level of *every* emitted
  document (journal lines, ``repro metrics --json``, Chrome trace
  metadata, bench-history records), an optional ``explain`` block on
  evaluation records (decision provenance + stall chains, see
  :mod:`repro.obs.explain`), and the ``bench_run`` record family of
  :mod:`repro.obs.regress`.  Consumers written against v2 keep working:
  v3 only adds keys.
* **v4** — robustness fields (see ``docs/robustness.md``):
  ``fallback_reason`` inside each per-scheduler simulation-metrics block
  (why the analytic fast path declined — ``None`` when it answered) and
  a ``failures`` list on corpus records (quarantined loops/jobs as
  structured :class:`~repro.robust.harden.FailureRecord` dicts, empty on
  a clean run).  The on-disk :class:`~repro.perf.cache.CompileCache`
  format is also stamped with this version and refuses to load any
  other.  Again additive: v3 consumers keep working.
"""

from __future__ import annotations

#: Record format version; bump when any record's shape changes (docs/api.md).
SCHEMA_VERSION = 4

__all__ = ["SCHEMA_VERSION"]
