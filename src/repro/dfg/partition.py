"""Sig / Wat / Sigwat partition of the DFG (paper Section 3.1).

Definitions from the paper:

* A **Sig graph** is a contiguous (weakly connected) subgraph containing
  one or more ``Send_Signal`` instructions — and no waits.
* A **Wat graph** likewise contains only ``Wait_Signal`` instructions.
* A **Sigwat graph** contains both.

Components with no synchronization instruction at all are *plain*; their
nodes are scheduled last by the paper's algorithm.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.codegen.isa import Opcode
from repro.codegen.lower import LoweredLoop
from repro.dfg.graph import DataFlowGraph


class ComponentKind(enum.Enum):
    """Classification of a DFG component by the sync ops it contains."""

    SIG = "sig"
    WAT = "wat"
    SIGWAT = "sigwat"
    PLAIN = "plain"


@dataclass
class Component:
    """One weakly-connected DFG component and its classification."""

    kind: ComponentKind
    nodes: frozenset[int]
    waits: tuple[int, ...]  # wait instruction ids in this component
    sends: tuple[int, ...]  # send instruction ids in this component

    def __contains__(self, node: int) -> bool:
        return node in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)


def partition(graph: DataFlowGraph, lowered: LoweredLoop) -> list[Component]:
    """Partition the DFG into classified components (smallest-id order)."""
    opcode_of = {i.iid: i.opcode for i in lowered.instructions}
    components: list[Component] = []
    for nodes in graph.weakly_connected_components():
        waits = tuple(sorted(n for n in nodes if opcode_of[n] is Opcode.WAIT))
        sends = tuple(sorted(n for n in nodes if opcode_of[n] is Opcode.SEND))
        if waits and sends:
            kind = ComponentKind.SIGWAT
        elif sends:
            kind = ComponentKind.SIG
        elif waits:
            kind = ComponentKind.WAT
        else:
            kind = ComponentKind.PLAIN
        components.append(
            Component(kind=kind, nodes=frozenset(nodes), waits=waits, sends=sends)
        )
    return components


def component_of(components: list[Component], node: int) -> Component:
    """The component containing ``node``."""
    for component in components:
        if node in component:
            return component
    raise KeyError(f"node {node} is in no component")
