"""DFG construction from a lowered loop.

Three edge families (paper Section 3.1):

1. **Register dependences** — each read depends on its *reaching*
   definition.  Straight from the lowerer, temporaries are in SSA form
   (every ``emit`` creates a fresh ``tN``), so only true dependences
   exist; after register allocation (:mod:`repro.codegen.regalloc`)
   physical registers are reused, and the builder additionally emits
   read→next-write (WAR) and write→next-write (WAW) edges.  Pre-loaded
   registers (the index ``I``, loop invariants) have no producer.
2. **Within-iteration memory dependences** — for two accesses to the same
   variable, at least one a store, that may alias (exact affine
   disambiguation: same-iteration accesses with different affine subscripts
   never collide), an edge in listing order.  Cross-iteration ordering is
   the synchronization pairs' job, not the DFG's.
3. **Synchronization-condition arcs** — per pair, ``Src -> Sig`` (a send
   may not precede its dependence source) and ``Wat -> Snk`` (a wait may
   not follow its dependence sink).  These are what makes any legal
   schedule of the DFG free of stale-data accesses.
"""

from __future__ import annotations

from repro.codegen.lower import LoweredLoop
from repro.dfg.graph import DataFlowGraph, EdgeKind


def build_dfg(lowered: LoweredLoop) -> DataFlowGraph:
    """Build the data-flow graph of ``lowered`` (nodes are instruction ids)."""
    graph = DataFlowGraph()

    for instr in lowered.instructions:
        graph.add_node(instr.iid)

    # 1. register dependences (reaching definitions; WAR/WAW on reuse)
    last_def: dict[str, int] = {}
    uses_since_def: dict[str, list[int]] = {}
    for instr in lowered.instructions:
        seen: set[int] = set()
        for reg in instr.uses():
            producer = last_def.get(reg)
            if producer is not None and producer != instr.iid and producer not in seen:
                seen.add(producer)
                graph.add_edge(producer, instr.iid, EdgeKind.REG)
            uses_since_def.setdefault(reg, []).append(instr.iid)
        if instr.dest is not None:
            prev = last_def.get(instr.dest)
            if prev is not None and prev != instr.iid:
                graph.add_edge(prev, instr.iid, EdgeKind.REG_OUTPUT)
            for reader in uses_since_def.get(instr.dest, ()):  # WAR
                if reader != instr.iid and not graph.has_edge(reader, instr.iid):
                    graph.add_edge(reader, instr.iid, EdgeKind.REG_ANTI)
            last_def[instr.dest] = instr.iid
            uses_since_def[instr.dest] = []

    # 2. within-iteration memory dependences
    mem_ops = [i for i in lowered.instructions if i.mem is not None]
    for idx, first in enumerate(mem_ops):
        for second in mem_ops[idx + 1 :]:
            assert first.mem is not None and second.mem is not None
            if not (first.mem.is_store or second.mem.is_store):
                continue
            if not first.mem.may_alias(second.mem):
                continue
            if first.mem.is_store and second.mem.is_store:
                kind = EdgeKind.MEM_OUTPUT
            elif first.mem.is_store:
                kind = EdgeKind.MEM_FLOW
            else:
                kind = EdgeKind.MEM_ANTI
            if not graph.has_edge(first.iid, second.iid):
                graph.add_edge(first.iid, second.iid, kind)

    # 3. synchronization-condition arcs
    for pair in lowered.synced.pairs:
        sig = lowered.send_iids[pair.pair_id]
        wat = lowered.wait_iids[pair.pair_id]
        for src in lowered.source_iids(pair.pair_id):
            if not graph.has_edge(src, sig):
                graph.add_edge(src, sig, EdgeKind.SYNC_SRC_SIG)
        for snk in lowered.sink_iids(pair.pair_id):
            if not graph.has_edge(wat, snk):
                graph.add_edge(wat, snk, EdgeKind.SYNC_WAT_SNK)

    return graph
