"""Data-flow graph structure over instruction ids."""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator


class EdgeKind(enum.Enum):
    """Why the destination instruction must follow the source."""

    REG = "reg"  # true register dependence (producer -> consumer)
    REG_ANTI = "reg_anti"  # reader -> next writer of a reused register
    REG_OUTPUT = "reg_output"  # writer -> next writer of a reused register
    MEM_FLOW = "mem_flow"  # store -> load, same location, same iteration
    MEM_ANTI = "mem_anti"  # load -> store
    MEM_OUTPUT = "mem_output"  # store -> store
    SYNC_SRC_SIG = "src_sig"  # dependence source -> its Send_Signal
    SYNC_WAT_SNK = "wat_snk"  # Wait_Signal -> its dependence sink


@dataclass(frozen=True)
class Edge:
    src: int
    dst: int
    kind: EdgeKind

    def __str__(self) -> str:  # pragma: no cover - diagnostics
        return f"{self.src} -[{self.kind.value}]-> {self.dst}"


@dataclass
class DataFlowGraph:
    """Directed acyclic graph over 1-based instruction ids.

    ``nodes`` is the full ordered id list (listing order); ``succ``/``pred``
    are adjacency maps built as edges are added.  The graph is acyclic by
    construction (every edge points from a lower listing position to a
    higher one is *not* guaranteed — sync arcs respect listing order too,
    but we verify acyclicity in :meth:`topological_order`).
    """

    nodes: list[int] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)
    succ: dict[int, list[Edge]] = field(default_factory=dict)
    pred: dict[int, list[Edge]] = field(default_factory=dict)

    def add_node(self, node: int) -> None:
        self.nodes.append(node)
        self.succ.setdefault(node, [])
        self.pred.setdefault(node, [])

    def add_edge(self, src: int, dst: int, kind: EdgeKind) -> Edge:
        if src == dst:
            raise ValueError(f"self edge on node {src}")
        edge = Edge(src, dst, kind)
        self.edges.append(edge)
        self.succ[src].append(edge)
        self.pred[dst].append(edge)
        return edge

    def has_edge(self, src: int, dst: int) -> bool:
        return any(e.dst == dst for e in self.succ.get(src, ()))

    def successors(self, node: int) -> list[int]:
        return [e.dst for e in self.succ[node]]

    def predecessors(self, node: int) -> list[int]:
        return [e.src for e in self.pred[node]]

    def in_degree(self, node: int) -> int:
        return len(self.pred[node])

    # -- algorithms ----------------------------------------------------------

    def topological_order(self) -> list[int]:
        """Kahn's algorithm; raises ``ValueError`` on a cycle."""
        indeg = {n: self.in_degree(n) for n in self.nodes}
        ready = deque(n for n in self.nodes if indeg[n] == 0)
        order: list[int] = []
        while ready:
            node = ready.popleft()
            order.append(node)
            for edge in self.succ[node]:
                indeg[edge.dst] -= 1
                if indeg[edge.dst] == 0:
                    ready.append(edge.dst)
        if len(order) != len(self.nodes):
            raise ValueError("data-flow graph contains a cycle")
        return order

    def ancestors(self, node: int) -> set[int]:
        """All nodes with a directed path to ``node`` (excluding it)."""
        seen: set[int] = set()
        stack = [e.src for e in self.pred[node]]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(e.src for e in self.pred[cur])
        return seen

    def descendants(self, node: int) -> set[int]:
        """All nodes reachable from ``node`` (excluding it)."""
        seen: set[int] = set()
        stack = [e.dst for e in self.succ[node]]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(e.dst for e in self.succ[cur])
        return seen

    def shortest_path(self, start: int, goal: int) -> list[int] | None:
        """Fewest-nodes directed path from ``start`` to ``goal`` (BFS),
        inclusive of both endpoints; ``None`` if unreachable."""
        if start == goal:
            return [start]
        parent: dict[int, int] = {start: start}
        queue = deque([start])
        while queue:
            cur = queue.popleft()
            for edge in self.succ[cur]:
                if edge.dst in parent:
                    continue
                parent[edge.dst] = cur
                if edge.dst == goal:
                    path = [goal]
                    while path[-1] != start:
                        path.append(parent[path[-1]])
                    return list(reversed(path))
                queue.append(edge.dst)
        return None

    def weakly_connected_components(self) -> list[set[int]]:
        """Connected components ignoring edge direction, in order of their
        smallest member."""
        seen: set[int] = set()
        components: list[set[int]] = []
        for node in self.nodes:
            if node in seen:
                continue
            component: set[int] = set()
            stack = [node]
            while stack:
                cur = stack.pop()
                if cur in component:
                    continue
                component.add(cur)
                stack.extend(e.dst for e in self.succ[cur])
                stack.extend(e.src for e in self.pred[cur])
            seen |= component
            components.append(component)
        components.sort(key=min)
        return components

    def critical_path_length(self, latency: "Iterable[tuple[int, int]] | None" = None) -> int:
        """Longest path length in nodes (unit latency); a quick diagnostic."""
        order = self.topological_order()
        dist = {n: 1 for n in self.nodes}
        for node in order:
            for edge in self.succ[node]:
                dist[edge.dst] = max(dist[edge.dst], dist[node] + 1)
        return max(dist.values(), default=0)

    def __iter__(self) -> Iterator[int]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)
