"""Synchronization paths (paper Section 3.2).

A synchronization path ``SP(Wat, Sig)`` is a directed DFG path from a
``Wait_Signal`` node to its paired ``Send_Signal`` node, which exists only
when the two live in the same Sigwat graph.  Its existence means the LBD
cannot be converted to LFD by reordering; the best a scheduler can do is
make the Wat→Sig span as short as possible — the path length — by
scheduling the path's nodes contiguously.

Paths are prioritized by the damage their LBD does to parallel execution
time, ``(n / d) * |SP|`` (trip count over dependence distance, times path
length), in descending order.  Paths that share nodes must be scheduled
together (separating them would stretch one of the spans), so we group
overlapping paths before handing them to the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.lower import LoweredLoop
from repro.dfg.graph import DataFlowGraph
from repro.dfg.partition import Component, ComponentKind


@dataclass(frozen=True)
class SyncPath:
    """One synchronization path.

    ``nodes`` runs from the Wait (``nodes[0]``) to the Send (``nodes[-1]``);
    ``distance`` is the pair's dependence distance ``d``.
    """

    pair_id: int
    nodes: tuple[int, ...]
    distance: int

    @property
    def wait(self) -> int:
        return self.nodes[0]

    @property
    def send(self) -> int:
        return self.nodes[-1]

    def __len__(self) -> int:
        return len(self.nodes)

    def weight(self, trip_count: int) -> float:
        """The paper's priority value ``(n/d) * |SP|``."""
        return (trip_count / self.distance) * len(self.nodes)


def find_sync_paths(
    graph: DataFlowGraph,
    lowered: LoweredLoop,
    components: list[Component] | None = None,
) -> list[SyncPath]:
    """Find the shortest ``SP(Wat, Sig)`` for every pair that has one.

    A pair whose wait and send sit in different components (or in the same
    Sigwat component but with no directed Wat→Sig path) has no SP: the
    scheduler can convert it to LFD instead.
    """
    paths: list[SyncPath] = []
    for pair in lowered.synced.pairs:
        wat = lowered.wait_iids[pair.pair_id]
        sig = lowered.send_iids[pair.pair_id]
        if components is not None:
            same_sigwat = any(
                c.kind is ComponentKind.SIGWAT and wat in c and sig in c
                for c in components
            )
            if not same_sigwat:
                continue
        path = graph.shortest_path(wat, sig)
        if path is None:
            continue
        paths.append(
            SyncPath(pair_id=pair.pair_id, nodes=tuple(path), distance=pair.distance)
        )
    return paths


def order_paths(paths: list[SyncPath], trip_count: int) -> list[SyncPath]:
    """Sort by descending ``(n/d)*|SP|`` (paper's scheduling priority);
    ties broken by pair id for determinism."""
    return sorted(paths, key=lambda p: (-p.weight(trip_count), p.pair_id))


def group_overlapping(paths: list[SyncPath]) -> list[list[SyncPath]]:
    """Union-find grouping of paths that share at least one node.

    Input order is preserved inside groups and between groups (a group is
    placed at its highest-priority member's position), so feeding this the
    output of :func:`order_paths` yields groups in scheduling order.
    """
    parent = list(range(len(paths)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[max(ri, rj)] = min(ri, rj)

    for i, a in enumerate(paths):
        set_a = set(a.nodes)
        for j in range(i + 1, len(paths)):
            if set_a & set(paths[j].nodes):
                union(i, j)

    groups: dict[int, list[SyncPath]] = {}
    for i, path in enumerate(paths):
        groups.setdefault(find(i), []).append(path)
    return [groups[root] for root in sorted(groups)]
