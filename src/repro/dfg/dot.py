"""Graphviz DOT export of the data-flow graph (the paper's Fig. 3 as a
renderable artifact).

Sends are drawn as the paper's up-triangles and waits as down-triangles;
nodes are clustered by Sig/Wat/Sigwat/plain component; sync-condition arcs
are dashed.  The output renders with ``dot -Tsvg``.
"""

from __future__ import annotations

from repro.codegen.isa import Opcode, render_instruction
from repro.codegen.lower import LoweredLoop
from repro.dfg.graph import DataFlowGraph, EdgeKind
from repro.dfg.partition import Component, partition

_EDGE_STYLE = {
    EdgeKind.REG: "solid",
    EdgeKind.REG_ANTI: "dotted",
    EdgeKind.REG_OUTPUT: "dotted",
    EdgeKind.MEM_FLOW: "bold",
    EdgeKind.MEM_ANTI: "dotted",
    EdgeKind.MEM_OUTPUT: "dotted",
    EdgeKind.SYNC_SRC_SIG: "dashed",
    EdgeKind.SYNC_WAT_SNK: "dashed",
}

_KIND_COLOR = {
    "sigwat": "lightgoldenrod1",
    "sig": "lightpink",
    "wat": "lightblue",
    "plain": "gray92",
}


def _node_line(iid: int, lowered: LoweredLoop) -> str:
    instr = lowered.instruction(iid)
    label = f"{iid}: {render_instruction(instr)}".replace('"', "'")
    if instr.opcode is Opcode.SEND:
        shape = "triangle"
    elif instr.opcode is Opcode.WAIT:
        shape = "invtriangle"
    elif instr.mem is not None:
        shape = "box"
    else:
        shape = "ellipse"
    return f'  n{iid} [label="{label}", shape={shape}];'


def to_dot(
    graph: DataFlowGraph,
    lowered: LoweredLoop,
    components: list[Component] | None = None,
    title: str | None = None,
) -> str:
    """Render the DFG as a DOT digraph string."""
    if components is None:
        components = partition(graph, lowered)
    lines = ["digraph dfg {"]
    if title:
        lines.append(f'  label="{title}"; labelloc=top;')
    lines.append("  rankdir=TB; node [fontsize=10];")
    for index, component in enumerate(components):
        kind = component.kind.value
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f'    label="{kind} graph"; style=filled;')
        lines.append(f'    color="{_KIND_COLOR[kind]}";')
        for iid in sorted(component.nodes):
            lines.append("  " + _node_line(iid, lowered))
        lines.append("  }")
    for edge in graph.edges:
        style = _EDGE_STYLE[edge.kind]
        lines.append(f"  n{edge.src} -> n{edge.dst} [style={style}];")
    lines.append("}")
    return "\n".join(lines)
