"""Instruction-level data-flow graph with synchronization-condition arcs.

* :mod:`repro.dfg.graph` — the graph structure (nodes = instruction ids,
  typed edges) with reachability/topology helpers.
* :mod:`repro.dfg.builder` — builds the DFG of a lowered loop: register
  true dependences, within-iteration memory dependences (exact affine
  disambiguation), and the paper's two extra arcs per synchronization pair
  (``Src -> Sig`` and ``Wat -> Snk``).
* :mod:`repro.dfg.partition` — weakly-connected-component partition into
  Sig / Wat / Sigwat / plain graphs (paper Section 3.1).
* :mod:`repro.dfg.syncpath` — synchronization paths ``SP(Wat, Sig)`` inside
  Sigwat graphs, their ``(n/d)·|SP|`` weights and overlap grouping
  (paper Section 3.2).
"""

from repro.dfg.builder import build_dfg
from repro.dfg.dot import to_dot
from repro.dfg.graph import DataFlowGraph, Edge, EdgeKind
from repro.dfg.partition import Component, ComponentKind, partition
from repro.dfg.syncpath import SyncPath, find_sync_paths, group_overlapping, order_paths

__all__ = [
    "Component",
    "ComponentKind",
    "DataFlowGraph",
    "Edge",
    "EdgeKind",
    "SyncPath",
    "build_dfg",
    "find_sync_paths",
    "group_overlapping",
    "order_paths",
    "partition",
    "to_dot",
]
