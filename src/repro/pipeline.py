"""End-to-end pipeline: the paper's Fig. 5 statistical model as a library.

``source text → parse → dependence analysis → restructuring (induction /
reduction / scalar expansion) → synchronization insertion → DLX lowering →
DFG with sync arcs → schedule (list and sync-aware) → DOACROSS timing
simulation``.

:func:`compile_loop` runs the front half once; :func:`evaluate_loop` runs
both schedulers on a machine and simulates; :func:`evaluate_corpus` sums a
benchmark corpus the way the paper's Table 2 does.

Every driver takes a single frozen :class:`~repro.options.EvalOptions`
value (the stable facade; see ``docs/api.md``).  The pre-``EvalOptions``
keyword arguments (``apply_restructuring``, ``fuse``, ``cache``,
``exact_simulation``, ...) still work but emit ``DeprecationWarning`` and
are mapped onto an ``EvalOptions`` internally.

Observability (see :mod:`repro.obs` and ``docs/observability.md``): every
stage is wrapped in a :func:`repro.obs.span` trace span, and
:func:`evaluate_loop` records the paper's per-loop quantities (wait-stall
cycles per sync pair, Wait→Send spans, run-time LBD/LFD pair counts) on
the active metrics registry.  Both are no-ops unless a tracer/registry is
installed, so the instrumented pipeline is exactly as fast as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codegen import FuseStore, LoweredLoop, lower_loop
from repro.deps import LoopClass
from repro.dfg import DataFlowGraph, build_dfg
from repro.ir.ast_nodes import Loop
from repro.ir.parser import parse_loop
from repro.obs.metrics import active_metrics, context_metrics
from repro.obs.metrics import count as metric_count
from repro.obs.metrics import observe as metric_observe
from repro.obs.trace import emit_progress, span
from repro.options import EvalOptions, observation_scope as _collectors
from repro.robust.harden import FailureRecord
from repro.sched import (
    MachineConfig,
    Schedule,
    assert_valid,
    list_schedule,
    sync_schedule,
)
from repro.sim import MemoryImage, execute_parallel, run_serial, simulate_doacross
from repro.sim.metrics import improvement_percent
from repro.sim.multiproc import SimulationResult
from repro.sync import SyncedLoop, insert_synchronization
from repro.transforms import RestructureResult, restructure


@dataclass
class CompiledLoop:
    """Everything machine-independent about one loop."""

    source: Loop
    restructured: RestructureResult
    synced: SyncedLoop
    lowered: LoweredLoop
    graph: DataFlowGraph

    @property
    def classification(self) -> LoopClass:
        return self.restructured.classification


def compile_loop(
    loop: Loop | str,
    options: EvalOptions | None = None,
    apply_restructuring: bool | None = None,
    fuse: FuseStore | None = None,
) -> CompiledLoop:
    """Front half of the pipeline.  Raises ``ValueError`` for SERIAL loops
    (the paper drops them from the study too).

    ``options`` carries the compile knobs (``apply_restructuring``,
    ``fuse``); passing those as keyword (or legacy positional) arguments
    still works but is deprecated.
    """
    if isinstance(options, bool):  # legacy: compile_loop(loop, True[, fuse])
        if isinstance(apply_restructuring, FuseStore) and fuse is None:
            fuse = apply_restructuring
        apply_restructuring, options = options, None
    options = EvalOptions.coerce(
        options, apply_restructuring=apply_restructuring, fuse=fuse
    )
    with span("compile"), _collectors(options):
        if isinstance(loop, str):
            with span("parse"):
                loop = parse_loop(loop)
        with span("deps"):
            if options.apply_restructuring:
                restructured = restructure(loop)
            else:
                restructured = restructure(
                    loop,
                    apply_induction=False,
                    apply_expansion=False,
                    apply_reduction=False,
                )
        if restructured.classification is LoopClass.SERIAL:
            raise ValueError(
                "loop is SERIAL after restructuring; cannot be DOACROSS-scheduled"
            )
        with span("sync"):
            synced = insert_synchronization(restructured.loop, restructured.graph)
        with span("lower"):
            lowered = lower_loop(synced, fuse=options.fuse)
        with span("dfg"):
            graph = build_dfg(lowered)
        return CompiledLoop(
            source=loop,
            restructured=restructured,
            synced=synced,
            lowered=lowered,
            graph=graph,
        )


@dataclass
class LoopEvaluation:
    """Both schedulers' results for one loop on one machine."""

    compiled: CompiledLoop
    machine: MachineConfig
    n: int
    schedule_list: Schedule
    schedule_new: Schedule
    t_list: int
    t_new: int
    sim_list: SimulationResult | None = None
    sim_new: SimulationResult | None = None

    @property
    def improvement(self) -> float:
        return improvement_percent(self.t_list, self.t_new)


def _record_evaluation_metrics(
    compiled: CompiledLoop,
    results: tuple[tuple[str, Schedule, SimulationResult], ...],
) -> None:
    """The paper's per-loop quantities, on the active metrics registry.

    Everything here is a pure function of (loop, machine, options), so
    these ``sim.*`` / ``sched.*`` aggregates are identical however the
    sweep was cached or partitioned (see
    :data:`repro.obs.metrics.DETERMINISTIC_NAMESPACES`).
    """
    pairs = compiled.synced.pairs
    for pair in pairs:
        metric_count(
            "sched.pairs_lexical_lbd"
            if pair.is_lexically_backward
            else "sched.pairs_lexical_lfd"
        )
    for role, schedule, sim in results:
        runtime_lbd = schedule.runtime_lbd_pairs()
        metric_count(f"sched.{role}.runtime_lbd_pairs", len(runtime_lbd))
        metric_count(f"sched.{role}.runtime_lfd_pairs", len(pairs) - len(runtime_lbd))
        for pair in pairs:
            # The paper's i − j span: send issue cycle minus wait issue cycle.
            metric_observe(
                f"sched.{role}.wait_send_span",
                schedule.send_cycle(pair.pair_id) - schedule.wait_cycle(pair.pair_id),
            )
        metric_count(f"sim.{role}.stall_cycles", sim.total_stall)
        for stall in sim.stall_by_pair.values():
            metric_observe(f"sim.{role}.pair_stall_cycles", stall)


def evaluate_loop(
    compiled: CompiledLoop,
    machine: MachineConfig,
    n: int | None = None,
    options: EvalOptions | None = None,
    **legacy,
) -> LoopEvaluation:
    """Schedule with both algorithms and simulate the DOACROSS execution.

    All knobs (``verify``, ``check_semantics``, ``list_priority``,
    ``sync_options``, ``exact_simulation``, ``cache``) live on
    ``options``; passing them as keyword arguments still works but is
    deprecated.
    """
    if isinstance(options, bool):  # legacy: evaluate_loop(c, m, n, verify)
        legacy.setdefault("verify", options)
        options = None
    options = EvalOptions.coerce(options, **legacy)
    with span("evaluate_loop"), _collectors(options):
        return _evaluate_loop(compiled, machine, n, options)


def _evaluate_loop(
    compiled: CompiledLoop,
    machine: MachineConfig,
    n: int | None,
    options: EvalOptions,
) -> LoopEvaluation:
    if options.cache is not None:
        with span("schedule"):
            sched_list, sched_new = options.cache.schedules(
                compiled,
                machine,
                options.list_priority,
                options.sync_options,
                verify=options.verify,
            )
    else:
        with span("schedule"):
            sched_list = list_schedule(
                compiled.lowered, compiled.graph, machine, options.list_priority
            )
            sched_new = sync_schedule(
                compiled.lowered, compiled.graph, machine, options.sync_options
            )
        if options.verify:
            with span("verify"):
                assert_valid(sched_list, compiled.graph)
                assert_valid(sched_new, compiled.graph)
    with span("simulate"):
        sim_list = simulate_doacross(
            sched_list, n, exact_simulation=options.exact_simulation,
            faults=options.faults,
        )
        sim_new = simulate_doacross(
            sched_new, n, exact_simulation=options.exact_simulation,
            faults=options.faults,
        )
    if active_metrics() is not None or context_metrics() is not None:
        _record_evaluation_metrics(
            compiled, (("list", sched_list, sim_list), ("new", sched_new, sim_new))
        )
    if options.check_semantics:
        with span("semantics"):
            reference = run_serial(compiled.synced.loop, MemoryImage())
            for sched, sim in ((sched_list, sim_list), (sched_new, sim_new)):
                result = execute_parallel(
                    sched,
                    MemoryImage(),
                    n,
                    max_cycles=options.max_cycles,
                    faults=options.faults,
                    graph=compiled.graph,
                )
                if result.memory != reference:
                    raise AssertionError(
                        f"{sched.scheduler_name}: parallel memory differs from serial: "
                        f"{result.memory.diff(reference)[:5]}"
                    )
                if result.parallel_time != sim.parallel_time:
                    raise AssertionError(
                        f"{sched.scheduler_name}: executor time {result.parallel_time} "
                        f"!= timing simulation {sim.parallel_time}"
                    )
    return LoopEvaluation(
        compiled=compiled,
        machine=machine,
        n=sim_list.n,
        schedule_list=sched_list,
        schedule_new=sched_new,
        t_list=sim_list.parallel_time,
        t_new=sim_new.parallel_time,
        sim_list=sim_list,
        sim_new=sim_new,
    )


@dataclass
class CorpusEvaluation:
    """Summed times over a corpus on one machine (one Table 2 cell pair)."""

    name: str
    machine: MachineConfig
    evaluations: list[LoopEvaluation] = field(default_factory=list)
    fallback_reason: str | None = None
    """Why a requested process-pool fan-out stayed serial (``None`` when
    the evaluation ran as requested); see
    :attr:`repro.perf.parallel.ParallelEvaluator.fallback_reason`."""
    failures: list[FailureRecord] = field(default_factory=list)
    """Loops quarantined under ``EvalOptions(robust=RobustPolicy(...))``:
    one structured record per loop whose evaluation raised, instead of the
    exception killing the whole sweep.  Empty without a policy (the
    exception propagates, the pre-robustness behaviour)."""

    @property
    def t_list(self) -> int:
        return sum(e.t_list for e in self.evaluations)

    @property
    def t_new(self) -> int:
        return sum(e.t_new for e in self.evaluations)

    @property
    def improvement(self) -> float:
        return improvement_percent(self.t_list, self.t_new)


def _compile(loop: Loop | str, options: EvalOptions) -> CompiledLoop:
    if options.cache is not None:
        return options.cache.compile(loop, options.apply_restructuring, options.fuse)
    return compile_loop(loop, options)


def evaluate_corpus(
    name: str,
    loops: list[Loop],
    machine: MachineConfig,
    n: int | None = None,
    options: EvalOptions | None = None,
    **legacy,
) -> CorpusEvaluation:
    """Compile and evaluate every loop of a corpus on one machine.

    With ``options.batch`` the whole corpus is answered by the
    vectorized :class:`~repro.perf.batch.BatchEvaluator` (compile and
    schedule each unique loop once, one flat closed-form pass for every
    cell); requests the batch engine cannot honour exactly fall back to
    the per-loop path below with ``fallback_reason`` recording why.
    With ``options.jobs > 1`` the loops are fanned out over a
    :class:`~repro.perf.parallel.ParallelEvaluator` (results are
    identical to the serial order either way).  Legacy keyword arguments
    are deprecated shims onto ``options``.
    """
    options = EvalOptions.coerce(options, **legacy)
    batch_fallback: str | None = None
    if options.batch:
        from repro.perf.batch import batch_incompatibility, shared_batch_evaluator

        reason = batch_incompatibility(options)
        if reason is None:
            return shared_batch_evaluator().evaluate_corpus(
                name, loops, machine, n, options
            )
        batch_fallback = f"batch engine declined: {reason}"
        metric_count("perf.batch.fallback")
    with span("evaluate_corpus", corpus=name, machine=machine.name), _collectors(
        options
    ):
        if options.jobs > 1 and len(loops) > 1:
            from repro.perf.parallel import ParallelEvaluator

            evaluator = ParallelEvaluator(
                max_workers=options.jobs, policy=options.robust
            )
            per_loop = evaluator.evaluate_corpora(
                [(name, [loop], machine) for loop in loops],
                n=n,
                options=options.replace(
                    jobs=1, tracer=None, metrics=None, journal=None, cache=None,
                    ledger=None, progress=False,
                ),
            )
            pool_reason = evaluator.fallback_reason
            if batch_fallback is not None:
                pool_reason = (
                    batch_fallback
                    if pool_reason is None
                    else f"{batch_fallback}; {pool_reason}"
                )
            result = CorpusEvaluation(
                name=name, machine=machine, fallback_reason=pool_reason
            )
            for index, sub in enumerate(per_loop):
                result.evaluations.extend(sub.evaluations)
                # Each fanned-out job holds exactly one loop, so its failure
                # records re-index to the loop's position in this corpus.
                result.failures.extend(
                    FailureRecord(
                        kind=f.kind,
                        name=f.name,
                        index=index,
                        error_type=f.error_type,
                        message=f.message,
                    )
                    for f in sub.failures
                )
            return result
        result = CorpusEvaluation(
            name=name, machine=machine, fallback_reason=batch_fallback
        )
        loop_options = options if options.jobs == 1 else options.replace(jobs=1)
        quarantine = options.robust is not None and options.robust.quarantine
        for index, loop in enumerate(loops):
            try:
                compiled = _compile(loop, loop_options)
                with span("evaluate_loop"):
                    evaluation = _evaluate_loop(compiled, machine, n, loop_options)
            except Exception as err:
                if not quarantine:
                    raise
                metric_count("robust.quarantine.loops")
                result.failures.append(
                    FailureRecord.from_exception("loop", name, index, err)
                )
                emit_progress(
                    "corpus", index + 1, len(loops),
                    message=f"{name}@{machine.name}",
                    quarantined=len(result.failures),
                )
                continue
            result.evaluations.append(evaluation)
            emit_progress(
                "corpus", index + 1, len(loops),
                message=f"{name}@{machine.name}",
                quarantined=len(result.failures),
            )
        return result


@dataclass
class ProgramEvaluation:
    """Per-loop results for one compilation unit, plus the skipped loops.

    The paper's methodology: DOACROSS loops are scheduled and measured;
    DOALL loops need no synchronization (both schedulers tie at ``l``, so
    they are measured but contribute no improvement); SERIAL loops are
    recorded and skipped, exactly like the study's unparallelizable
    leftovers.
    """

    program: "object"
    machine: MachineConfig
    evaluations: list[LoopEvaluation] = field(default_factory=list)
    serial_loops: list[int] = field(default_factory=list)  # loop indexes skipped
    failures: list[FailureRecord] = field(default_factory=list)
    """Job-level quarantine records from a hardened sweep (see
    :attr:`CorpusEvaluation.failures`)."""

    @property
    def t_list(self) -> int:
        return sum(e.t_list for e in self.evaluations)

    @property
    def t_new(self) -> int:
        return sum(e.t_new for e in self.evaluations)

    @property
    def improvement(self) -> float:
        return improvement_percent(self.t_list, self.t_new)


def evaluate_program(
    program_or_source,
    machine: MachineConfig,
    n: int | None = None,
    options: EvalOptions | None = None,
    **legacy,
) -> ProgramEvaluation:
    """Evaluate every loop of a compilation unit (Fig. 5 at program scope).

    ``options`` behaves as in :func:`evaluate_corpus` (``jobs`` applies
    to corpus/sweep drivers, not within one program).
    """
    from repro.ir.parser import parse_program

    options = EvalOptions.coerce(options, **legacy)
    with span("evaluate_program", machine=machine.name), _collectors(options):
        if isinstance(program_or_source, str):
            with span("parse"):
                program = parse_program(program_or_source)
        else:
            program = program_or_source
        result = ProgramEvaluation(program=program, machine=machine)
        for index, loop in enumerate(program.loops):
            try:
                compiled = _compile(loop, options)
            except ValueError:
                result.serial_loops.append(index)
                continue
            with span("evaluate_loop"):
                result.evaluations.append(
                    _evaluate_loop(compiled, machine, n, options)
                )
        return result
