"""End-to-end pipeline: the paper's Fig. 5 statistical model as a library.

``source text → parse → dependence analysis → restructuring (induction /
reduction / scalar expansion) → synchronization insertion → DLX lowering →
DFG with sync arcs → schedule (list and sync-aware) → DOACROSS timing
simulation``.

:func:`compile_loop` runs the front half once; :func:`evaluate_loop` runs
both schedulers on a machine and simulates; :func:`evaluate_corpus` sums a
benchmark corpus the way the paper's Table 2 does.

Sweep-scale helpers (see :mod:`repro.perf` and ``docs/performance.md``):
every driver accepts a ``cache`` (:class:`repro.perf.CompileCache`) so
repeated sweep points reuse compilations and schedules, and an
``exact_simulation`` flag that forces the full event walk instead of the
analytic fast path.  All stages report wall-clock to the active
:class:`~repro.perf.profile.StageProfiler` (``repro --profile``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.codegen import FuseStore, LoweredLoop, lower_loop
from repro.deps import LoopClass
from repro.dfg import DataFlowGraph, build_dfg
from repro.ir.ast_nodes import Loop
from repro.ir.parser import parse_loop
from repro.perf.profile import profiled
from repro.sched import (
    MachineConfig,
    Priority,
    Schedule,
    SyncSchedulerOptions,
    assert_valid,
    list_schedule,
    sync_schedule,
)
from repro.sim import MemoryImage, execute_parallel, run_serial, simulate_doacross
from repro.sim.metrics import improvement_percent
from repro.sync import SyncedLoop, insert_synchronization
from repro.transforms import RestructureResult, restructure

if TYPE_CHECKING:  # pragma: no cover - repro.perf.cache imports this module
    from repro.perf.cache import CompileCache


@dataclass
class CompiledLoop:
    """Everything machine-independent about one loop."""

    source: Loop
    restructured: RestructureResult
    synced: SyncedLoop
    lowered: LoweredLoop
    graph: DataFlowGraph

    @property
    def classification(self) -> LoopClass:
        return self.restructured.classification


def compile_loop(
    loop: Loop | str,
    apply_restructuring: bool = True,
    fuse: FuseStore = FuseStore.BEFORE_SEND,
) -> CompiledLoop:
    """Front half of the pipeline.  Raises ``ValueError`` for SERIAL loops
    (the paper drops them from the study too)."""
    if isinstance(loop, str):
        with profiled("parse"):
            loop = parse_loop(loop)
    with profiled("deps"):
        if apply_restructuring:
            restructured = restructure(loop)
        else:
            restructured = restructure(
                loop, apply_induction=False, apply_expansion=False, apply_reduction=False
            )
    if restructured.classification is LoopClass.SERIAL:
        raise ValueError("loop is SERIAL after restructuring; cannot be DOACROSS-scheduled")
    with profiled("sync"):
        synced = insert_synchronization(restructured.loop, restructured.graph)
    with profiled("lower"):
        lowered = lower_loop(synced, fuse=fuse)
    with profiled("dfg"):
        graph = build_dfg(lowered)
    return CompiledLoop(
        source=loop,
        restructured=restructured,
        synced=synced,
        lowered=lowered,
        graph=graph,
    )


@dataclass
class LoopEvaluation:
    """Both schedulers' results for one loop on one machine."""

    compiled: CompiledLoop
    machine: MachineConfig
    n: int
    schedule_list: Schedule
    schedule_new: Schedule
    t_list: int
    t_new: int

    @property
    def improvement(self) -> float:
        return improvement_percent(self.t_list, self.t_new)


def evaluate_loop(
    compiled: CompiledLoop,
    machine: MachineConfig,
    n: int | None = None,
    verify: bool = True,
    check_semantics: bool = False,
    list_priority: Priority = Priority.PROGRAM_ORDER,
    sync_options: SyncSchedulerOptions | None = None,
    exact_simulation: bool = False,
    cache: "CompileCache | None" = None,
) -> LoopEvaluation:
    """Schedule with both algorithms and simulate the DOACROSS execution.

    ``verify`` re-checks both schedules against the DFG and machine;
    ``check_semantics`` additionally executes both schedules against real
    memory and compares with serial execution (slower; used by tests).
    ``cache`` memoizes the (list, sync) schedule pair per machine and
    scheduler options; ``exact_simulation`` disables the analytic fast
    path of :func:`repro.sim.simulate_doacross`.
    """
    if cache is not None:
        with profiled("schedule"):
            sched_list, sched_new = cache.schedules(
                compiled, machine, list_priority, sync_options, verify=verify
            )
    else:
        with profiled("schedule"):
            sched_list = list_schedule(compiled.lowered, compiled.graph, machine, list_priority)
            sched_new = sync_schedule(compiled.lowered, compiled.graph, machine, sync_options)
        if verify:
            with profiled("verify"):
                assert_valid(sched_list, compiled.graph)
                assert_valid(sched_new, compiled.graph)
    with profiled("simulate"):
        sim_list = simulate_doacross(sched_list, n, exact_simulation=exact_simulation)
        sim_new = simulate_doacross(sched_new, n, exact_simulation=exact_simulation)
    if check_semantics:
        with profiled("semantics"):
            reference = run_serial(compiled.synced.loop, MemoryImage())
            for sched, sim in ((sched_list, sim_list), (sched_new, sim_new)):
                result = execute_parallel(sched, MemoryImage(), n)
                if result.memory != reference:
                    raise AssertionError(
                        f"{sched.scheduler_name}: parallel memory differs from serial: "
                        f"{result.memory.diff(reference)[:5]}"
                    )
                if result.parallel_time != sim.parallel_time:
                    raise AssertionError(
                        f"{sched.scheduler_name}: executor time {result.parallel_time} "
                        f"!= timing simulation {sim.parallel_time}"
                    )
    return LoopEvaluation(
        compiled=compiled,
        machine=machine,
        n=sim_list.n,
        schedule_list=sched_list,
        schedule_new=sched_new,
        t_list=sim_list.parallel_time,
        t_new=sim_new.parallel_time,
    )


@dataclass
class CorpusEvaluation:
    """Summed times over a corpus on one machine (one Table 2 cell pair)."""

    name: str
    machine: MachineConfig
    evaluations: list[LoopEvaluation] = field(default_factory=list)

    @property
    def t_list(self) -> int:
        return sum(e.t_list for e in self.evaluations)

    @property
    def t_new(self) -> int:
        return sum(e.t_new for e in self.evaluations)

    @property
    def improvement(self) -> float:
        return improvement_percent(self.t_list, self.t_new)


def _compile(
    loop: Loop | str,
    apply_restructuring: bool,
    fuse: FuseStore,
    cache: "CompileCache | None",
) -> CompiledLoop:
    if cache is not None:
        return cache.compile(loop, apply_restructuring, fuse)
    return compile_loop(loop, apply_restructuring, fuse)


def evaluate_corpus(
    name: str,
    loops: list[Loop],
    machine: MachineConfig,
    n: int | None = None,
    apply_restructuring: bool = True,
    fuse: FuseStore = FuseStore.BEFORE_SEND,
    cache: "CompileCache | None" = None,
    **kwargs,
) -> CorpusEvaluation:
    """Compile and evaluate every loop of a corpus on one machine.

    ``apply_restructuring`` and ``fuse`` forward to :func:`compile_loop`
    (and into the cache key when ``cache`` is given); remaining keyword
    arguments forward to :func:`evaluate_loop`.
    """
    result = CorpusEvaluation(name=name, machine=machine)
    for loop in loops:
        compiled = _compile(loop, apply_restructuring, fuse, cache)
        result.evaluations.append(
            evaluate_loop(compiled, machine, n, cache=cache, **kwargs)
        )
    return result


@dataclass
class ProgramEvaluation:
    """Per-loop results for one compilation unit, plus the skipped loops.

    The paper's methodology: DOACROSS loops are scheduled and measured;
    DOALL loops need no synchronization (both schedulers tie at ``l``, so
    they are measured but contribute no improvement); SERIAL loops are
    recorded and skipped, exactly like the study's unparallelizable
    leftovers.
    """

    program: "object"
    machine: MachineConfig
    evaluations: list[LoopEvaluation] = field(default_factory=list)
    serial_loops: list[int] = field(default_factory=list)  # loop indexes skipped

    @property
    def t_list(self) -> int:
        return sum(e.t_list for e in self.evaluations)

    @property
    def t_new(self) -> int:
        return sum(e.t_new for e in self.evaluations)

    @property
    def improvement(self) -> float:
        return improvement_percent(self.t_list, self.t_new)


def evaluate_program(
    program_or_source,
    machine: MachineConfig,
    n: int | None = None,
    apply_restructuring: bool = True,
    fuse: FuseStore = FuseStore.BEFORE_SEND,
    cache: "CompileCache | None" = None,
    **kwargs,
) -> ProgramEvaluation:
    """Evaluate every loop of a compilation unit (Fig. 5 at program scope).

    Compile options and ``cache`` behave as in :func:`evaluate_corpus`.
    """
    from repro.ir.parser import parse_program

    if isinstance(program_or_source, str):
        with profiled("parse"):
            program = parse_program(program_or_source)
    else:
        program = program_or_source
    result = ProgramEvaluation(program=program, machine=machine)
    for index, loop in enumerate(program.loops):
        try:
            compiled = _compile(loop, apply_restructuring, fuse, cache)
        except ValueError:
            result.serial_loops.append(index)
            continue
        result.evaluations.append(
            evaluate_loop(compiled, machine, n, cache=cache, **kwargs)
        )
    return result
