"""Robustness layer: fault injection, deadlock diagnosis, hardened sweeps.

The paper's argument rests on synchronization correctness — a lost or
reordered ``Send_Signal`` turns the LBD theorem's ``T = (n/d)(i-j) + l``
into a hang.  This package makes that failure mode *injectable*
(:mod:`repro.robust.faults`), *diagnosable*
(:mod:`repro.robust.deadlock`), *survivable* at sweep scale
(:mod:`repro.robust.harden`), and *continuously tested*
(:mod:`repro.robust.fuzz`, the seeded differential harness behind
``make fuzz-smoke``).  The same discipline extends up through the HTTP
surface: :class:`~repro.robust.harden.ServicePolicy` carries the
service-layer resilience knobs and :mod:`repro.robust.chaos` injects
failure into a live server (``repro loadtest --chaos``, behind
``make chaos-smoke``).  Everything the layer does is counted under the
``robust.*`` metrics namespace; with no faults configured every branch
is skipped and results are byte-identical to the pre-robustness
pipeline.  See ``docs/robustness.md``.
"""

from repro.robust.chaos import ChaosKill, ChaosPlan
from repro.robust.deadlock import BlockedWait, DeadlockError, find_waitfor_cycles
from repro.robust.faults import (
    FaultPlan,
    LatencyJitter,
    ProcessorStall,
    SignalDelay,
    SignalDrop,
)
from repro.robust.harden import (
    FailureRecord,
    RobustPolicy,
    ServicePolicy,
    retry_delay,
)

__all__ = [
    "BlockedWait",
    "ChaosKill",
    "ChaosPlan",
    "DeadlockError",
    "FailureRecord",
    "FaultPlan",
    "LatencyJitter",
    "ProcessorStall",
    "RobustPolicy",
    "ServicePolicy",
    "SignalDelay",
    "SignalDrop",
    "find_waitfor_cycles",
    "retry_delay",
]
