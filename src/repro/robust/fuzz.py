"""Seeded differential fuzzing of the simulators under fault injection.

The standing correctness tool behind ``make fuzz-smoke`` and ``repro
fuzz``: generate random DOACROSS loops (:mod:`repro.workloads`'s planted
-dependence generator) and random :class:`~repro.robust.faults.FaultPlan`
instances, then cross-check every implementation we have:

* the **analytic fast path** against the **exact event walk** with no
  faults (they must agree bit-for-bit whenever the fast path answers);
* the event walk **with faults** against the **semantic executor** with
  the same faults (identical ``parallel_time`` and ``finish_times``, and
  the executor's memory must still equal serial execution — injected
  *timing* faults must never corrupt *values*);
* a fault plan that **drops** a depended-upon delivery must raise
  :class:`~repro.robust.deadlock.DeadlockError` from *both* simulators,
  and the walk's orphaned ``(signal, producer-iteration)`` pair must be
  among the executor's;
* a non-empty plan must record an explicit ``fallback_reason`` instead of
  silently using the closed form.

Everything is a pure function of ``(seed, case index)``, so a CI failure
reproduces locally with the same seed, and
:attr:`FuzzFailure.reproduce` prints the exact case.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.obs.metrics import count as metric_count
from repro.robust.deadlock import DeadlockError
from repro.robust.faults import (
    FaultPlan,
    LatencyJitter,
    ProcessorStall,
    SignalDelay,
    SignalDrop,
)

__all__ = ["FuzzFailure", "FuzzReport", "run_fuzz"]


@dataclass(frozen=True)
class FuzzFailure:
    """One disagreement, with everything needed to replay it."""

    case: int
    kind: str
    detail: str
    reproduce: str

    def describe(self) -> str:
        return f"case {self.case} [{self.kind}]: {self.detail}\n  replay: {self.reproduce}"


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` run."""

    seed: int
    cases: int = 0
    skipped: int = 0  # generated loops that were SERIAL (nothing to check)
    fast_path_agreements: int = 0
    fault_fallbacks: int = 0  # non-empty plans with recorded fallback_reason
    deadlock_cases: int = 0
    executor_checks: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz seed={self.seed}: {self.cases} cases "
            f"({self.skipped} serial-skipped), "
            f"{self.fast_path_agreements} fast-path agreements, "
            f"{self.fault_fallbacks} recorded fault fallbacks, "
            f"{self.deadlock_cases} injected deadlocks diagnosed, "
            f"{self.executor_checks} executor differentials",
        ]
        for failure in self.failures:
            lines.append(failure.describe())
        lines.append("PASS" if self.ok else f"FAIL ({len(self.failures)} disagreement(s))")
        return "\n".join(lines)


def _random_config(rng: random.Random):
    from repro.workloads import GeneratorConfig, PlantedDep

    statements = rng.randint(1, 3)
    deps = []
    used = set()
    for _ in range(rng.randint(0, 2)):
        source = rng.randrange(statements)
        sink = rng.randrange(statements)
        if (source, sink) in used:
            continue
        used.add((source, sink))
        deps.append(
            PlantedDep(
                source,
                sink,
                rng.randint(1, 3),
                chained=source >= sink and rng.random() < 0.5,
            )
        )
    return GeneratorConfig(
        statements=statements,
        deps=tuple(deps),
        trip_count=rng.choice([10, 12, 14]),
        noise_reads=(0, 2),
        temp_scalars=rng.randint(0, 1),
        reductions=0,
        guard_prob=rng.choice([0.0, 0.5]),
        seed=rng.randrange(1_000_000),
    )


def _random_plan(rng: random.Random, pair_ids: list[int], n: int) -> FaultPlan:
    """A random *non-halting* plan: delays, stalls, jitter — no drops."""
    delays = tuple(
        SignalDelay(
            extra=rng.randint(1, 4),
            pair_id=rng.choice(pair_ids) if pair_ids and rng.random() < 0.7 else None,
            iteration=rng.randint(1, n) if rng.random() < 0.5 else None,
        )
        for _ in range(rng.randint(0, 2))
    )
    stalls = tuple(
        ProcessorStall(
            iteration=rng.randint(1, n),
            at_cycle=rng.randint(1, 6),
            cycles=rng.randint(1, 5),
        )
        for _ in range(rng.randint(0, 2))
    )
    jitter = (
        LatencyJitter(seed=rng.randrange(1_000_000), max_extra=rng.randint(1, 3), prob=0.4)
        if rng.random() < 0.5
        else None
    )
    return FaultPlan(delays=delays, stalls=stalls, jitter=jitter, label="fuzz")


def run_fuzz(
    cases: int = 200,
    seed: int = 0,
    executor_every: int = 1,
) -> FuzzReport:
    """Run ``cases`` random (loop, machine, scheduler, FaultPlan) cases.

    Deterministic in ``(cases, seed, executor_every)``.  The semantic
    executor (the expensive oracle) runs on every ``executor_every``-th
    case and on every drop case; the timing differentials run on all of
    them.  At the generator's trip counts the full 200-case default with
    the executor on every case finishes in ~1 s.
    """
    from repro.pipeline import compile_loop
    from repro.sched import figure4_machine, list_schedule, paper_machine, sync_schedule
    from repro.sim import MemoryImage, execute_parallel, run_serial, simulate_doacross
    from repro.workloads import generate_loop

    report = FuzzReport(seed=seed)
    machines = [paper_machine(2, 1), paper_machine(4, 2), figure4_machine()]
    schedulers = [list_schedule, sync_schedule]
    for index in range(cases):
        rng = random.Random(f"{seed}:{index}")
        config = _random_config(rng)
        replay = f"run_fuzz(cases=1, seed={seed}) at index {index}; config={config!r}"
        try:
            compiled = compile_loop(generate_loop(config))
        except ValueError:
            report.skipped += 1
            report.cases += 1
            continue
        machine = rng.choice(machines)
        scheduler = rng.choice(schedulers)
        schedule = scheduler(compiled.lowered, compiled.graph, machine)
        n = int(compiled.synced.loop.upper.value)
        pairs = list(compiled.synced.pairs)
        pair_ids = [pair.pair_id for pair in pairs]
        report.cases += 1
        metric_count("robust.fuzz.cases")

        def fail(kind: str, detail: str) -> None:
            report.failures.append(FuzzFailure(index, kind, detail, replay))

        # 1. fast path vs exact walk, no faults.
        fast = simulate_doacross(schedule, n)
        walk = simulate_doacross(schedule, n, exact_simulation=True)
        if (fast.parallel_time, fast.finish_times) != (
            walk.parallel_time,
            walk.finish_times,
        ):
            fail(
                "fastpath",
                f"dispatch={fast.dispatch}: {fast.parallel_time} != {walk.parallel_time}",
            )
            continue
        if fast.dispatch == "fast_path":
            report.fast_path_agreements += 1

        # 2. timing walk vs semantic executor under a non-halting plan.
        plan = _random_plan(rng, pair_ids, n)
        sim = simulate_doacross(schedule, n, faults=plan)
        if plan and sim.fallback_reason is None:
            fail("fallback", "non-empty plan but no fallback_reason recorded")
        if plan:
            report.fault_fallbacks += 1
        run_executor = index % executor_every == 0
        if run_executor:
            report.executor_checks += 1
            result = execute_parallel(schedule, MemoryImage(), n, faults=plan)
            if (result.parallel_time, result.finish_times) != (
                sim.parallel_time,
                sim.finish_times,
            ):
                fail(
                    "executor",
                    f"plan={plan!r}: executor {result.parallel_time} != "
                    f"walk {sim.parallel_time}",
                )
                continue
            reference = run_serial(compiled.synced.loop, MemoryImage())
            if result.memory != reference:
                fail(
                    "memory",
                    f"plan={plan!r}: timing faults corrupted memory: "
                    f"{result.memory.diff(reference)[:3]}",
                )
                continue

        # 3. a dropped depended-upon delivery must deadlock both simulators.
        droppable = [pair for pair in pairs if pair.distance < n]
        if not droppable:
            continue
        victim = rng.choice(droppable)
        producer = rng.randint(1, n - victim.distance)
        drop_plan = FaultPlan(
            drops=(SignalDrop(pair_id=victim.pair_id, iteration=producer),),
            label="fuzz-drop",
        )
        report.deadlock_cases += 1
        try:
            simulate_doacross(schedule, n, faults=drop_plan)
            fail("deadlock", f"walk completed despite dropped {victim.pair_id}/{producer}")
            continue
        except DeadlockError as err:
            walk_orphans = set(err.orphaned_signals())
        try:
            execute_parallel(schedule, MemoryImage(), n, faults=drop_plan)
            fail(
                "deadlock",
                f"executor completed despite dropped {victim.pair_id}/{producer}",
            )
            continue
        except DeadlockError as err:
            if not walk_orphans & set(err.orphaned_signals()):
                fail(
                    "deadlock",
                    f"orphan mismatch: walk {sorted(walk_orphans)} vs executor "
                    f"{sorted(err.orphaned_signals())}",
                )
    return report
