"""Chaos injection for the running service: :class:`ChaosPlan`.

:mod:`repro.robust.faults` injects failure into one *simulation*; this
module injects failure into the *service* around it, so the resilience
layer (``ServicePolicy`` admission control, deadlines, the circuit
breaker, crash-safe recovery — see ``docs/robustness.md``, "Operating
under failure") can be proven against a live server instead of trusted
on faith.  Driven by ``repro loadtest --chaos SPEC`` whose acceptance
bar is: zero malformed responses, every submission answered or honestly
shed, ledger complete.

Server-side primitives fire on the batcher's group *sequence* (1-based,
one per coalesced grid), so a seeded plan replays the same failure walk
every run:

* :class:`KillGrid` — raise :class:`ChaosKill` inside the batch-grid
  leg, exactly as a dead worker pool would: feeds the circuit breaker.
* :class:`SlowGroup` — sleep before evaluating a group: makes queued
  deadlines expire and admission limits fill.
* :class:`CorruptCache` — swap the engine's compile cache for one
  loaded from a garbage file between groups; exercises the tolerant
  :meth:`repro.perf.cache.CompileCache.load` path live (counter
  ``robust.cache.corrupt``).

Client-side primitives fire per request *index*, deterministically in
``(seed, fault, index)``:

* :class:`ClientFault` ``kind="malformed"`` — send a non-JSON body
  (expect a schema-stamped 400).
* :class:`ClientFault` ``kind="oversize"`` — send a body over the
  request cap (expect a schema-stamped 413).
* :class:`ClientFault` ``kind="disconnect"`` — open a streaming
  submission and hang up mid-stream (the server must not wedge or leak
  the batcher slot).

An empty plan is falsy and the service skips every chaos branch —
behaviour is byte-identical to a server built without one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

# The fault-plan grammar helpers are shared on purpose: same k=v spec
# shape, same pointing-finger parse errors.
from repro.robust.faults import (
    _float_arg,
    _int_arg,
    _opt_int,
    _parse_args,
    spec_error,
)

__all__ = [
    "ChaosKill",
    "ChaosPlan",
    "ClientFault",
    "CorruptCache",
    "KillGrid",
    "SlowGroup",
]

#: Client fault kinds a :class:`ClientFault` may carry (also the spec
#: keywords of :meth:`ChaosPlan.parse`).
CLIENT_FAULT_KINDS = ("malformed", "oversize", "disconnect")


class ChaosKill(RuntimeError):
    """The injected batch-grid failure.

    Raised inside the batcher's grid leg by a :class:`KillGrid` cadence,
    standing in for a ``BrokenProcessPool`` / wedged grid.  It feeds the
    circuit breaker like any real grid failure; with no breaker
    configured it surfaces to clients as the same 500 a real crash
    would.
    """


def _fires(every: int, times: int | None, sequence: int) -> bool:
    """Does a cadence of ``every`` (capped at ``times`` firings) fire on
    the 1-based ``sequence``?  Pure, so a seeded run replays exactly."""
    if sequence < 1 or sequence % every != 0:
        return False
    return times is None or sequence // every <= times


@dataclass(frozen=True)
class KillGrid:
    """Kill every ``every``-th batch grid (at most ``times`` of them)."""

    every: int
    times: int | None = None

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError("every must be >= 1")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 (or None)")

    def fires(self, sequence: int) -> bool:
        return _fires(self.every, self.times, sequence)


@dataclass(frozen=True)
class SlowGroup:
    """Stall every ``every``-th group ``delay_s`` seconds pre-evaluation."""

    delay_s: float
    every: int
    times: int | None = None

    def __post_init__(self) -> None:
        if self.delay_s <= 0:
            raise ValueError("delay_s must be positive")
        if self.every < 1:
            raise ValueError("every must be >= 1")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 (or None)")

    def fires(self, sequence: int) -> bool:
        return _fires(self.every, self.times, sequence)


@dataclass(frozen=True)
class CorruptCache:
    """Corrupt the compile cache before every ``every``-th group."""

    every: int
    times: int | None = None

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError("every must be >= 1")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 (or None)")

    def fires(self, sequence: int) -> bool:
        return _fires(self.every, self.times, sequence)


@dataclass(frozen=True)
class ClientFault:
    """With probability ``prob``, a loadtest request is replaced by a
    hostile one of ``kind`` (see :data:`CLIENT_FAULT_KINDS`)."""

    kind: str
    prob: float

    def __post_init__(self) -> None:
        if self.kind not in CLIENT_FAULT_KINDS:
            raise ValueError(
                f"unknown client fault kind {self.kind!r}; "
                f"use one of {', '.join(CLIENT_FAULT_KINDS)}"
            )
        if not (0.0 < self.prob <= 1.0):
            raise ValueError("prob must be within (0, 1]")


@dataclass(frozen=True)
class ChaosPlan:
    """A reproducible set of service-level failures to inject.

    Falsy when empty.  Build directly, or parse CLI specs with
    :meth:`parse`::

        ChaosPlan(kills=(KillGrid(every=40),), seed=7)
        ChaosPlan.parse(["kill:every=40", "malformed:prob=0.05"], seed=7)
    """

    kills: tuple[KillGrid, ...] = ()
    slows: tuple[SlowGroup, ...] = ()
    corrupts: tuple[CorruptCache, ...] = ()
    client_faults: tuple[ClientFault, ...] = ()
    seed: int = 0
    #: Free-form label carried into diagnostics and the chaos summary.
    label: str = ""

    def __bool__(self) -> bool:
        return bool(self.kills or self.slows or self.corrupts or self.client_faults)

    # -- queries the server asks (by 1-based group sequence) -----------------

    def kills_grid(self, sequence: int) -> bool:
        return any(k.fires(sequence) for k in self.kills)

    def slow_delay(self, sequence: int) -> float:
        return sum(s.delay_s for s in self.slows if s.fires(sequence))

    def corrupts_cache(self, sequence: int) -> bool:
        return any(c.fires(sequence) for c in self.corrupts)

    # -- queries the loadtest client asks (by 0-based request index) ---------

    def client_fault(self, index: int) -> str | None:
        """The fault kind injected for request ``index``, or ``None``.

        A pure function of ``(seed, fault position, index)`` — the same
        plan and seed always corrupts the same requests, so a failing
        chaos run replays exactly.
        """
        for position, fault in enumerate(self.client_faults):
            rng = random.Random(f"{self.seed}:{fault.kind}:{position}:{index}")
            if rng.random() < fault.prob:
                return fault.kind
        return None

    def describe(self) -> str:
        """One line per injection, for diagnostics and CLI output."""
        lines: list[str] = []
        if self.label:
            lines.append(f"plan: {self.label}")
        for k in self.kills:
            lines.append(f"kill grid every {k.every} (times={_cap(k.times)})")
        for s in self.slows:
            lines.append(
                f"slow group +{s.delay_s}s every {s.every} (times={_cap(s.times)})"
            )
        for c in self.corrupts:
            lines.append(f"corrupt cache every {c.every} (times={_cap(c.times)})")
        for f in self.client_faults:
            lines.append(f"client {f.kind} prob={f.prob}")
        if self:
            lines.append(f"seed={self.seed}")
        return "\n".join(lines) if lines else "(empty plan)"

    # -- CLI spec parsing ----------------------------------------------------

    @classmethod
    def parse(
        cls, specs: list[str] | tuple[str, ...], seed: int = 0, label: str = ""
    ) -> "ChaosPlan":
        """Build a plan from ``repro loadtest --chaos`` specs.

        Grammar (one injection per spec)::

            kill:every=K[,times=T]
            slow:delay=D,every=K[,times=T]
            corrupt:every=K[,times=T]
            malformed:prob=F
            oversize:prob=F
            disconnect:prob=F

        Errors name the offending token and its offset
        (:func:`repro.robust.faults.spec_error`).
        """
        kills: list[KillGrid] = []
        slows: list[SlowGroup] = []
        corrupts: list[CorruptCache] = []
        client_faults: list[ClientFault] = []
        for spec in specs:
            kind, _, rest = spec.partition(":")
            kind = kind.strip().lower()
            args = _parse_args(spec, rest)
            try:
                if kind == "kill":
                    kills.append(
                        KillGrid(
                            every=_int_arg(spec, "every", args.pop("every")),
                            times=_opt_int(spec, "times", args.pop("times", None)),
                        )
                    )
                elif kind == "slow":
                    slows.append(
                        SlowGroup(
                            delay_s=_float_arg(spec, "delay", args.pop("delay")),
                            every=_int_arg(spec, "every", args.pop("every")),
                            times=_opt_int(spec, "times", args.pop("times", None)),
                        )
                    )
                elif kind == "corrupt":
                    corrupts.append(
                        CorruptCache(
                            every=_int_arg(spec, "every", args.pop("every")),
                            times=_opt_int(spec, "times", args.pop("times", None)),
                        )
                    )
                elif kind in CLIENT_FAULT_KINDS:
                    client_faults.append(
                        ClientFault(
                            kind=kind,
                            prob=_float_arg(spec, "prob", args.pop("prob")),
                        )
                    )
                else:
                    raise spec_error(
                        spec,
                        kind or spec,
                        "unknown chaos kind; use kill / slow / corrupt / "
                        "malformed / oversize / disconnect",
                    )
            except KeyError as err:
                raise spec_error(
                    spec, kind, f"missing required argument {err}"
                ) from None
            if args:
                raise spec_error(
                    spec,
                    sorted(args)[0],
                    f"unknown argument(s): {sorted(args)}",
                )
        return cls(
            kills=tuple(kills),
            slows=tuple(slows),
            corrupts=tuple(corrupts),
            client_faults=tuple(client_faults),
            seed=seed,
            label=label,
        )


def _cap(times: int | None) -> str:
    return "inf" if times is None else str(times)
