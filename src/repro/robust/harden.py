"""Degradation policy for hardened sweeps: :class:`RobustPolicy`.

A corpus sweep over millions of loops cannot afford to die with its
first poisoned workload, hung worker, or OOM-killed pool.  The policy
object collects the degradation knobs in one frozen value, threaded as
``EvalOptions(robust=...)`` into :func:`repro.pipeline.evaluate_corpus`
and :class:`repro.perf.parallel.ParallelEvaluator`:

* ``chunk_timeout`` — seconds a pooled chunk may run before the pool is
  declared wedged; the evaluator abandons it and re-runs the unfinished
  chunks serially in-process (counter ``robust.parallel.timeouts``).
* ``max_retries`` / ``retry_backoff`` — a chunk whose worker *raised* is
  resubmitted up to ``max_retries`` times with exponential backoff
  before the serial fallback (counter ``robust.parallel.retries``).
* ``quarantine`` — a loop evaluation that raises yields a structured
  :class:`FailureRecord` on the corpus result instead of killing the
  sweep (counter ``robust.quarantine.loops``).

``BrokenProcessPool`` recovery needs no knob: it is always on — the
surviving chunks' results are kept and the dead chunks re-run serially
(counter ``robust.parallel.broken_pool``).  The degradation matrix
lives in ``docs/robustness.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["FailureRecord", "RobustPolicy"]


@dataclass(frozen=True)
class RobustPolicy:
    """Degradation knobs for one evaluation run (all off ⇒ fail fast,
    the pre-robustness behaviour)."""

    chunk_timeout: float | None = None  # seconds; None = wait forever
    max_retries: int = 1
    retry_backoff: float = 0.05  # seconds; doubles per retry
    quarantine: bool = True

    def __post_init__(self) -> None:
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValueError("chunk_timeout must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")


@dataclass(frozen=True)
class FailureRecord:
    """One quarantined failure: what died, where, and why.

    ``kind`` is ``"loop"`` (one loop evaluation raised inside a corpus)
    or ``"job"`` (a whole sweep job failed after the pool's retries).
    ``index`` is the loop's position in its corpus (or the job's position
    in the sweep), so a merged result stays index-aligned with its
    input.
    """

    kind: str
    name: str
    index: int
    error_type: str
    message: str

    def describe(self) -> str:
        return (
            f"{self.kind} {self.name!r}[{self.index}] failed: "
            f"{self.error_type}: {self.message}"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "index": self.index,
            "error_type": self.error_type,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FailureRecord":
        """Rebuild a record from its :meth:`as_dict` form (ledger replay)."""
        return cls(
            kind=data["kind"],
            name=data["name"],
            index=data["index"],
            error_type=data["error_type"],
            message=data["message"],
        )

    @classmethod
    def from_exception(
        cls, kind: str, name: str, index: int, error: BaseException
    ) -> "FailureRecord":
        return cls(
            kind=kind,
            name=name,
            index=index,
            error_type=type(error).__name__,
            message=str(error),
        )
