"""Degradation policy for hardened sweeps: :class:`RobustPolicy`.

A corpus sweep over millions of loops cannot afford to die with its
first poisoned workload, hung worker, or OOM-killed pool.  The policy
object collects the degradation knobs in one frozen value, threaded as
``EvalOptions(robust=...)`` into :func:`repro.pipeline.evaluate_corpus`
and :class:`repro.perf.parallel.ParallelEvaluator`:

* ``chunk_timeout`` — seconds a pooled chunk may run before the pool is
  declared wedged; the evaluator abandons it and re-runs the unfinished
  chunks serially in-process (counter ``robust.parallel.timeouts``).
* ``max_retries`` / ``retry_backoff`` — a chunk whose worker *raised* is
  resubmitted up to ``max_retries`` times with seeded full-jitter
  exponential backoff (:func:`retry_delay`) before the serial fallback
  (counter ``robust.parallel.retries``).
* ``quarantine`` — a loop evaluation that raises yields a structured
  :class:`FailureRecord` on the corpus result instead of killing the
  sweep (counter ``robust.quarantine.loops``).

``BrokenProcessPool`` recovery needs no knob: it is always on — the
surviving chunks' results are kept and the dead chunks re-run serially
(counter ``robust.parallel.broken_pool``).  The degradation matrix
lives in ``docs/robustness.md``.

:class:`ServicePolicy` is the service-layer mirror (PR 9): where
``RobustPolicy`` degrades one *evaluation*, ``ServicePolicy`` degrades
the *HTTP service* around it — admission limits (shed with 429),
per-request deadlines (abandon with 504), and the circuit breaker that
routes around a failing batch grid.  Threaded into
:class:`repro.service.server.ReproService`; see ``docs/robustness.md``,
"Operating under failure".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

__all__ = ["FailureRecord", "RobustPolicy", "ServicePolicy", "retry_delay"]


@dataclass(frozen=True)
class RobustPolicy:
    """Degradation knobs for one evaluation run (all off ⇒ fail fast,
    the pre-robustness behaviour)."""

    chunk_timeout: float | None = None  # seconds; None = wait forever
    max_retries: int = 1
    retry_backoff: float = 0.05  # seconds; doubles per retry, full jitter
    quarantine: bool = True
    #: Seed for the retry jitter (see :func:`retry_delay`).  Part of the
    #: policy so two runs of the same policy draw the same delays.
    retry_jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValueError("chunk_timeout must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")


def retry_delay(policy: RobustPolicy, lane: int, attempt: int) -> float:
    """The seconds to sleep before retry ``attempt`` of ``lane``.

    Full jitter over the exponential ceiling: a uniform draw from
    ``[0, retry_backoff * 2**attempt]``, seeded by
    ``(retry_jitter_seed, lane, attempt)`` so parallel lanes that failed
    together do not retry in lockstep (which re-creates the very
    contention that made them fail) while any given run stays exactly
    reproducible.  ``retry_backoff=0`` returns exactly ``0.0`` — tests
    that arm retries without wanting wall-clock delay stay instant.
    """
    ceiling = policy.retry_backoff * (2 ** attempt)
    if ceiling <= 0:
        return 0.0
    rng = random.Random(f"{policy.retry_jitter_seed}:{lane}:{attempt}")
    return rng.uniform(0.0, ceiling)


@dataclass(frozen=True)
class ServicePolicy:
    """Resilience knobs for the long-lived service (all off ⇒ the
    pre-resilience behaviour: unbounded queue, no deadlines, no breaker).

    * ``max_queue_depth`` / ``max_inflight`` — admission control: a
      submission arriving with that many already queued (or admitted but
      unfinished) is shed with a schema-stamped 429 carrying a
      ``Retry-After`` derived from the current drain rate (counter
      ``service.request.shed``).
    * ``deadline_s`` — default per-request deadline; requests may tighten
      or loosen it per body (``deadline_s`` key).  An expired submission
      is abandoned *before* grid evaluation and answered 504 with a
      structured hint naming where the budget went.
    * ``chunk_timeout`` — the :class:`RobustPolicy` knob promoted to the
      service layer: how long a handler waits on a grid that may be
      wedged before answering 504 (the batcher cannot be interrupted,
      but its clients stop waiting honestly).
    * ``breaker_threshold`` / ``breaker_cooldown_s`` — consecutive
      batch-grid failures before the circuit opens (the service answers
      from the degraded per-loop path), and how long it stays open
      before half-opening with one probe grid.
    * ``journal_inflight`` — journal every admitted submission to the run
      ledger as ``outcome: "inflight"`` before evaluation, finalized
      after, so ``repro serve --recover`` can name exactly what a killed
      process lost.
    """

    max_queue_depth: int | None = None
    max_inflight: int | None = None
    deadline_s: float | None = None
    chunk_timeout: float | None = None
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 30.0
    journal_inflight: bool = True

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0 (or None)")
        if self.max_inflight is not None and self.max_inflight < 0:
            raise ValueError("max_inflight must be >= 0 (or None)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValueError("chunk_timeout must be positive (or None)")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_s < 0:
            raise ValueError("breaker_cooldown_s must be >= 0")


@dataclass(frozen=True)
class FailureRecord:
    """One quarantined failure: what died, where, and why.

    ``kind`` is ``"loop"`` (one loop evaluation raised inside a corpus)
    or ``"job"`` (a whole sweep job failed after the pool's retries).
    ``index`` is the loop's position in its corpus (or the job's position
    in the sweep), so a merged result stays index-aligned with its
    input.
    """

    kind: str
    name: str
    index: int
    error_type: str
    message: str

    def describe(self) -> str:
        return (
            f"{self.kind} {self.name!r}[{self.index}] failed: "
            f"{self.error_type}: {self.message}"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "index": self.index,
            "error_type": self.error_type,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FailureRecord":
        """Rebuild a record from its :meth:`as_dict` form (ledger replay)."""
        return cls(
            kind=data["kind"],
            name=data["name"],
            index=data["index"],
            error_type=data["error_type"],
            message=data["message"],
        )

    @classmethod
    def from_exception(
        cls, kind: str, name: str, index: int, error: BaseException
    ) -> "FailureRecord":
        return cls(
            kind=kind,
            name=name,
            index=index,
            error_type=type(error).__name__,
            message=str(error),
        )
