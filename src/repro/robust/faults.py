"""Deliberate mis-synchronization: the :class:`FaultPlan` fault model.

The paper's whole argument rests on synchronization correctness — a sink
must never run before its ``Wait_Signal``, and a lost or reordered signal
turns the LBD loop theorem's ``T = (n/d)(i−j) + l`` into a hang.  This
module lets the simulators *inject* exactly those failures on purpose, so
the deadlock detector (:mod:`repro.robust.deadlock`) and the differential
fuzz harness (:mod:`repro.robust.fuzz`) can prove we catch them.

Four fault primitives, all value objects:

* :class:`SignalDrop` — a ``Send_Signal`` delivery that never becomes
  visible.  The waiting iteration blocks forever; the detectors turn
  that into a structured :class:`~repro.robust.deadlock.DeadlockError`
  naming the orphaned ``(signal, producer-iteration)`` pair.
* :class:`SignalDelay` — a delivery that arrives ``extra`` cycles late
  (a slow interconnect hop).  Purely a timing fault: execution completes
  and the delay shows up in ``SimulationResult.stall_by_pair``.
* :class:`ProcessorStall` — a processor freezes for ``cycles`` cycles
  before issuing the bundle at one local issue cycle (an interrupt, a
  TLB miss, a cache-line steal).
* :class:`LatencyJitter` — seeded per-iteration memory/op latency noise:
  each iteration suffers at most one extra stall of ``1..max_extra``
  cycles at a pseudo-random local cycle, with probability ``prob``.
  Deterministic in ``(seed, iteration)``, so the exact event walk and
  the semantic executor inject *identical* noise regardless of
  evaluation order.

A :class:`FaultPlan` bundles any number of these and is threaded through
``EvalOptions(faults=...)``, :func:`repro.sim.multiproc.simulate_doacross`
and :func:`repro.sim.executor.execute_parallel`.  An *empty* plan is
falsy and the simulators skip every fault branch — results are
byte-identical to a run without the argument (enforced by
``tests/robust/test_zero_overhead.py``).  A non-empty plan disqualifies
the analytic fast path: :func:`~repro.sim.multiproc.simulate_doacross`
records ``fallback_reason`` and takes the exact walk rather than return
wrong cycle counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = [
    "FaultPlan",
    "LatencyJitter",
    "ProcessorStall",
    "SignalDelay",
    "SignalDrop",
    "spec_error",
]


def spec_error(spec: str, token: str, reason: str) -> ValueError:
    """A plan-spec parse error that names the offending token and its
    character offset inside ``spec`` — mirroring the service layer's
    structured-hint style, so a mistyped ``--inject``/``--chaos`` spec
    points at *where* it went wrong, not just that it did.  Shared with
    :meth:`repro.robust.chaos.ChaosPlan.parse`."""
    offset = spec.find(token)
    at = f" at offset {offset}" if offset >= 0 else ""
    return ValueError(f"bad spec {spec!r}: token {token!r}{at}: {reason}")


@dataclass(frozen=True)
class SignalDrop:
    """Drop the ``Send_Signal`` delivery of one (pair, producer) — or a
    whole family of them when a selector is left ``None``."""

    pair_id: int | None = None  # None = any pair
    iteration: int | None = None  # producer iteration; None = every iteration

    def matches(self, pair_id: int, producer_iteration: int) -> bool:
        return (self.pair_id is None or self.pair_id == pair_id) and (
            self.iteration is None or self.iteration == producer_iteration
        )


@dataclass(frozen=True)
class SignalDelay:
    """Deliver one (pair, producer)'s signal ``extra`` cycles late."""

    extra: int
    pair_id: int | None = None
    iteration: int | None = None

    def __post_init__(self) -> None:
        if self.extra < 0:
            raise ValueError("signal delay must be non-negative")

    def matches(self, pair_id: int, producer_iteration: int) -> bool:
        return (self.pair_id is None or self.pair_id == pair_id) and (
            self.iteration is None or self.iteration == producer_iteration
        )


@dataclass(frozen=True)
class ProcessorStall:
    """Freeze the processor running ``iteration`` for ``cycles`` cycles
    immediately before it issues the bundle at local cycle ``at_cycle``."""

    iteration: int
    at_cycle: int
    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ValueError("a processor stall must last at least one cycle")
        if self.at_cycle < 1:
            raise ValueError("at_cycle is a 1-based local issue cycle")


@dataclass(frozen=True)
class LatencyJitter:
    """Seeded memory/op latency noise: with probability ``prob`` an
    iteration stalls ``1..max_extra`` extra cycles at a pseudo-random
    local cycle.  A pure function of ``(seed, iteration)``."""

    seed: int
    max_extra: int = 2
    prob: float = 0.25

    def __post_init__(self) -> None:
        if self.max_extra < 1:
            raise ValueError("max_extra must be >= 1")
        if not (0.0 <= self.prob <= 1.0):
            raise ValueError("prob must be within [0, 1]")

    def sample(self, iteration: int, length: int) -> tuple[int, int] | None:
        """The injected ``(local_cycle, extra)`` for ``iteration`` on a
        schedule of ``length`` issue cycles, or ``None``."""
        if length < 1:
            return None
        # str seeds go through sha512 (stable across runs and processes,
        # unlike hash()), so both simulators draw identical noise.
        rng = random.Random(f"{self.seed}:{iteration}")
        if rng.random() >= self.prob:
            return None
        return rng.randint(1, length), rng.randint(1, self.max_extra)


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible set of synchronization/timing faults to inject.

    Falsy when empty; the simulators only pay for faults when the plan
    holds any.  Build directly, or parse CLI specs with :meth:`parse`::

        FaultPlan(drops=(SignalDrop(pair_id=1, iteration=3),))
        FaultPlan.parse(["drop:pair=1,iter=3", "delay:extra=2"])
    """

    drops: tuple[SignalDrop, ...] = ()
    delays: tuple[SignalDelay, ...] = ()
    stalls: tuple[ProcessorStall, ...] = ()
    jitter: LatencyJitter | None = None
    #: Free-form label carried into diagnostics ("scenario 7 of the fuzz run").
    label: str = ""

    def __bool__(self) -> bool:
        return bool(self.drops or self.delays or self.stalls or self.jitter)

    # -- queries the simulators ask ------------------------------------------

    def drops_signal(self, pair_id: int, producer_iteration: int) -> bool:
        return any(d.matches(pair_id, producer_iteration) for d in self.drops)

    def signal_delay(self, pair_id: int, producer_iteration: int) -> int:
        """Total extra visibility latency for one (pair, producer) signal."""
        return sum(
            d.extra for d in self.delays if d.matches(pair_id, producer_iteration)
        )

    def injected_stalls(self, iteration: int, length: int) -> list[tuple[int, int]]:
        """``(local_cycle, extra_cycles)`` events for one iteration, in
        local-cycle order: explicit :class:`ProcessorStall` entries plus
        the :class:`LatencyJitter` sample."""
        events = [
            (stall.at_cycle, stall.cycles)
            for stall in self.stalls
            if stall.iteration == iteration
        ]
        if self.jitter is not None:
            sampled = self.jitter.sample(iteration, length)
            if sampled is not None:
                events.append(sampled)
        events.sort()
        return events

    def worst_case_budget(self, n: int) -> int:
        """An upper bound on the extra cycles this plan can add to an
        ``n``-iteration execution — the fault term of
        :func:`repro.sim.executor.default_max_cycles`.  Every delay can
        compound through the cross-iteration chain, so per-iteration
        contributions are multiplied by ``n``."""
        budget = 0
        for delay in self.delays:
            budget += delay.extra * (n if delay.iteration is None else 1)
        budget += sum(stall.cycles for stall in self.stalls)
        if self.jitter is not None:
            budget += self.jitter.max_extra * n
        return budget * max(1, n)

    def describe(self) -> str:
        """One line per fault, for diagnostics and CLI output."""
        lines: list[str] = []
        if self.label:
            lines.append(f"plan: {self.label}")
        for d in self.drops:
            lines.append(
                f"drop signal (pair={_any(d.pair_id)}, iter={_any(d.iteration)})"
            )
        for d in self.delays:
            lines.append(
                f"delay signal +{d.extra} (pair={_any(d.pair_id)}, "
                f"iter={_any(d.iteration)})"
            )
        for s in self.stalls:
            lines.append(f"stall iter {s.iteration} at c{s.at_cycle} for {s.cycles}")
        if self.jitter is not None:
            lines.append(
                f"jitter seed={self.jitter.seed} max={self.jitter.max_extra} "
                f"prob={self.jitter.prob}"
            )
        return "\n".join(lines) if lines else "(empty plan)"

    # -- CLI spec parsing ----------------------------------------------------

    @classmethod
    def parse(cls, specs: list[str] | tuple[str, ...]) -> "FaultPlan":
        """Build a plan from ``repro simulate --inject`` specs.

        Grammar (one fault per spec)::

            drop[:pair=P][,iter=K]
            delay:extra=E[,pair=P][,iter=K]
            stall:iter=K,at=C,cycles=S
            jitter:seed=S[,max=M][,prob=F]
        """
        drops: list[SignalDrop] = []
        delays: list[SignalDelay] = []
        stalls: list[ProcessorStall] = []
        jitter: LatencyJitter | None = None
        for spec in specs:
            kind, _, rest = spec.partition(":")
            kind = kind.strip().lower()
            args = _parse_args(spec, rest)
            try:
                if kind == "drop":
                    drops.append(
                        SignalDrop(
                            pair_id=_opt_int(spec, "pair", args.pop("pair", None)),
                            iteration=_opt_int(spec, "iter", args.pop("iter", None)),
                        )
                    )
                elif kind == "delay":
                    delays.append(
                        SignalDelay(
                            extra=_int_arg(spec, "extra", args.pop("extra")),
                            pair_id=_opt_int(spec, "pair", args.pop("pair", None)),
                            iteration=_opt_int(spec, "iter", args.pop("iter", None)),
                        )
                    )
                elif kind == "stall":
                    stalls.append(
                        ProcessorStall(
                            iteration=_int_arg(spec, "iter", args.pop("iter")),
                            at_cycle=_int_arg(spec, "at", args.pop("at")),
                            cycles=_int_arg(spec, "cycles", args.pop("cycles")),
                        )
                    )
                elif kind == "jitter":
                    if jitter is not None:
                        raise ValueError("at most one jitter spec")
                    jitter = LatencyJitter(
                        seed=_int_arg(spec, "seed", args.pop("seed")),
                        max_extra=_int_arg(spec, "max", args.pop("max", "2")),
                        prob=_float_arg(spec, "prob", args.pop("prob", "0.25")),
                    )
                else:
                    raise spec_error(
                        spec,
                        kind or spec,
                        "unknown fault kind; use drop / delay / stall / jitter",
                    )
            except KeyError as err:
                raise spec_error(
                    spec, kind, f"missing required argument {err}"
                ) from None
            if args:
                raise spec_error(
                    spec,
                    sorted(args)[0],
                    f"unknown argument(s): {sorted(args)}",
                )
        return cls(
            drops=tuple(drops), delays=tuple(delays), stalls=tuple(stalls), jitter=jitter
        )


def _any(value: int | None) -> str:
    return "any" if value is None else str(value)


def _parse_args(spec: str, rest: str) -> dict[str, str]:
    """Split ``k=v,k=v`` argument text, pointing at any malformed token."""
    args: dict[str, str] = {}
    if rest.strip():
        for item in rest.split(","):
            key, sep, value = item.partition("=")
            if not sep:
                raise spec_error(spec, item, "expected key=value")
            args[key.strip().lower()] = value.strip()
    return args


def _int_arg(spec: str, key: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise spec_error(
            spec, value, f"argument {key!r} wants an integer"
        ) from None


def _float_arg(spec: str, key: str, value: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise spec_error(
            spec, value, f"argument {key!r} wants a number"
        ) from None


def _opt_int(spec: str, key: str, value: str | None) -> int | None:
    return None if value is None else _int_arg(spec, key, value)
