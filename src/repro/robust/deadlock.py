"""Structured deadlock detection and diagnosis.

The pre-robustness simulator could only say ``"exceeded max_cycles
(deadlock?)"`` after walking millions of useless cycles.  This module
replaces that with a wait-for-graph detector: the semantic executor
(:func:`repro.sim.executor.execute_parallel`) fires it the moment every
non-finished processor is blocked in a ``Wait_Signal`` with no signal in
flight, and the timing walk (:func:`repro.sim.multiproc.
simulate_doacross`) fires it the moment a wait depends on a delivery the
:class:`~repro.robust.faults.FaultPlan` dropped.

The result is a :class:`DeadlockError` carrying one :class:`BlockedWait`
per stuck processor, the orphaned ``(signal, producer-iteration)`` pairs
(deliveries that can never arrive: dropped, or owed by a producer that
finished without sending), and any wait-for cycles among live
processors.  :meth:`DeadlockError.render` draws the blocking state on
the schedule through :func:`repro.sched.gantt.sync_timeline` — the same
Fig. 4a/4b view ``repro explain`` uses — so a hang reads like a
diagnosis, not a timeout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.schedule import Schedule

__all__ = ["BlockedWait", "DeadlockError", "find_waitfor_cycles"]


@dataclass(frozen=True)
class BlockedWait:
    """One stuck processor: who waits, at which wait, for whose signal.

    ``orphaned`` is True when the awaited delivery can never arrive — the
    fault plan dropped it, or the producer iteration completed without
    its send becoming visible.  A non-orphaned blocked wait is stuck on a
    *live* producer; those participate in wait-for cycles.
    """

    processor: int  # processor rank (0-based)
    iteration: int  # the iteration blocked at the wait
    pair_id: int
    source_label: str
    producer_iteration: int
    wait_cycle: int  # local issue cycle of the blocked Wait_Signal
    orphaned: bool = False
    reason: str = ""

    def describe(self) -> str:
        state = "orphaned" if self.orphaned else "pending"
        line = (
            f"proc {self.processor}: iteration {self.iteration} blocked at "
            f"pair {self.pair_id}'s Wait_Signal (local c{self.wait_cycle}) for "
            f"signal ({self.source_label}, {self.producer_iteration}) [{state}]"
        )
        if self.reason:
            line += f" — {self.reason}"
        return line


class DeadlockError(RuntimeError):
    """All non-finished processors are blocked in ``Wait_Signal``.

    Structured: ``blocked`` lists every stuck processor, ``orphaned`` the
    subset whose awaited ``(signal, producer-iteration)`` delivery can
    never arrive, and ``cycles`` the wait-for cycles among live
    processors (processor-rank tuples).  ``at_cycle`` is the global cycle
    at which the detector fired (``None`` for the timing walk, which
    proves the hang without advancing a clock).
    """

    def __init__(
        self,
        blocked: tuple[BlockedWait, ...],
        at_cycle: int | None = None,
        plan_label: str = "",
    ) -> None:
        self.blocked = tuple(blocked)
        self.orphaned = tuple(b for b in self.blocked if b.orphaned)
        self.cycles = find_waitfor_cycles(self.blocked)
        self.at_cycle = at_cycle
        self.plan_label = plan_label
        super().__init__(self._message())

    def orphaned_signals(self) -> list[tuple[str, int]]:
        """The lost deliveries, as ``(signal label, producer iteration)``."""
        return [(b.source_label, b.producer_iteration) for b in self.orphaned]

    def _message(self) -> str:
        where = f" at cycle {self.at_cycle}" if self.at_cycle is not None else ""
        label = f" [{self.plan_label}]" if self.plan_label else ""
        head = (
            f"deadlock{where}{label}: {len(self.blocked)} processor(s) blocked "
            "in Wait_Signal"
        )
        lines = [head]
        for b in self.blocked:
            lines.append("  " + b.describe())
        for cycle in self.cycles:
            lines.append(
                "  wait-for cycle among processors: "
                + " -> ".join(str(rank) for rank in cycle + (cycle[0],))
            )
        if self.orphaned:
            pairs = ", ".join(
                f"({label}, {it})" for label, it in self.orphaned_signals()
            )
            lines.append(f"  orphaned signal(s): {pairs} — these can never arrive")
        return "\n".join(lines)

    def render(self, schedule: "Schedule") -> str:
        """The diagnosis plus the schedule's sync-pair timeline, with the
        blocked waits called out — the Fig. 4a view of the hang."""
        from repro.sched.gantt import sync_timeline

        lines = [str(self), "", sync_timeline(schedule)]
        for b in self.blocked:
            lines.append(
                f"blocked: P{b.pair_id} column, W row c{b.wait_cycle} — iteration "
                f"{b.iteration} holds here forever"
                + (
                    f" (producer iteration {b.producer_iteration}'s send was lost)"
                    if b.orphaned
                    else ""
                )
            )
        return "\n".join(lines)


def find_waitfor_cycles(
    blocked: tuple[BlockedWait, ...] | list[BlockedWait],
) -> tuple[tuple[int, ...], ...]:
    """Cycles in the wait-for graph over processor ranks.

    Each non-orphaned blocked wait is an edge ``waiter → owner`` where
    ``owner`` is the blocked processor running (or scheduled to run) the
    producer iteration, when that processor is itself blocked.  In a
    legal DOACROSS schedule signals only flow from lower to higher
    iterations, so a cycle means the schedule (or the executor) is
    broken — the detector reports it rather than assuming it away.
    """
    owner_of: dict[int, int] = {b.iteration: b.processor for b in blocked}
    edges: dict[int, int] = {}
    for b in blocked:
        if b.orphaned:
            continue
        owner = owner_of.get(b.producer_iteration)
        if owner is not None:
            edges[b.processor] = owner
    cycles: list[tuple[int, ...]] = []
    claimed: set[int] = set()
    for start in sorted(edges):
        if start in claimed:
            continue
        path: list[int] = []
        seen_at: dict[int, int] = {}
        node = start
        while node in edges and node not in claimed:
            if node in seen_at:
                cycle = tuple(path[seen_at[node] :])
                cycles.append(cycle)
                claimed.update(cycle)
                break
            seen_at[node] = len(path)
            path.append(node)
            node = edges[node]
        claimed.update(path)
    return tuple(cycles)
