"""DLX-style three-address code generation.

Lowers a synchronized loop body (:class:`repro.sync.SyncedLoop`) into the
instruction stream the schedulers and the simulator operate on — the format
of the paper's Fig. 2.  See :mod:`repro.codegen.isa` for the instruction
set and function-unit classes and :mod:`repro.codegen.lower` for the
lowering rules (LHS address first, operands left-to-right, value-numbered
address arithmetic, optional compute-into-store fusion before a send).
"""

from repro.codegen.isa import (
    FuClass,
    Instruction,
    MemAccess,
    Opcode,
    Operand,
    SyncInfo,
    render_instruction,
)
from repro.codegen.lower import FuseStore, LoweredLoop, lower_loop
from repro.codegen.listing import format_listing
from repro.codegen.regalloc import AllocationResult, allocate_registers

__all__ = [
    "AllocationResult",
    "FuClass",
    "FuseStore",
    "allocate_registers",
    "Instruction",
    "LoweredLoop",
    "MemAccess",
    "Opcode",
    "Operand",
    "SyncInfo",
    "format_listing",
    "lower_loop",
    "render_instruction",
]
