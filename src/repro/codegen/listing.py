"""Listing printer: renders a lowered loop the way the paper prints Fig. 2."""

from __future__ import annotations

from repro.codegen.isa import render_instruction
from repro.codegen.lower import LoweredLoop


def format_listing(lowered: LoweredLoop, numbered: bool = True) -> str:
    """One instruction per line, optionally with the 1-based Fig. 2 numbers."""
    lines = []
    for instr in lowered.instructions:
        text = render_instruction(instr)
        lines.append(f"{instr.iid}: {text}" if numbered else text)
    return "\n".join(lines)
