"""Lowering of a synchronized loop body to DLX-style three-address code.

The lowering rules are reverse-engineered from the paper's Fig. 2 listing
(validated token-for-token in ``tests/codegen/test_fig2.py``):

* Per assignment: the target's address arithmetic first, then the RHS
  operands left-to-right (subscript arithmetic, address scaling, load),
  each operator as soon as its operands are ready, the store last.
* Addresses are byte addresses: subscript values are scaled by the 4-byte
  word size on the shifter (``t1 <- 4 * I``).
* Integer (index) arithmetic is value-numbered across the whole body —
  Fig. 2 computes ``4 * I`` once (instruction 2) and reuses ``t1`` for
  ``B[I]``'s store, ``B[I]``'s reload and ``A[I]``'s store.  Loads and
  floating-point values are never value-numbered (memory may change).
* ``FuseStore.BEFORE_SEND`` reproduces Fig. 2's instruction 26
  (``A[t1] <- t18 + t21``): the final operation of a dependence-*source*
  statement — one immediately followed by its ``Send_Signal`` — is fused
  into the store, shortening the source→send chain.  ``NEVER``/``ALWAYS``
  are provided for ablations.
* Scalars written inside the loop live in shared memory (they are what the
  iterations communicate through); scalars only read (the index ``I``,
  bounds, loop invariants) live in registers and cost no instruction.

Deviation from the paper's listing, documented in EXPERIMENTS.md: Fig. 2's
instruction 21 reads ``G[t9] <- t17``, using the *unscaled* subscript and
leaving instruction 13 (``t10 <- 4 * t9``) dead; we take this as a typo and
emit ``G[t10] <- t17``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.deps.subscripts import Affine, affine_of
from repro.ir.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Const,
    Expr,
    SendSignal,
    UnaryOp,
    VarRef,
    WaitSignal,
)
from repro.ir.symbols import SymbolKind, SymbolTable, VarType
from repro.codegen.isa import (
    WORD_SIZE,
    FuClass,
    Instruction,
    MemAccess,
    Opcode,
    Operand,
    SyncInfo,
)
from repro.sync.insertion import SyncedLoop


class FuseStore(enum.Enum):
    """When to fuse a statement's final operation into its store."""

    NEVER = "never"
    BEFORE_SEND = "before_send"  # the paper's Fig. 2 behaviour
    ALWAYS = "always"


@dataclass
class LoweredLoop:
    """The instruction stream plus the maps the DFG builder needs.

    ``iid``s are 1-based listing positions.  ``ref_iids`` maps ``id(expr)``
    of each array/scalar reference in the source body to the instruction
    that performs the access (load for reads, store for the write), which is
    how synchronization-condition arcs find their Src/Snk instructions.

    ``id()`` keys do not survive pickling (every object gets a fresh id in
    the receiving process), so ``ref_objs`` keeps each registered reference
    object alongside its id and ``__getstate__``/``__setstate__`` ship the
    map as ``(ref, iid)`` pairs: the pickle memo preserves the identity the
    refs share with the nodes inside ``synced``, and the maps are rebuilt
    on the new ids.  This is what lets the compile cache's disk envelope
    and the process-pool workers exchange compiled loops.
    """

    synced: SyncedLoop
    symbols: SymbolTable
    instructions: list[Instruction] = field(default_factory=list)
    wait_iids: dict[int, int] = field(default_factory=dict)  # pair_id -> iid
    send_iids: dict[int, int] = field(default_factory=dict)  # pair_id -> iid
    ref_iids: dict[int, int] = field(default_factory=dict)  # id(ref expr) -> iid
    ref_objs: dict[int, object] = field(default_factory=dict)  # id(ref expr) -> expr

    def note_ref(self, ref: object, iid: int, keep_existing: bool = False) -> None:
        """Register ``ref``'s access instruction in ``ref_iids`` (and its
        object in ``ref_objs``, which keeps the map picklable)."""
        key = id(ref)
        if keep_existing and key in self.ref_iids:
            return
        self.ref_iids[key] = iid
        self.ref_objs[key] = ref

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("ref_iids")
        refs = state.pop("ref_objs")
        state["_ref_items"] = [(refs[key], iid) for key, iid in self.ref_iids.items()]
        return state

    def __setstate__(self, state: dict) -> None:
        items = state.pop("_ref_items")
        self.__dict__.update(state)
        self.ref_iids = {id(ref): iid for ref, iid in items}
        self.ref_objs = {id(ref): ref for ref, _iid in items}

    def __len__(self) -> int:
        return len(self.instructions)

    def instruction(self, iid: int) -> Instruction:
        instr = self.instructions[iid - 1]
        assert instr.iid == iid
        return instr

    def source_iids(self, pair_id: int) -> tuple[int, ...]:
        """Instructions that are the dependence-source events of a pair."""
        pair = self.synced.pair(pair_id)
        return tuple(sorted({self.ref_iids[id(d.source_ref)] for d in pair.deps}))

    def sink_iids(self, pair_id: int) -> tuple[int, ...]:
        """Instructions that are the dependence-sink events of a pair."""
        pair = self.synced.pair(pair_id)
        return tuple(sorted({self.ref_iids[id(d.sink_ref)] for d in pair.deps}))


class _Lowerer:
    def __init__(self, synced: SyncedLoop, symbols: SymbolTable, fuse: FuseStore) -> None:
        self.synced = synced
        self.symbols = symbols
        self.fuse = fuse
        self.out = LoweredLoop(synced=synced, symbols=symbols)
        self.temp_count = 0
        self.cse: dict[tuple, str] = {}
        self.types: dict[str, VarType] = {}
        self.written_scalars = {
            s.target.name
            for s in synced.loop.body
            if isinstance(s, Assign) and isinstance(s.target, VarRef)
        }
        self.stmt_pos = -1

    # -- plumbing -----------------------------------------------------------

    def new_temp(self, var_type: VarType) -> str:
        self.temp_count += 1
        name = f"t{self.temp_count}"
        self.types[name] = var_type
        return name

    def emit(self, **kwargs) -> Instruction:
        instr = Instruction(iid=len(self.out.instructions) + 1, stmt_pos=self.stmt_pos, **kwargs)
        self.out.instructions.append(instr)
        return instr

    def operand_type(self, op: Operand) -> VarType:
        if isinstance(op, int):
            return VarType.INT
        if isinstance(op, float):
            return VarType.REAL
        if op in self.types:
            return self.types[op]
        if op in self.symbols:
            return self.symbols[op].var_type
        return VarType.INT

    # -- expression lowering -------------------------------------------------

    def lower_int_op(self, sym: str, a: Operand, b: Operand) -> Operand:
        """Integer arithmetic with constant folding and value numbering."""
        if isinstance(a, int) and isinstance(b, int):
            if sym == "+":
                return a + b
            if sym == "-":
                return a - b
            if sym == "*":
                return a * b
            if sym == "/":
                return a // b if b != 0 and a % b == 0 else a
        opcode = {
            "+": Opcode.IADD,
            "-": Opcode.ISUB,
            "*": Opcode.IMUL,
            "/": Opcode.IDIV,
        }[sym]
        if sym == "*" and isinstance(a, int) and a > 0 and (a & (a - 1)) == 0:
            opcode = Opcode.SHIFT
        elif sym == "*" and isinstance(b, int) and b > 0 and (b & (b - 1)) == 0:
            opcode = Opcode.SHIFT
            a, b = b, a  # canonical: power-of-two factor first, as in Fig. 2
        key = (opcode, a, b)
        if key in self.cse:
            return self.cse[key]
        dest = self.new_temp(VarType.INT)
        self.emit(opcode=opcode, dest=dest, srcs=(a, b))
        self.cse[key] = dest
        return dest

    def lower_address(self, subscript: Expr) -> tuple[Operand, Affine | None]:
        """Byte address of an array subscript: value-numbered index
        arithmetic followed by a word-size scale on the shifter."""
        value = self.lower_expr(subscript, force_int=True)
        affine = affine_of(subscript, self.synced.loop.index)
        if isinstance(value, int):
            return value * WORD_SIZE, affine
        assert isinstance(value, str)
        return self.lower_int_op("*", WORD_SIZE, value), affine

    def lower_load(self, ref: ArrayRef) -> str:
        address, affine = self.lower_address(ref.subscript)
        var_type = (
            self.symbols[ref.name].var_type if ref.name in self.symbols else VarType.REAL
        )
        dest = self.new_temp(var_type)
        instr = self.emit(
            opcode=Opcode.LOAD,
            dest=dest,
            mem=MemAccess(variable=ref.name, address=address, is_store=False, affine=affine),
        )
        self.out.note_ref(ref, instr.iid)
        return dest

    def lower_scalar_read(self, ref: VarRef) -> Operand:
        if ref.name in self.written_scalars:
            dest = self.new_temp(self.operand_type(ref.name))
            instr = self.emit(
                opcode=Opcode.LOAD,
                dest=dest,
                mem=MemAccess(variable=ref.name, address=None, is_store=False, is_scalar=True),
            )
            self.out.note_ref(ref, instr.iid)
            return dest
        self.out.note_ref(ref, 0)  # register access: no instruction
        return ref.name

    def lower_expr(self, expr: Expr, force_int: bool = False) -> Operand:
        """Lower ``expr``; returns the operand holding its value.

        ``force_int`` marks index context (subscripts), where arithmetic is
        integer regardless of operand defaults.
        """
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, VarRef):
            if force_int and expr.name not in self.written_scalars:
                self.out.note_ref(expr, 0, keep_existing=True)
                return expr.name
            return self.lower_scalar_read(expr)
        if isinstance(expr, ArrayRef):
            return self.lower_load(expr)
        if isinstance(expr, UnaryOp):
            inner = self.lower_expr(expr.operand, force_int=force_int)
            if isinstance(inner, (int, float)):
                return -inner
            is_int = force_int or self.operand_type(inner) is VarType.INT
            if is_int:
                return self.lower_int_op("-", 0, inner)
            dest = self.new_temp(VarType.REAL)
            self.emit(opcode=Opcode.FNEG, dest=dest, srcs=(inner,))
            return dest
        if isinstance(expr, BinOp):
            a = self.lower_expr(expr.left, force_int=force_int)
            b = self.lower_expr(expr.right, force_int=force_int)
            is_int = force_int or (
                self.operand_type(a) is VarType.INT and self.operand_type(b) is VarType.INT
            )
            if is_int:
                return self.lower_int_op(expr.op, a, b)
            opcode = {
                "+": Opcode.FADD,
                "-": Opcode.FSUB,
                "*": Opcode.FMUL,
                "/": Opcode.FDIV,
            }[expr.op]
            dest = self.new_temp(VarType.REAL)
            self.emit(opcode=opcode, dest=dest, srcs=(a, b))
            return dest
        raise TypeError(f"cannot lower {expr!r}")

    # -- statement lowering ----------------------------------------------------

    def _store_mem(self, target: ArrayRef | VarRef) -> MemAccess:
        if isinstance(target, ArrayRef):
            address, affine = self.lower_address(target.subscript)
            return MemAccess(
                variable=target.name, address=address, is_store=True, affine=affine
            )
        return MemAccess(variable=target.name, address=None, is_store=True, is_scalar=True)

    def lower_guard(self, stmt: Assign) -> str | None:
        """Lower the statement guard to a compare; returns the predicate
        register (or ``None`` for unguarded statements)."""
        if stmt.guard is None:
            return None
        a = self.lower_expr(stmt.guard.left)
        b = self.lower_expr(stmt.guard.right)
        is_int = (
            self.operand_type(a) is VarType.INT and self.operand_type(b) is VarType.INT
        )
        dest = self.new_temp(VarType.INT)
        self.emit(
            opcode=Opcode.ICMP if is_int else Opcode.FCMP,
            dest=dest,
            srcs=(a, b),
            cmp=stmt.guard.op,
        )
        return dest

    def lower_assign(self, stmt: Assign, fuse_this: bool) -> None:
        mem = self._store_mem(stmt.target)
        pred = self.lower_guard(stmt)
        expr = stmt.expr
        if fuse_this and isinstance(expr, BinOp):
            a = self.lower_expr(expr.left)
            b = self.lower_expr(expr.right)
            is_int = (
                self.operand_type(a) is VarType.INT
                and self.operand_type(b) is VarType.INT
            )
            fused = {
                ("+", True): Opcode.IADD,
                ("-", True): Opcode.ISUB,
                ("*", True): Opcode.IMUL,
                ("/", True): Opcode.IDIV,
                ("+", False): Opcode.FADD,
                ("-", False): Opcode.FSUB,
                ("*", False): Opcode.FMUL,
                ("/", False): Opcode.FDIV,
            }[(expr.op, is_int)]
            instr = self.emit(
                opcode=Opcode.STORE_OP, srcs=(a, b), mem=mem, fused=fused, pred=pred
            )
        else:
            value = self.lower_expr(expr)
            instr = self.emit(opcode=Opcode.STORE, srcs=(value,), mem=mem, pred=pred)
        self.out.note_ref(stmt.target, instr.iid)

    def lower_wait(self, stmt: WaitSignal) -> None:
        affine = affine_of(stmt.iteration, self.synced.loop.index)
        if affine is None or affine.coeff != 1 or affine.offset >= 0:
            raise ValueError(f"unsupported wait iteration expression: {stmt.iteration}")
        assert stmt.pair_id is not None, "wait statement lacks a pair id"
        instr = self.emit(
            opcode=Opcode.WAIT,
            sync=SyncInfo(
                pair_ids=(stmt.pair_id,),
                source_label=stmt.source_label,
                distance=-affine.offset,
            ),
        )
        self.out.wait_iids[stmt.pair_id] = instr.iid

    def lower_send(self, stmt: SendSignal) -> None:
        instr = self.emit(
            opcode=Opcode.SEND,
            sync=SyncInfo(pair_ids=stmt.pair_ids, source_label=stmt.source_label),
        )
        for pair_id in stmt.pair_ids:
            self.out.send_iids[pair_id] = instr.iid

    def run(self) -> LoweredLoop:
        body = self.synced.loop.body
        for pos, stmt in enumerate(body):
            self.stmt_pos = pos
            if isinstance(stmt, WaitSignal):
                self.lower_wait(stmt)
            elif isinstance(stmt, SendSignal):
                self.lower_send(stmt)
            elif isinstance(stmt, Assign):
                followed_by_send = pos + 1 < len(body) and isinstance(
                    body[pos + 1], SendSignal
                )
                fuse_this = self.fuse is FuseStore.ALWAYS or (
                    self.fuse is FuseStore.BEFORE_SEND and followed_by_send
                )
                self.lower_assign(stmt, fuse_this)
            else:  # pragma: no cover - defensive
                raise TypeError(f"cannot lower statement {stmt!r}")
        return self.out


def lower_loop(
    synced: SyncedLoop,
    symbols: SymbolTable | None = None,
    fuse: FuseStore = FuseStore.BEFORE_SEND,
) -> LoweredLoop:
    """Lower a synchronized loop to the Fig. 2 instruction stream."""
    if symbols is None:
        symbols = SymbolTable.from_loop(synced.loop)
    return _Lowerer(synced, symbols, fuse).run()
