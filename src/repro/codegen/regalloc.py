"""Register allocation with spilling (linear scan over the listing).

The paper's code generator lives in a register-starved world — its delayed
loads exist "to effectively use the limited registers".  This module makes
that constraint explicit: the lowerer's unbounded virtual temporaries
(``t1``, ``t2``, ...) are mapped onto ``K`` physical integer registers
(``r1..rK``) and ``K`` floating-point registers (``f1..fK``) by
Poletto/Sarkar linear scan over the listing order; when pressure exceeds
``K``, the live range with the furthest end is *spilled everywhere*: its
definition is followed by a store to a private spill slot and every use is
preceded by a reload into one of two reserved scratch registers per class.

Allocation happens *before* scheduling — the classic DLX-era phase order —
so register reuse constrains the scheduler through WAR/WAW edges that
:func:`repro.dfg.build_dfg` now emits.  The register sweep benchmark
measures what that costs the paper's technique.

Loop-invariant symbolic registers (the index ``I``, bounds, read-only
scalars) are considered pre-allocated outside the pool, as era compilers
reserved globals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codegen.isa import Instruction, MemAccess, Opcode, Operand
from repro.codegen.lower import LoweredLoop
from repro.ir.symbols import VarType

SCRATCH_PER_CLASS = 2


@dataclass
class AllocationResult:
    """Rewritten code plus what the allocator did."""

    lowered: LoweredLoop
    assignment: dict[str, str]  # virtual temp -> physical register
    spilled: frozenset[str]
    spill_stores: int
    spill_loads: int
    int_registers: int
    fp_registers: int

    @property
    def spill_instructions(self) -> int:
        return self.spill_stores + self.spill_loads


@dataclass(frozen=True)
class _Interval:
    temp: str
    var_type: VarType
    start: int  # defining iid
    end: int  # last-use iid (== start when unused)


def _temp_types(lowered: LoweredLoop) -> dict[str, VarType]:
    """Value class of every temporary, from its defining instruction."""
    real_producers = {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FNEG}
    types: dict[str, VarType] = {}
    for instr in lowered.instructions:
        if instr.dest is None:
            continue
        if instr.opcode in real_producers:
            types[instr.dest] = VarType.REAL
        elif instr.opcode is Opcode.LOAD:
            assert instr.mem is not None
            name = instr.mem.variable
            var_type = (
                lowered.symbols[name].var_type if name in lowered.symbols else VarType.REAL
            )
            types[instr.dest] = var_type
        else:
            types[instr.dest] = VarType.INT
    return types


def _live_intervals(lowered: LoweredLoop, types: dict[str, VarType]) -> list[_Interval]:
    start: dict[str, int] = {}
    end: dict[str, int] = {}
    for instr in lowered.instructions:
        for reg in instr.uses():
            if reg in start:
                end[reg] = instr.iid
        if instr.dest is not None:
            start[instr.dest] = instr.iid
            end.setdefault(instr.dest, instr.iid)
    return [
        _Interval(temp=t, var_type=types[t], start=s, end=end[t])
        for t, s in sorted(start.items(), key=lambda kv: kv[1])
    ]


def _linear_scan(
    intervals: list[_Interval], pool_size: int, prefix: str
) -> tuple[dict[str, str], set[str]]:
    """Classic linear scan for one register class; returns (assignment,
    spilled temps)."""
    assignment: dict[str, str] = {}
    spilled: set[str] = set()
    # FIFO (round-robin) free list: freshly-expired registers go to the
    # back, so reuse is spread across the file.  LIFO reuse would chain
    # every statement through r1's WAR edges and serialize the schedule —
    # disastrous for the sync scheduler's LBD→LFD conversions.
    free = [f"{prefix}{i}" for i in range(1, pool_size + 1)]
    active: list[_Interval] = []  # sorted by end

    for interval in intervals:
        # expire
        still_active = []
        for a in active:
            if a.end < interval.start:
                free.append(assignment[a.temp])
            else:
                still_active.append(a)
        active = still_active
        if free:
            assignment[interval.temp] = free.pop(0)
            active.append(interval)
            active.sort(key=lambda a: a.end)
            continue
        # spill the furthest-ending interval (current or active)
        victim = active[-1] if active and active[-1].end > interval.end else None
        if victim is not None:
            spilled.add(victim.temp)
            assignment[interval.temp] = assignment.pop(victim.temp)
            active.remove(victim)
            active.append(interval)
            active.sort(key=lambda a: a.end)
        else:
            spilled.add(interval.temp)
    return assignment, spilled


def allocate_registers(
    lowered: LoweredLoop, int_registers: int = 8, fp_registers: int = 8
) -> AllocationResult:
    """Allocate ``lowered``'s temporaries onto physical registers.

    Each class reserves :data:`SCRATCH_PER_CLASS` registers for spill
    reloads, so the allocatable pool is ``K - 2`` (``K >= 3`` required).
    Returns a fresh :class:`LoweredLoop` with physical register names and
    spill code; the input is untouched.
    """
    if int_registers < SCRATCH_PER_CLASS + 1 or fp_registers < SCRATCH_PER_CLASS + 1:
        raise ValueError(f"need at least {SCRATCH_PER_CLASS + 1} registers per class")

    types = _temp_types(lowered)
    intervals = _live_intervals(lowered, types)
    int_assign, int_spilled = _linear_scan(
        [iv for iv in intervals if iv.var_type is VarType.INT],
        int_registers - SCRATCH_PER_CLASS,
        "r",
    )
    fp_assign, fp_spilled = _linear_scan(
        [iv for iv in intervals if iv.var_type is VarType.REAL],
        fp_registers - SCRATCH_PER_CLASS,
        "f",
    )
    assignment = {**int_assign, **fp_assign}
    spilled = frozenset(int_spilled | fp_spilled)

    scratch = {VarType.INT: ("r_s1", "r_s2"), VarType.REAL: ("f_s1", "f_s2")}

    new = LoweredLoop(synced=lowered.synced, symbols=lowered.symbols)
    old_to_new: dict[int, int] = {}
    spill_stores = spill_loads = 0

    def emit(instr: Instruction) -> Instruction:
        renumbered = Instruction(
            iid=len(new.instructions) + 1,
            opcode=instr.opcode,
            dest=instr.dest,
            srcs=instr.srcs,
            mem=instr.mem,
            sync=instr.sync,
            stmt_pos=instr.stmt_pos,
            fused=instr.fused,
            cmp=instr.cmp,
            pred=instr.pred,
        )
        new.instructions.append(renumbered)
        return renumbered

    def slot(temp: str) -> MemAccess:
        return MemAccess(
            variable=f"_spill_{temp}",
            address=None,
            is_store=False,
            is_scalar=True,
            private=True,
        )

    for instr in lowered.instructions:
        # 1. reload spilled operands into scratch registers (per class)
        reload_map: dict[str, str] = {}
        scratch_used = {VarType.INT: 0, VarType.REAL: 0}
        for reg in instr.uses():
            if reg in spilled and reg not in reload_map:
                var_type = types[reg]
                index = scratch_used[var_type]
                if index >= SCRATCH_PER_CLASS:  # pragma: no cover - ISA caps at 2
                    raise RuntimeError("more spilled operands than scratch registers")
                scratch_used[var_type] = index + 1
                scratch_reg = scratch[var_type][index]
                emit(
                    Instruction(
                        iid=0,
                        opcode=Opcode.LOAD,
                        dest=scratch_reg,
                        mem=slot(reg),
                        stmt_pos=instr.stmt_pos,
                    )
                )
                spill_loads += 1
                reload_map[reg] = scratch_reg

        def rename(op: Operand) -> Operand:
            if not isinstance(op, str):
                return op
            if op in reload_map:
                return reload_map[op]
            return assignment.get(op, op)

        dest = instr.dest
        dest_spilled = dest is not None and dest in spilled
        if dest is not None:
            dest = scratch[types[instr.dest]][0] if dest_spilled else assignment.get(dest, dest)
        mem = instr.mem
        if mem is not None and isinstance(mem.address, str):
            mem = MemAccess(
                variable=mem.variable,
                address=rename(mem.address),
                is_store=mem.is_store,
                affine=mem.affine,
                is_scalar=mem.is_scalar,
                private=mem.private,
            )
        core = emit(
            Instruction(
                iid=0,
                opcode=instr.opcode,
                dest=dest,
                srcs=tuple(rename(s) for s in instr.srcs),
                mem=mem,
                sync=instr.sync,
                stmt_pos=instr.stmt_pos,
                fused=instr.fused,
                cmp=instr.cmp,
                pred=rename(instr.pred) if instr.pred is not None else None,
            )
        )
        old_to_new[instr.iid] = core.iid
        # 2. spill a spilled destination right after its definition
        if dest_spilled:
            assert instr.dest is not None and dest is not None
            store_mem = MemAccess(
                variable=f"_spill_{instr.dest}",
                address=None,
                is_store=True,
                is_scalar=True,
                private=True,
            )
            emit(
                Instruction(
                    iid=0,
                    opcode=Opcode.STORE,
                    srcs=(dest,),
                    mem=store_mem,
                    stmt_pos=instr.stmt_pos,
                )
            )
            spill_stores += 1

    new.wait_iids = {p: old_to_new[i] for p, i in lowered.wait_iids.items()}
    new.send_iids = {p: old_to_new[i] for p, i in lowered.send_iids.items()}
    new.ref_iids = {
        ref: (old_to_new[i] if i in old_to_new else i) for ref, i in lowered.ref_iids.items()
    }
    new.ref_objs = dict(lowered.ref_objs)
    return AllocationResult(
        lowered=new,
        assignment=assignment,
        spilled=spilled,
        spill_stores=spill_stores,
        spill_loads=spill_loads,
        int_registers=int_registers,
        fp_registers=fp_registers,
    )
